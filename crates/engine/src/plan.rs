//! The planner: rewriting pipeline steps into path-algebra operations.
//!
//! A pipeline like `.v(["marko"]).out(["knows"]).out(["created"])` is exactly
//! the §III-B/§III-D combination "source traversal with labeled steps": the
//! planner turns it into a chain of *restricted edge sets* joined with `⋈◦`,
//! resolving names to ids once and pushing vertex restrictions into the first
//! join operand (the paper's `A = {e | e ∈ E ∧ γ⁻(e) ∈ Vs}` construction).
//!
//! The logical plan is strategy-agnostic; see [`crate::exec`] for the
//! materialized (path-set), streaming (row-at-a-time) and parallel executors.

use std::collections::HashSet;

use mrpa_core::{LabelId, VertexId};

use crate::error::EngineError;
use crate::pipeline::{StartSpec, Step};
use crate::store::GraphSnapshot;
use crate::value::Predicate;

/// Direction of an expansion step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from tail to head (the graph as stored).
    Out,
    /// Follow edges from head to tail (evaluated on the reversed graph).
    In,
}

/// One operation of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Expand the frontier along edges: a concatenative join with the edge set
    /// `{e | ω(e) ∈ labels}` (or all of `E` when `labels` is `None`),
    /// restricted on its tail side to the current frontier.
    Expand {
        /// Direction of travel.
        direction: Direction,
        /// Label restriction (`None` = any label, the complete edge set).
        labels: Option<Vec<LabelId>>,
    },
    /// Restrict the frontier to the given vertices (the "go through these
    /// vertices" restriction of §III-C).
    RestrictVertices(HashSet<VertexId>),
    /// Restrict the frontier to vertices whose property satisfies a predicate
    /// (resolved against the snapshot at execution time).
    RestrictProperty {
        /// Property key.
        key: String,
        /// Predicate on the property value.
        predicate: Predicate,
    },
    /// Deduplicate rows by their current vertex.
    DedupByVertex,
    /// Keep at most this many rows.
    Limit(usize),
}

/// A planned traversal: the initial vertex frontier plus a sequence of
/// algebra-level operations.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    start: Vec<VertexId>,
    ops: Vec<PlanOp>,
}

impl LogicalPlan {
    /// The initial frontier (start vertices).
    pub fn start(&self) -> &[VertexId] {
        &self.start
    }

    /// The planned operations.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of expansion (join) steps in the plan.
    pub fn expansion_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PlanOp::Expand { .. }))
            .count()
    }

    /// A compact human-readable description of the plan (used by
    /// `Traversal::explain` and the experiment harness).
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("start({} vertices)", self.start.len())];
        for op in &self.ops {
            parts.push(match op {
                PlanOp::Expand { direction, labels } => {
                    let dir = match direction {
                        Direction::Out => "out",
                        Direction::In => "in",
                    };
                    match labels {
                        Some(ls) => format!("join[{dir}, {} labels]", ls.len()),
                        None => format!("join[{dir}, E]"),
                    }
                }
                PlanOp::RestrictVertices(vs) => format!("restrict({} vertices)", vs.len()),
                PlanOp::RestrictProperty { key, .. } => format!("has({key})"),
                PlanOp::DedupByVertex => "dedup".to_owned(),
                PlanOp::Limit(n) => format!("limit({n})"),
            });
        }
        parts.join(" → ")
    }
}

/// Plans a pipeline against a snapshot: resolves names, computes the start
/// frontier, and lowers each step to a [`PlanOp`].
pub fn plan(
    snapshot: &GraphSnapshot,
    start: &StartSpec,
    steps: &[Step],
) -> Result<LogicalPlan, EngineError> {
    let start_vertices: Vec<VertexId> = match start {
        StartSpec::AllVertices => snapshot.graph().vertices().collect(),
        StartSpec::Named(names) => {
            let mut vs = Vec::with_capacity(names.len());
            for name in names {
                vs.push(snapshot.vertex(name)?);
            }
            vs
        }
        StartSpec::Where(key, pred) => snapshot.vertices_where(key, pred),
    };

    let mut ops = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            Step::Out(labels) => ops.push(PlanOp::Expand {
                direction: Direction::Out,
                labels: resolve_labels(snapshot, labels.as_deref())?,
            }),
            Step::In(labels) => ops.push(PlanOp::Expand {
                direction: Direction::In,
                labels: resolve_labels(snapshot, labels.as_deref())?,
            }),
            Step::Has(key, pred) => ops.push(PlanOp::RestrictProperty {
                key: key.clone(),
                predicate: pred.clone(),
            }),
            Step::Is(names) => {
                let mut vs = HashSet::with_capacity(names.len());
                for name in names {
                    vs.insert(snapshot.vertex(name)?);
                }
                ops.push(PlanOp::RestrictVertices(vs));
            }
            Step::DedupByVertex => ops.push(PlanOp::DedupByVertex),
            Step::Limit(n) => ops.push(PlanOp::Limit(*n)),
        }
    }

    Ok(LogicalPlan {
        start: start_vertices,
        ops,
    })
}

fn resolve_labels(
    snapshot: &GraphSnapshot,
    labels: Option<&[String]>,
) -> Result<Option<Vec<LabelId>>, EngineError> {
    match labels {
        None => Ok(None),
        Some(names) => {
            // deduplicate while preserving order: a label set, so listing a
            // label twice must not double the expansion's rows
            let mut ids = Vec::with_capacity(names.len());
            for name in names {
                let id = snapshot.label(name)?;
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            Ok(Some(ids))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::classic_social_graph;
    use crate::value::{Predicate, Value};

    #[test]
    fn plan_resolves_names_and_lowers_steps() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["marko".into()]),
            &[
                Step::Out(Some(vec!["knows".into()])),
                Step::Has("age".into(), Predicate::Gt(30.0)),
                Step::Out(Some(vec!["created".into()])),
                Step::DedupByVertex,
                Step::Limit(5),
            ],
        )
        .unwrap();
        assert_eq!(plan.start().len(), 1);
        assert_eq!(plan.ops().len(), 5);
        assert_eq!(plan.expansion_count(), 2);
        let desc = plan.describe();
        assert!(desc.contains("join[out"));
        assert!(desc.contains("has(age)"));
        assert!(desc.contains("limit(5)"));
    }

    #[test]
    fn all_vertices_start_covers_v() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(&snap, &StartSpec::AllVertices, &[]).unwrap();
        assert_eq!(plan.start().len(), 6);
        assert_eq!(plan.expansion_count(), 0);
    }

    #[test]
    fn where_start_uses_property_index() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Where("lang".into(), Predicate::Eq(Value::from("java"))),
            &[],
        )
        .unwrap();
        assert_eq!(plan.start().len(), 2);
    }

    #[test]
    fn unknown_names_error_at_plan_time() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert!(matches!(
            plan(&snap, &StartSpec::Named(vec!["ghost".into()]), &[]),
            Err(EngineError::UnknownVertex(_))
        ));
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Out(Some(vec!["likes".into()]))]
            ),
            Err(EngineError::UnknownLabel(_))
        ));
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Is(vec!["ghost".into()])]
            ),
            Err(EngineError::UnknownVertex(_))
        ));
    }

    #[test]
    fn duplicate_labels_are_deduplicated_at_plan_time() {
        // `.out(["knows", "knows"])` is a label *set*: listing a label twice
        // must not double the expansion's rows
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["marko".into()]),
            &[Step::Out(Some(vec!["knows".into(), "knows".into()]))],
        )
        .unwrap();
        assert_eq!(
            plan.ops()[0],
            PlanOp::Expand {
                direction: Direction::Out,
                labels: Some(vec![snap.label("knows").unwrap()])
            }
        );
    }

    #[test]
    fn in_steps_plan_with_in_direction() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["lop".into()]),
            &[Step::In(None)],
        )
        .unwrap();
        assert_eq!(
            plan.ops()[0],
            PlanOp::Expand {
                direction: Direction::In,
                labels: None
            }
        );
    }
}
