//! The planner: lowering pipeline steps into a single algebraic IR, then
//! rewriting that IR with an explicit optimizer pass.
//!
//! # Lowering
//!
//! A pipeline like `.v(["marko"]).out(["knows"]).out(["created"])` is exactly
//! the §III-B/§III-D combination "source traversal with labeled steps": the
//! planner turns it into a chain of *restricted edge sets* joined with `⋈◦`,
//! resolving names to ids once. Everything the surface DSL can express lowers
//! into the same IR:
//!
//! * `out`/`in_`/`both` become [`PlanOp::Expand`] — one `⋈◦` with the edge set
//!   `{e | ω(e) ∈ labels}`, optionally restricted on its tail side
//!   (`{e | γ⁻(e) ∈ Vs}`) and head side (`{e | γ⁺(e) ∈ Vs}`).
//! * `match_("knows+·created")` parses a label regex
//!   ([`mrpa_regex::parse_label_expr`]), compiles it through the Thompson
//!   NFA → graph-relative symbolic DFA → minimisation pipeline of
//!   `mrpa-regex`, and lowers to [`PlanOp::ExpandAutomaton`]: a product
//!   automaton evaluated over `(vertex, dfa-state)` frontiers.
//! * `repeat(min..=max, body)` lowers to [`PlanOp::Repeat`] — bounded Kleene
//!   iteration of a nested op sequence.
//!
//! This is the paper's thesis operationalised: Gremlin-style steps, regular
//! path queries, and the path algebra are one language — every pipeline is a
//! regular expression over restricted edge sets combined with `⋈◦` (§III/§IV).
//!
//! # The rewriting optimizer
//!
//! [`optimize`] applies a fixed set of rewrite rules to a fixpoint. Each rule
//! preserves the *exact row sequence* an executor produces (not merely the row
//! set), so `Limit` keeps its meaning. The rules, with their soundness
//! arguments:
//!
//! **R1 — restriction fusion.** Adjacent `RestrictVertices(A)`,
//! `RestrictVertices(B)` fuse to `RestrictVertices(A ∩ B)`: both are
//! order-preserving filters on the row's head, and membership in both sets is
//! membership in the intersection. A `RestrictProperty` adjacent to a
//! `RestrictVertices` folds into it by filtering the (concrete) vertex set
//! with the predicate at plan time: the predicate is evaluated against the
//! same immutable snapshot the query executes on, so `head ∈ A ∧ p(head)`
//! iff `head ∈ {v ∈ A | p(v)}`. Two adjacent `RestrictProperty` ops are left
//! alone (predicates are opaque; there is no conjunction node, and fusing
//! them into a vertex set would cost an O(|V|) scan at plan time).
//!
//! **R2 — limit fusion and dead-tail elimination.** `Limit(m)` then
//! `Limit(n)` is `Limit(min(m, n))`: truncating a sequence twice truncates to
//! the shorter prefix. After a `Limit(0)` every row set is empty and all
//! remaining ops are identities on the empty sequence, so the tail is dropped.
//!
//! **R3 — redundant-dedup elimination.** The optimizer tracks a
//! "rows-distinct-by-head" dataflow fact: it holds after `DedupByVertex`, is
//! preserved by the filters (`RestrictVertices`, `RestrictProperty`) and by
//! `Limit` (any subsequence of a head-distinct sequence is head-distinct), and
//! is destroyed by every expansion (`Expand`, `ExpandAutomaton`, `Repeat`),
//! which can map distinct heads to equal heads. A `DedupByVertex` reached
//! while the fact holds is the identity and is removed.
//!
//! **R4 — `Limit` does *not* commute with `DedupByVertex`.** The tempting
//! rewrite `Dedup → Limit(n)` ⇒ `Limit(n) → Dedup` is unsound: on head
//! sequence `[a, a, b]`, `Dedup → Limit(2)` yields `[a, b]` while
//! `Limit(2) → Dedup` yields `[a]`. The opposite direction is equally unsound
//! (`Limit` first can under-supply the dedup). The only case where the swap
//! is sound is when the input is already head-distinct — and there R3 removes
//! the dedup entirely, which is strictly stronger. The optimizer therefore
//! never reorders the two; `optimizer_leaves_dedup_limit_order_alone` pins
//! this.
//!
//! **R5 — expansion merging.** A run of ≥ 2 consecutive *single-label*
//! `Expand` ops with the same direction (`Out` or `In`) and no endpoint
//! restrictions merges into one `ExpandAutomaton` whose regex is the
//! concatenation `ℓ₁·ℓ₂·…·ℓₖ`. Soundness: the chain DFA has exactly one move
//! per state, so the product construction walks, per input row,
//! `out_edges_labeled(head, ℓᵢ)` at step i — the same adjacency slices in the
//! same row-major order as the op chain — and accepts exactly at depth `k`
//! (`max_hops = k` makes evaluation finite). Multi-label and wildcard steps
//! are deliberately *not* merged: a multi-label `Expand` emits edges in the
//! step's label-list (respectively raw adjacency) order, while an automaton
//! state's moves are in graph label order, so merging would reorder rows and
//! change what a downstream `Limit` keeps. Runs longer than the symbolic
//! DFA's 64-matcher budget are also left unmerged.
//!
//! **R6 — restriction pushdown into expansions** (the paper's
//! `A = {e | γ⁻(e) ∈ Vs}` construction, §III-C). `RestrictVertices(Vs)`
//! immediately *before* an expansion becomes the expansion's tail-side edge
//! restriction (`from`): expanding only rows whose head lies in `Vs` is the
//! `⋈◦` with the tail-restricted edge set. `RestrictVertices(Vs)` immediately
//! *after* an expansion becomes the head-side restriction (`to`): an emitted
//! row passes iff its new head (the edge's `γ⁺`) lies in `Vs`, so filtering
//! edges during expansion produces the same rows in the same order without
//! materialising the rejected ones. For `ExpandAutomaton`, `from` filters the
//! input rows and `to` filters *emitted* rows only — intermediate automaton
//! states must still traverse arbitrary vertices.
//!
//! **R7 — limit pushdown into automata.** A `Limit(n)` immediately after an
//! `ExpandAutomaton` becomes the automaton's emission cap: the walk stops —
//! and the remaining input rows are skipped — once `n` rows have been
//! emitted. The truncated emission sequence is exactly the prefix the limit
//! keeps, so the rewrite preserves the row sequence while letting *every*
//! executor (including the level-at-a-time materialized one) early-exit a
//! dense product-automaton walk under `limit(k)`/`first()`.
//!
//! **R8 — reachability upgrade before dedup.** A *cyclic* `ExpandAutomaton`
//! (one that can revisit a DFA state, i.e. whose walk set can blow up) whose
//! downstream (through head-based filters) is a `DedupByVertex` is switched
//! from [`Semantics::Walks`] to [`Semantics::Reachable`]: only the first
//! emission per head survives the dedup anyway, and the reachable emission
//! sequence keeps exactly the first walk per `(head, state)` — see
//! [`Semantics`] and the rule's soundness note.
//!
//! **R9 — top-k pushdown into weighted expansions.** A `Limit(n)` immediately
//! after a [`PlanOp::ExpandWeighted`] becomes the weighted op's `k` cap: the
//! best-first walk stops (and the remaining input rows are skipped) once `n`
//! rows have been emitted. Identical soundness argument to R7 — the weighted
//! op's emission sequence is already the sequence the limit truncates — but
//! the payoff is bigger: because emissions within an input row come out in
//! semiring cost order, the cap turns "enumerate all best paths, keep `n`"
//! into a true *top-k* search that settles no more of the product space than
//! the k-th result requires.
//!
//! The naive (pre-rewrite) plan remains available: [`plan`] lowers without
//! rewriting, [`optimize`] rewrites, and [`report`] packages both plus
//! per-op cardinality estimates into a [`PlanReport`] for
//! `Traversal::explain`.

use std::collections::HashSet;
use std::fmt::Write as _;

use mrpa_core::fxhash::FxHashMap;
use mrpa_core::semiring::{MaxMin, MinPlus, SelectiveSemiring, Semiring};
use mrpa_core::{Edge, LabelId, VertexId};
use mrpa_regex::{minimize, parse_label_expr, Dfa, LabelRegex, Nfa};

use crate::error::EngineError;
use crate::pipeline::{StartSpec, Step, WeightSpec};
use crate::store::GraphSnapshot;
use crate::value::Predicate;

/// Direction of an expansion step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from tail to head (the graph as stored).
    Out,
    /// Follow edges from head to tail (evaluated on the reversed graph).
    In,
    /// Follow edges in both directions (union of `Out` and `In`).
    Both,
}

/// Default bound on the number of automaton hops for `match_` steps: a `+` or
/// `*` over a cyclic graph denotes an infinite walk set, so product-automaton
/// evaluation is depth-bounded (`Traversal::match_within` overrides).
pub const DEFAULT_MATCH_MAX_HOPS: usize = 16;

/// Hop bound meaning "no depth bound": evaluation runs until the frontier
/// empties. Only meaningful under [`Semantics::Reachable`], where the frontier
/// is deduplicated by `(vertex, state)` and therefore provably empties after
/// at most `|V| · |states|` layers; under [`Semantics::Walks`] an unbounded
/// `+`/`*` over a cyclic graph never terminates.
pub const UNBOUNDED_MATCH_HOPS: usize = usize::MAX;

/// Path semantics of product-automaton evaluation (cf. Martens et al.,
/// *Representing Paths in Graph Database Pattern Matching*: the choice of
/// path semantics is what makes regular path queries tractable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Semantics {
    /// Every distinct walk is a row: a row per matching edge sequence, paths
    /// included. The default, and the only mode whose row sequence is the
    /// algebra's full join chain.
    #[default]
    Walks,
    /// Reachability over the product space: the per-input-row frontier is
    /// deduplicated by `(vertex, dfa-state)`, so each pair is expanded — and
    /// each accepting pair emitted — at most once, with the breadth-first
    /// *first* walk as its path. Rows that differ only in their path collapse;
    /// `match_` over a cyclic graph terminates without `max_intermediate`.
    Reachable,
    /// [`Semantics::Reachable`] with **one seen-set shared across all input
    /// rows**: each `(vertex, dfa-state)` pair is expanded — and emitted — at
    /// most once for the whole operation, attributed to the first input row
    /// (in row-major order) that reaches it. The multi-source reachability
    /// mode: `n` sources cost one BFS over the product space instead of `n`.
    /// Stateful across rows, so it forces the parallel strategy's
    /// global-suffix split and is rejected inside `repeat` bodies.
    GlobalReachable,
}

/// Which selective semiring a [`PlanOp::ExpandWeighted`] optimises over. The
/// scalar structures live in [`mrpa_core::semiring`]; this enum is the
/// plan-level (runtime) selection between them, over `f64` weights.
///
/// Hop counting ([`mrpa_core::semiring::HopCount`]) is expressed as
/// `Shortest` × [`WeightSource::Unit`]; the counting semiring is not
/// selective and therefore has no best-first plan op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiringKind {
    /// Tropical min-plus ([`MinPlus`]): minimise the sum of edge weights.
    /// Best-first search requires non-negative weights (checked when each
    /// weight is resolved).
    Shortest,
    /// Max-min ([`MaxMin`]): maximise the bottleneck (minimum edge weight).
    Widest,
}

impl SemiringKind {
    /// The weight of the empty path ε (`1̄`).
    pub fn one(self) -> f64 {
        match self {
            SemiringKind::Shortest => MinPlus::one(),
            SemiringKind::Widest => MaxMin::one(),
        }
    }

    /// Extends a path cost by one edge weight (`⊗`).
    pub fn extend(self, cost: f64, w: f64) -> f64 {
        match self {
            SemiringKind::Shortest => MinPlus::mul(&cost, &w),
            SemiringKind::Widest => MaxMin::mul(&cost, &w),
        }
    }

    /// Whether `a` is strictly better than `b` under the semiring's
    /// selection order.
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            SemiringKind::Shortest => MinPlus::better(&a, &b),
            SemiringKind::Widest => MaxMin::better(&a, &b),
        }
    }

    /// A priority key for best-first search: smaller keys pop first, and
    /// `key(a) < key(b)` iff `a` is better than `b`.
    pub(crate) fn key(self, cost: f64) -> f64 {
        match self {
            SemiringKind::Shortest => cost,
            SemiringKind::Widest => -cost,
        }
    }

    /// Validates a resolved edge weight for this semiring: weights must be
    /// finite, and `Shortest` additionally requires non-negativity (the
    /// Dijkstra monotonicity condition — a negative edge could improve a
    /// settled cost).
    fn validate(self, w: f64, edge: &Edge) -> Result<f64, EngineError> {
        if !w.is_finite() {
            return Err(EngineError::BadWeight(format!(
                "edge {edge} has non-finite weight {w}"
            )));
        }
        if self == SemiringKind::Shortest && w < 0.0 {
            return Err(EngineError::BadWeight(format!(
                "edge {edge} has negative weight {w}; best-first shortest-path search requires \
                 non-negative weights"
            )));
        }
        Ok(w)
    }
}

/// Where a [`PlanOp::ExpandWeighted`] reads each traversed edge's weight.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightSource {
    /// Every edge weighs `1.0` (hop counting under `Shortest`).
    Unit,
    /// Read the weight from this edge property; a missing or non-numeric
    /// value is a [`EngineError::BadWeight`] error, not a silent skip.
    Property(String),
    /// A per-label weight table (resolved from names at plan time); an edge
    /// whose label is absent from the table is an error.
    Labels(FxHashMap<LabelId, f64>),
}

impl WeightSource {
    /// Resolves the weight of a traversed edge, given in the *stored*
    /// orientation (callers walking the reversed graph flip the edge first so
    /// property lookup matches `add_edge_with`), validated for `semiring`.
    pub(crate) fn resolve(
        &self,
        snapshot: &GraphSnapshot,
        edge: &Edge,
        semiring: SemiringKind,
    ) -> Result<f64, EngineError> {
        let w = match self {
            WeightSource::Unit => 1.0,
            WeightSource::Property(key) => match snapshot.edge_property(edge, key) {
                Some(v) => v.as_finite_number().ok_or_else(|| {
                    EngineError::BadWeight(format!(
                        "edge {edge} property {key:?} is not a finite number: {v}"
                    ))
                })?,
                None => {
                    return Err(EngineError::BadWeight(format!(
                        "edge {edge} has no {key:?} property to weight it by"
                    )))
                }
            },
            WeightSource::Labels(table) => match table.get(&edge.label) {
                Some(&w) => w,
                None => {
                    return Err(EngineError::BadWeight(format!(
                        "edge {edge} has a label missing from the weight table"
                    )))
                }
            },
        };
        semiring.validate(w, edge)
    }
}

/// The symbolic DFA's matcher budget (signatures are packed into a `u64`).
const MAX_AUTOMATON_ATOMS: usize = 64;

/// One compiled `(state, label) → target` transition of an [`AutomatonSpec`],
/// enriched at compile time with everything the hot walk loops would
/// otherwise re-derive per produced row: whether the target accepts, whether
/// the target has any live outgoing moves, and the admissible lower bound on
/// edges from the target to acceptance. Hoisting these into the move table
/// lets both the scalar and chunked walkers skip dead states without a
/// per-row `is_accept`/`moves(target).is_empty()`/`dist_to_accept` lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoMove {
    /// The edge label consumed by this move.
    pub label: LabelId,
    /// The DFA state the move leads to.
    pub target: usize,
    /// Whether `target` is an accepting state (`accept[target]`).
    pub accepts: bool,
    /// Whether `target` has at least one (post-pruning) outgoing move — i.e.
    /// whether frontier entries parked at `target` can ever expand further.
    pub target_live: bool,
    /// Minimum number of edges any word needs to reach acceptance from
    /// `target`. Always finite: moves into accept-unreachable states are
    /// pruned from the table at compile time.
    pub min_edges_to_accept: usize,
}

/// A compiled, minimized label-regex automaton ready for product evaluation:
/// transitions are per-`(state, label)` moves derived from the graph-relative
/// symbolic DFA, so executors walk `out_edges_labeled` adjacency directly.
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonSpec {
    /// The surface pattern this automaton was compiled from (display only).
    pattern: String,
    /// Direction of travel (`Out` or `In`; never `Both`).
    direction: Direction,
    /// Depth bound on product evaluation.
    max_hops: usize,
    /// Walk vs. reachability evaluation semantics.
    semantics: Semantics,
    /// Start state.
    start: usize,
    /// Per-state acceptance.
    accept: Vec<bool>,
    /// Per-state enriched moves, in the graph's label order. Moves into
    /// states that cannot reach an accepting state over the graph's label
    /// alphabet are pruned at compile time (they could only ever feed dead
    /// frontier entries); the survivors carry precomputed
    /// accepts/liveness/distance facts (see [`AutoMove`]).
    by_label: Vec<Vec<AutoMove>>,
    /// Per-state minimum edges to reach acceptance
    /// ([`mrpa_regex::Dfa::min_edges_to_accept`]); an admissible lower bound
    /// used by bounded weighted search to prune entries that cannot finish
    /// within the hop budget.
    dist_to_accept: Vec<Option<usize>>,
}

impl AutomatonSpec {
    /// The surface pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Direction of travel.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The depth bound.
    pub fn max_hops(&self) -> usize {
        self.max_hops
    }

    /// Walk vs. reachability evaluation semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The start state.
    pub fn start_state(&self) -> usize {
        self.start
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// Whether `state` is accepting.
    pub fn is_accept(&self, state: usize) -> bool {
        self.accept[state]
    }

    /// The enriched moves out of `state`.
    pub fn moves(&self, state: usize) -> &[AutoMove] {
        &self.by_label[state]
    }

    /// Minimum number of edges any word needs to reach an accepting state
    /// from `state` (over the graph's label alphabet); `None` if acceptance
    /// is unreachable. `Some(0)` exactly for accepting states.
    pub fn dist_to_accept(&self, state: usize) -> Option<usize> {
        self.dist_to_accept[state]
    }

    /// Whether the DFA can revisit a state (a `*`/`+`/`{n,}` in the
    /// pattern): exactly the automata whose walk sets can grow without bound
    /// on cyclic graphs. Iterative three-colour DFS from the start state.
    pub fn has_cycle(&self) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.state_count()];
        // stack of (state, next-move index); grey while its frame is live
        let mut stack = vec![(self.start, 0usize)];
        colour[self.start] = GREY;
        while let Some((state, idx)) = stack.pop() {
            match self.by_label[state].get(idx) {
                None => colour[state] = BLACK,
                Some(&AutoMove { target, .. }) => {
                    stack.push((state, idx + 1));
                    match colour[target] {
                        GREY => return true,
                        WHITE => {
                            colour[target] = GREY;
                            stack.push((target, 0));
                        }
                        _ => {}
                    }
                }
            }
        }
        false
    }
}

/// One operation of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Expand the frontier along edges: a concatenative join with the edge set
    /// `{e | ω(e) ∈ labels ∧ γ⁻(e) ∈ from ∧ γ⁺(e) ∈ to}` (each restriction
    /// optional; `labels = None` is the complete edge set).
    Expand {
        /// Direction of travel.
        direction: Direction,
        /// Label restriction (`None` = any label).
        labels: Option<Vec<LabelId>>,
        /// Tail-side vertex restriction pushed in by the optimizer (R6).
        from: Option<HashSet<VertexId>>,
        /// Head-side vertex restriction pushed in by the optimizer (R6).
        to: Option<HashSet<VertexId>>,
    },
    /// Product-automaton expansion: rows carry a DFA state alongside their
    /// head vertex; rows at accepting states are emitted at every depth up to
    /// the spec's `max_hops`.
    ExpandAutomaton {
        /// The compiled automaton.
        spec: AutomatonSpec,
        /// Restriction on the input rows' heads (R6).
        from: Option<HashSet<VertexId>>,
        /// Restriction on *emitted* rows' heads (R6); intermediate automaton
        /// steps are unrestricted.
        to: Option<HashSet<VertexId>>,
        /// Emission cap pushed in by the optimizer (R7): stop the walk — and
        /// skip the remaining input rows — once this many rows have been
        /// emitted. Sound only because a `Limit(n ≥ limit)` follows
        /// immediately, so the truncated emission sequence is exactly the
        /// prefix that limit would keep.
        limit: Option<usize>,
    },
    /// Weighted product-automaton expansion, evaluated **best-first**
    /// (Dijkstra over `(vertex, dfa-state)` pairs) instead of breadth-first.
    /// Per input row, one row is emitted per distinct reachable head whose
    /// product state accepts, carrying the semiring-optimal path and its
    /// cost ([`crate::ResultRow::weight`]) — emissions come out in cost
    /// order, best first, so a downstream `Limit(k)` is a top-k query (rule
    /// R9 pushes it into the `k` cap and the walk settles no more of the
    /// product space than the k-th result requires).
    ExpandWeighted {
        /// The compiled automaton (shared machinery with `ExpandAutomaton`;
        /// its `semantics` field is not consulted — best-first settling is
        /// its own discipline).
        spec: AutomatonSpec,
        /// Which selective semiring orders the search.
        semiring: SemiringKind,
        /// Where each traversed edge's weight comes from.
        weight: WeightSource,
        /// Restriction on the input rows' heads (R6).
        from: Option<HashSet<VertexId>>,
        /// Restriction on *emitted* rows' heads (R6); intermediate automaton
        /// steps are unrestricted, and a head suppressed here still counts as
        /// emitted (the op emits at most one row per head either way).
        to: Option<HashSet<VertexId>>,
        /// Top-k emission cap pushed in by the optimizer (R9), shared across
        /// input rows like R7's automaton cap.
        k: Option<usize>,
    },
    /// Bounded Kleene iteration of a nested op sequence: rows that have
    /// completed `k` iterations for `min ≤ k ≤ max` are emitted (union
    /// semantics; `min..=min` is classic `times(n)`). With `until`, a row
    /// exits the loop — and is emitted — as soon as its head satisfies the
    /// predicate (checked from iteration `min` on); rows that never satisfy
    /// it within `max` iterations are dropped.
    Repeat {
        /// The loop body (contains no `DedupByVertex`/`Limit`; enforced at
        /// plan time so the body is stateless per row and distributes over
        /// row-at-a-time and partitioned execution).
        body: Vec<PlanOp>,
        /// Minimum completed iterations before a row may be emitted.
        min: usize,
        /// Maximum iterations.
        max: usize,
        /// Optional early-exit predicate on the row's head vertex.
        until: Option<(String, Predicate)>,
    },
    /// Restrict the frontier to the given vertices (the "go through these
    /// vertices" restriction of §III-C).
    RestrictVertices(HashSet<VertexId>),
    /// Restrict the frontier to vertices whose property satisfies a predicate
    /// (resolved against the snapshot at execution time).
    RestrictProperty {
        /// Property key.
        key: String,
        /// Predicate on the property value.
        predicate: Predicate,
    },
    /// Deduplicate rows by their current vertex.
    DedupByVertex,
    /// Keep at most this many rows.
    Limit(usize),
}

/// A planned traversal: the initial vertex frontier plus a sequence of
/// algebra-level operations.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    start: Vec<VertexId>,
    ops: Vec<PlanOp>,
}

impl LogicalPlan {
    /// The initial frontier (start vertices).
    pub fn start(&self) -> &[VertexId] {
        &self.start
    }

    /// The planned operations.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Decomposes the plan into its start frontier and op sequence (used by
    /// cursor compilation to move the ops into the stage tree instead of
    /// cloning them).
    pub fn into_parts(self) -> (Vec<VertexId>, Vec<PlanOp>) {
        (self.start, self.ops)
    }

    /// Whether any op of the plan (recursively, through repeat bodies) ever
    /// traverses `In`/`Both` edges — i.e. whether evaluating it can touch the
    /// snapshot's reversed graph. Pure-`Out` plans never trigger the lazy
    /// per-generation reversed-graph build; the parallel executor uses this
    /// annotation to prewarm the cache *before* spawning workers when the
    /// plan does need it (see [`GraphSnapshot::prewarm_reversed`]).
    pub fn needs_reversed(&self) -> bool {
        fn op_needs(op: &PlanOp) -> bool {
            match op {
                PlanOp::Expand { direction, .. } => *direction != Direction::Out,
                PlanOp::ExpandAutomaton { spec, .. } | PlanOp::ExpandWeighted { spec, .. } => {
                    spec.direction() != Direction::Out
                }
                PlanOp::Repeat { body, .. } => body.iter().any(op_needs),
                PlanOp::RestrictVertices(_)
                | PlanOp::RestrictProperty { .. }
                | PlanOp::DedupByVertex
                | PlanOp::Limit(_) => false,
            }
        }
        self.ops.iter().any(op_needs)
    }

    /// Which CSR directions evaluating this plan can read, as
    /// `(out, in)` — i.e. which label-restricted expansions it contains
    /// (recursively, through repeat bodies). Wildcard expansions read the
    /// hashmap adjacency and do not count. The executors use this annotation
    /// to prewarm exactly the CSR caches a vectorized run will touch, so
    /// pure-`Out` plans never build the In-CSR (nor, transitively, the
    /// reversed graph) and plans with no labeled expansion build nothing.
    pub fn csr_directions(&self) -> (bool, bool) {
        fn op_dirs(op: &PlanOp, out: &mut bool, in_: &mut bool) {
            let mut mark = |d: Direction| match d {
                Direction::Out => *out = true,
                Direction::In => *in_ = true,
                Direction::Both => {
                    *out = true;
                    *in_ = true;
                }
            };
            match op {
                PlanOp::Expand {
                    direction, labels, ..
                } => {
                    if labels.is_some() {
                        mark(*direction);
                    }
                }
                PlanOp::ExpandAutomaton { spec, .. } | PlanOp::ExpandWeighted { spec, .. } => {
                    mark(spec.direction());
                }
                PlanOp::Repeat { body, .. } => {
                    for op in body {
                        op_dirs(op, out, in_);
                    }
                }
                PlanOp::RestrictVertices(_)
                | PlanOp::RestrictProperty { .. }
                | PlanOp::DedupByVertex
                | PlanOp::Limit(_) => {}
            }
        }
        let (mut out, mut in_) = (false, false);
        for op in &self.ops {
            op_dirs(op, &mut out, &mut in_);
        }
        (out, in_)
    }

    /// Whether the plan benefits from chunked (vectorized) pulls: it contains
    /// at least one expansion op (recursively). Expansion-free plans are pure
    /// per-row filters over the start frontier — chunking them only adds
    /// buffering, so the cursor keeps them on the scalar drain.
    pub fn chunk_capable(&self) -> bool {
        fn op_expands(op: &PlanOp) -> bool {
            match op {
                PlanOp::Expand { .. }
                | PlanOp::ExpandAutomaton { .. }
                | PlanOp::ExpandWeighted { .. }
                | PlanOp::Repeat { .. } => true,
                PlanOp::RestrictVertices(_)
                | PlanOp::RestrictProperty { .. }
                | PlanOp::DedupByVertex
                | PlanOp::Limit(_) => false,
            }
        }
        self.ops.iter().any(op_expands)
    }

    /// Number of expansion (join) steps at the top level of the plan.
    pub fn expansion_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    PlanOp::Expand { .. }
                        | PlanOp::ExpandAutomaton { .. }
                        | PlanOp::ExpandWeighted { .. }
                        | PlanOp::Repeat { .. }
                )
            })
            .count()
    }

    /// A compact human-readable description of the plan (used by
    /// `Traversal::explain` and the experiment harness).
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("start({} vertices)", self.start.len())];
        for op in &self.ops {
            parts.push(describe_op(op));
        }
        parts.join(" → ")
    }
}

fn describe_restrictions(
    from: &Option<HashSet<VertexId>>,
    to: &Option<HashSet<VertexId>>,
) -> String {
    let mut s = String::new();
    if let Some(f) = from {
        let _ = write!(s, ", tail⊆{}", f.len());
    }
    if let Some(t) = to {
        let _ = write!(s, ", head⊆{}", t.len());
    }
    s
}

fn describe_op(op: &PlanOp) -> String {
    match op {
        PlanOp::Expand {
            direction,
            labels,
            from,
            to,
        } => {
            let dir = match direction {
                Direction::Out => "out",
                Direction::In => "in",
                Direction::Both => "both",
            };
            let labels = match labels {
                Some(ls) => format!("{} labels", ls.len()),
                None => "E".to_owned(),
            };
            format!("join[{dir}, {labels}{}]", describe_restrictions(from, to))
        }
        PlanOp::ExpandAutomaton {
            spec,
            from,
            to,
            limit,
        } => {
            let dir = match spec.direction {
                Direction::Out => "",
                Direction::In => ", in",
                Direction::Both => ", both",
            };
            let hops = if spec.max_hops == UNBOUNDED_MATCH_HOPS {
                "≤∞ hops".to_owned()
            } else {
                format!("≤{} hops", spec.max_hops)
            };
            let sem = match spec.semantics {
                Semantics::Walks => "",
                Semantics::Reachable => ", reachable",
                Semantics::GlobalReachable => ", global-reachable",
            };
            let lim = match limit {
                Some(n) => format!(", emit≤{n}"),
                None => String::new(),
            };
            format!(
                "automaton[{}, {hops}, {} states{dir}{sem}{lim}{}]",
                spec.pattern,
                spec.state_count(),
                describe_restrictions(from, to)
            )
        }
        PlanOp::ExpandWeighted {
            spec,
            semiring,
            weight,
            from,
            to,
            k,
        } => {
            let dir = match spec.direction {
                Direction::Out => "",
                Direction::In => ", in",
                Direction::Both => ", both",
            };
            let hops = if spec.max_hops == UNBOUNDED_MATCH_HOPS {
                String::new()
            } else {
                format!(", ≤{} hops", spec.max_hops)
            };
            let sr = match semiring {
                SemiringKind::Shortest => "shortest",
                SemiringKind::Widest => "widest",
            };
            let src = match weight {
                WeightSource::Unit => "hops".to_owned(),
                WeightSource::Property(key) => format!("edge.{key}"),
                WeightSource::Labels(t) => format!("{} labels", t.len()),
            };
            let cap = match k {
                Some(n) => format!(", top≤{n}"),
                None => String::new(),
            };
            format!(
                "weighted[{}, {sr} by {src}{hops}, {} states{dir}{cap}{}]",
                spec.pattern,
                spec.state_count(),
                describe_restrictions(from, to)
            )
        }
        PlanOp::Repeat {
            body,
            min,
            max,
            until,
        } => {
            let inner: Vec<String> = body.iter().map(describe_op).collect();
            let until = match until {
                Some((key, _)) => format!(", until({key})"),
                None => String::new(),
            };
            format!("repeat[{min}..={max}{until}]{{{}}}", inner.join(" → "))
        }
        PlanOp::RestrictVertices(vs) => format!("restrict({} vertices)", vs.len()),
        PlanOp::RestrictProperty { key, .. } => format!("has({key})"),
        PlanOp::DedupByVertex => "dedup".to_owned(),
        PlanOp::Limit(n) => format!("limit({n})"),
    }
}

/// Plans a pipeline against a snapshot without rewriting: resolves names,
/// computes the start frontier, and lowers each step 1:1 to a [`PlanOp`].
pub fn plan(
    snapshot: &GraphSnapshot,
    start: &StartSpec,
    steps: &[Step],
) -> Result<LogicalPlan, EngineError> {
    let start_vertices: Vec<VertexId> = match start {
        StartSpec::AllVertices => snapshot.graph().vertices().collect(),
        StartSpec::Named(names) => {
            let mut vs = Vec::with_capacity(names.len());
            for name in names {
                vs.push(snapshot.vertex(name)?);
            }
            vs
        }
        StartSpec::Where(key, pred) => snapshot.vertices_where(key, pred),
    };

    Ok(LogicalPlan {
        start: start_vertices,
        ops: lower_steps(snapshot, steps)?,
    })
}

fn lower_steps(snapshot: &GraphSnapshot, steps: &[Step]) -> Result<Vec<PlanOp>, EngineError> {
    let mut ops = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            Step::Out(labels) => ops.push(expand(snapshot, Direction::Out, labels.as_deref())?),
            Step::In(labels) => ops.push(expand(snapshot, Direction::In, labels.as_deref())?),
            Step::Both(labels) => ops.push(expand(snapshot, Direction::Both, labels.as_deref())?),
            Step::Match {
                pattern,
                max_hops,
                direction,
                semantics,
            } => {
                if *direction == Direction::Both {
                    return Err(EngineError::Unsupported(
                        "match_ patterns traverse Out or In; Both-direction automata are not \
                         supported"
                            .to_owned(),
                    ));
                }
                if *max_hops == UNBOUNDED_MATCH_HOPS && *semantics == Semantics::Walks {
                    return Err(EngineError::Unsupported(
                        "an unbounded hop count requires reachability semantics (the walk set of \
                         a cyclic graph is infinite); use match_within, match_reachable, or \
                         match_reachable_global"
                            .to_owned(),
                    ));
                }
                ops.push(PlanOp::ExpandAutomaton {
                    spec: compile_pattern(snapshot, pattern, *max_hops, *direction, *semantics)?,
                    from: None,
                    to: None,
                    limit: None,
                });
            }
            Step::Weighted {
                pattern,
                max_hops,
                direction,
                semiring,
                weight,
            } => {
                if *direction == Direction::Both {
                    return Err(EngineError::Unsupported(
                        "weighted patterns traverse Out or In; Both-direction automata are not \
                         supported"
                            .to_owned(),
                    ));
                }
                // best-first settling terminates without a hop bound (each
                // settled product pair expands once), so unbounded is the
                // default here — no Walks-style restriction
                let weight = match weight {
                    WeightSpec::Unit => WeightSource::Unit,
                    WeightSpec::Property(key) => WeightSource::Property(key.clone()),
                    WeightSpec::Labels(pairs) => {
                        let mut table = FxHashMap::default();
                        for (name, w) in pairs {
                            table.insert(snapshot.label(name)?, *w);
                        }
                        WeightSource::Labels(table)
                    }
                };
                ops.push(PlanOp::ExpandWeighted {
                    spec: compile_pattern(
                        snapshot,
                        pattern,
                        *max_hops,
                        *direction,
                        Semantics::Walks,
                    )?,
                    semiring: *semiring,
                    weight,
                    from: None,
                    to: None,
                    k: None,
                });
            }
            Step::WeightBy(_) => {
                return Err(EngineError::Unsupported(
                    "weight_by must immediately follow a weighted step (cheapest_/widest_)"
                        .to_owned(),
                ))
            }
            Step::Repeat {
                body,
                min,
                max,
                until,
            } => {
                if body.is_empty() {
                    return Err(EngineError::Unsupported(
                        "repeat requires a non-empty body".to_owned(),
                    ));
                }
                if min > max {
                    return Err(EngineError::Unsupported(format!(
                        "repeat requires min <= max, got {min}..={max}"
                    )));
                }
                let body_ops = lower_steps(snapshot, body)?;
                if body_ops.iter().any(contains_stateful) {
                    return Err(EngineError::Unsupported(
                        "dedup/limit inside a repeat body are not supported (the body must be \
                         stateless per row)"
                            .to_owned(),
                    ));
                }
                ops.push(PlanOp::Repeat {
                    body: body_ops,
                    min: *min,
                    max: *max,
                    until: until.clone(),
                });
            }
            Step::Has(key, pred) => ops.push(PlanOp::RestrictProperty {
                key: key.clone(),
                predicate: pred.clone(),
            }),
            Step::Is(names) => {
                let mut vs = HashSet::with_capacity(names.len());
                for name in names {
                    vs.insert(snapshot.vertex(name)?);
                }
                ops.push(PlanOp::RestrictVertices(vs));
            }
            Step::DedupByVertex => ops.push(PlanOp::DedupByVertex),
            Step::Limit(n) => ops.push(PlanOp::Limit(*n)),
        }
    }
    Ok(ops)
}

fn contains_stateful(op: &PlanOp) -> bool {
    match op {
        PlanOp::DedupByVertex | PlanOp::Limit(_) => true,
        // the shared seen-set makes the op stateful across rows
        PlanOp::ExpandAutomaton { spec, .. } => spec.semantics() == Semantics::GlobalReachable,
        PlanOp::Repeat { body, .. } => body.iter().any(contains_stateful),
        _ => false,
    }
}

fn expand(
    snapshot: &GraphSnapshot,
    direction: Direction,
    labels: Option<&[String]>,
) -> Result<PlanOp, EngineError> {
    Ok(PlanOp::Expand {
        direction,
        labels: resolve_labels(snapshot, labels)?,
        from: None,
        to: None,
    })
}

fn resolve_labels(
    snapshot: &GraphSnapshot,
    labels: Option<&[String]>,
) -> Result<Option<Vec<LabelId>>, EngineError> {
    match labels {
        None => Ok(None),
        Some(names) => {
            // deduplicate while preserving order: a label set, so listing a
            // label twice must not double the expansion's rows
            let mut ids = Vec::with_capacity(names.len());
            for name in names {
                let id = snapshot.label(name)?;
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            Ok(Some(ids))
        }
    }
}

/// Compiles a `match_` pattern: parse the label regex, resolve label names
/// against the snapshot, run it through the NFA → symbolic DFA → minimisation
/// pipeline of `mrpa-regex`, and collapse the result to a per-`(state, label)`
/// transition table.
fn compile_pattern(
    snapshot: &GraphSnapshot,
    pattern: &str,
    max_hops: usize,
    direction: Direction,
    semantics: Semantics,
) -> Result<AutomatonSpec, EngineError> {
    let expr = parse_label_expr(pattern)?;
    if expr.atom_count() > MAX_AUTOMATON_ATOMS {
        return Err(EngineError::InvalidPattern(format!(
            "pattern {pattern:?} desugars to {} atoms, more than the {MAX_AUTOMATON_ATOMS} the \
             symbolic DFA supports",
            expr.atom_count()
        )));
    }
    let label_regex = expr.resolve(&mut |name| snapshot.label(name))?;
    // a pattern whose shortest word is longer than the depth bound could only
    // ever return an empty result — reject it instead of silently matching
    // nothing (`min_word_len` is `None` for the empty language, which is
    // legitimately empty at every bound)
    if let Some(min) = label_regex.min_word_len() {
        if min > max_hops {
            return Err(EngineError::InvalidPattern(format!(
                "pattern {pattern:?} needs at least {min} edges but evaluation is bounded to \
                 {max_hops} hops; raise the bound with match_within"
            )));
        }
    }
    Ok(compile_label_regex(
        snapshot,
        &label_regex,
        pattern.to_owned(),
        direction,
        max_hops,
        semantics,
    ))
}

/// Compiles an already-resolved [`LabelRegex`] into an [`AutomatonSpec`].
/// Infallible: the caller guarantees the atom budget.
fn compile_label_regex(
    snapshot: &GraphSnapshot,
    regex: &LabelRegex,
    pattern: String,
    direction: Direction,
    max_hops: usize,
    semantics: Semantics,
) -> AutomatonSpec {
    debug_assert!(direction != Direction::Both);
    let graph = snapshot.graph();
    let nfa = Nfa::compile(&regex.to_path_regex());
    let dfa = minimize(&Dfa::compile(&nfa, graph));
    let accept: Vec<bool> = (0..dfa.state_count)
        .map(|s| dfa.is_accept_state(s))
        .collect();
    let mut raw = dfa.label_transition_table(graph);
    let dist_to_accept = dfa.min_edges_to_accept_from_table(&raw);
    // dead-state pruning: a move into a state that cannot reach acceptance
    // (e.g. the minimized DFA's merged dead block, or a suffix requiring a
    // label with no edges) can only feed frontier entries that never emit —
    // dropping it preserves the emission sequence exactly
    for row in &mut raw {
        row.retain(|&(_, target)| dist_to_accept[target].is_some());
    }
    // second pass: enrich the surviving moves with the per-target facts the
    // walkers need, so acceptance/liveness/distance checks happen once per
    // compile instead of once per produced row
    let live: Vec<bool> = raw.iter().map(|row| !row.is_empty()).collect();
    let by_label: Vec<Vec<AutoMove>> = raw
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(label, target)| AutoMove {
                    label,
                    target,
                    accepts: accept[target],
                    target_live: live[target],
                    min_edges_to_accept: dist_to_accept[target]
                        .expect("pruned table only keeps accept-reachable targets"),
                })
                .collect()
        })
        .collect();
    AutomatonSpec {
        pattern,
        direction,
        max_hops,
        semantics,
        start: dfa.start,
        accept,
        by_label,
        dist_to_accept,
    }
}

// ---------------------------------------------------------------------------
// The rewriting optimizer
// ---------------------------------------------------------------------------

/// Rewrites a plan with the rule set described in the module docs. The
/// rewritten plan produces the exact row sequence of the input plan under
/// every execution strategy.
pub fn optimize(snapshot: &GraphSnapshot, plan: &LogicalPlan) -> LogicalPlan {
    // R3's dataflow fact for the initial rows: heads are the start vertices,
    // which are distinct unless the same name was listed twice.
    let mut seen = HashSet::with_capacity(plan.start.len());
    let start_distinct = plan.start.iter().all(|v| seen.insert(*v));
    LogicalPlan {
        start: plan.start.clone(),
        ops: optimize_ops(snapshot, plan.ops.clone(), start_distinct),
    }
}

fn optimize_ops(
    snapshot: &GraphSnapshot,
    mut ops: Vec<PlanOp>,
    start_distinct: bool,
) -> Vec<PlanOp> {
    // optimize repeat bodies first (their incoming rows are arbitrary, so the
    // distinctness fact never holds on entry)
    for op in &mut ops {
        if let PlanOp::Repeat { body, .. } = op {
            *body = optimize_ops(snapshot, std::mem::take(body), false);
        }
    }
    // apply the rule passes to a fixpoint (each pass only ever shrinks or
    // annotates the op list, so this converges quickly; the bound is a guard)
    for _ in 0..8 {
        let mut changed = false;
        ops = fuse_restrictions(snapshot, ops, &mut changed);
        ops = fuse_limits(ops, &mut changed);
        ops = remove_redundant_dedups(ops, start_distinct, &mut changed);
        ops = merge_expand_runs(snapshot, ops, &mut changed);
        ops = push_restrictions_into_expands(ops, &mut changed);
        push_limits_into_automata(&mut ops, &mut changed);
        upgrade_automata_to_reachability(&mut ops, &mut changed);
        if !changed {
            break;
        }
    }
    ops
}

/// R1: fuse adjacent vertex/property restrictions.
fn fuse_restrictions(
    snapshot: &GraphSnapshot,
    ops: Vec<PlanOp>,
    changed: &mut bool,
) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(ops.len());
    for op in ops {
        let fused = match (out.last(), &op) {
            (Some(PlanOp::RestrictVertices(a)), PlanOp::RestrictVertices(b)) => Some(
                PlanOp::RestrictVertices(a.intersection(b).copied().collect()),
            ),
            (Some(PlanOp::RestrictVertices(a)), PlanOp::RestrictProperty { key, predicate }) => {
                Some(PlanOp::RestrictVertices(
                    a.iter()
                        .copied()
                        .filter(|&v| predicate.eval(snapshot.vertex_property(v, key)))
                        .collect(),
                ))
            }
            (Some(PlanOp::RestrictProperty { key, predicate }), PlanOp::RestrictVertices(b)) => {
                Some(PlanOp::RestrictVertices(
                    b.iter()
                        .copied()
                        .filter(|&v| predicate.eval(snapshot.vertex_property(v, key)))
                        .collect(),
                ))
            }
            _ => None,
        };
        match fused {
            Some(newop) => {
                out.pop();
                out.push(newop);
                *changed = true;
            }
            None => out.push(op),
        }
    }
    out
}

/// R2: fuse adjacent limits; drop everything after a `Limit(0)`.
fn fuse_limits(ops: Vec<PlanOp>, changed: &mut bool) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if matches!(out.last(), Some(PlanOp::Limit(0))) {
            *changed = true;
            continue; // dead tail
        }
        if let (Some(PlanOp::Limit(m)), PlanOp::Limit(n)) = (out.last(), &op) {
            let fused = (*m).min(*n);
            out.pop();
            out.push(PlanOp::Limit(fused));
            *changed = true;
            continue;
        }
        out.push(op);
    }
    out
}

/// R3: remove `DedupByVertex` ops whose input rows are provably
/// distinct-by-head.
fn remove_redundant_dedups(
    ops: Vec<PlanOp>,
    start_distinct: bool,
    changed: &mut bool,
) -> Vec<PlanOp> {
    let mut distinct = start_distinct;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match &op {
            PlanOp::DedupByVertex => {
                if distinct {
                    *changed = true;
                    continue; // identity
                }
                distinct = true;
            }
            PlanOp::RestrictVertices(_) | PlanOp::RestrictProperty { .. } | PlanOp::Limit(_) => {}
            PlanOp::Expand { .. }
            | PlanOp::ExpandAutomaton { .. }
            | PlanOp::ExpandWeighted { .. }
            | PlanOp::Repeat { .. } => {
                distinct = false;
            }
        }
        out.push(op);
    }
    out
}

/// R5: merge runs of ≥ 2 consecutive unrestricted same-direction
/// *single-label* expansions into one product-automaton step.
///
/// Only single-label steps are mergeable because only they preserve the row
/// sequence: a single-label `Expand` and the chain automaton both emit
/// `out_edges_labeled(head, ℓ)` adjacency in the same order. A multi-label or
/// wildcard `Expand` emits edges in the step's label-list (respectively raw
/// adjacency) order, while the automaton's per-state moves are in *graph
/// label order* — merging those would reorder rows and change what a
/// downstream `Limit` keeps.
fn merge_expand_runs(
    snapshot: &GraphSnapshot,
    ops: Vec<PlanOp>,
    changed: &mut bool,
) -> Vec<PlanOp> {
    let mergeable = |op: &PlanOp, dir: Direction| {
        matches!(
            op,
            PlanOp::Expand { direction, labels: Some(ls), from: None, to: None }
                if *direction == dir && ls.len() == 1
        )
    };
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let run_dir = match &ops[i] {
            PlanOp::Expand {
                direction: direction @ (Direction::Out | Direction::In),
                ..
            } => *direction,
            _ => {
                out.push(ops[i].clone());
                i += 1;
                continue;
            }
        };
        if !mergeable(&ops[i], run_dir) {
            out.push(ops[i].clone());
            i += 1;
            continue;
        }
        let mut j = i;
        while j < ops.len() && mergeable(&ops[j], run_dir) {
            j += 1;
        }
        let run = &ops[i..j];
        if run.len() < 2 || run.len() > MAX_AUTOMATON_ATOMS {
            out.extend_from_slice(run);
        } else {
            out.push(merge_run(snapshot, run, run_dir));
            *changed = true;
        }
        i = j;
    }
    out
}

fn merge_run(snapshot: &GraphSnapshot, run: &[PlanOp], direction: Direction) -> PlanOp {
    let mut regex: Option<LabelRegex> = None;
    let mut pattern = String::new();
    for (idx, op) in run.iter().enumerate() {
        let PlanOp::Expand {
            labels: Some(ls), ..
        } = op
        else {
            unreachable!("merge_run only receives labeled Expand ops");
        };
        let [label] = ls[..] else {
            unreachable!("merge_run only receives single-label Expand ops");
        };
        if idx > 0 {
            pattern.push('·');
        }
        pattern.push_str(&render_label(snapshot, label));
        let atom = LabelRegex::Label(label);
        regex = Some(match regex {
            None => atom,
            Some(prev) => prev.concat(atom),
        });
    }
    let regex = regex.expect("run is non-empty");
    PlanOp::ExpandAutomaton {
        spec: compile_label_regex(
            snapshot,
            &regex,
            pattern,
            direction,
            run.len(),
            Semantics::Walks,
        ),
        from: None,
        to: None,
        limit: None,
    }
}

fn render_label(snapshot: &GraphSnapshot, label: LabelId) -> String {
    snapshot
        .interner()
        .label_name(label)
        .map(str::to_owned)
        .unwrap_or_else(|| label.to_string())
}

/// R6: push `RestrictVertices` into the neighbouring expansion's edge-set
/// restriction.
fn push_restrictions_into_expands(ops: Vec<PlanOp>, changed: &mut bool) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(ops.len());
    for mut op in ops {
        // restriction *after* an expansion → head-side (`to`) restriction
        if let PlanOp::RestrictVertices(vs) = &op {
            if let Some(
                PlanOp::Expand { to, .. }
                | PlanOp::ExpandAutomaton { to, .. }
                | PlanOp::ExpandWeighted { to, .. },
            ) = out.last_mut()
            {
                intersect_into(to, vs);
                *changed = true;
                continue;
            }
        }
        // restriction *before* an expansion → tail-side (`from`) restriction
        if let PlanOp::Expand { from, .. }
        | PlanOp::ExpandAutomaton { from, .. }
        | PlanOp::ExpandWeighted { from, .. } = &mut op
        {
            if let Some(PlanOp::RestrictVertices(vs)) = out.last() {
                let vs = vs.clone();
                intersect_into(from, &vs);
                out.pop();
                *changed = true;
            }
        }
        out.push(op);
    }
    out
}

fn intersect_into(slot: &mut Option<HashSet<VertexId>>, vs: &HashSet<VertexId>) {
    match slot {
        Some(existing) => existing.retain(|v| vs.contains(v)),
        None => *slot = Some(vs.clone()),
    }
}

/// R7: push a `Limit(n)` that immediately follows an `ExpandAutomaton` into
/// the automaton's emission cap.
///
/// Soundness: `Limit(n)` keeps the first `n` rows of the automaton's emission
/// sequence; an automaton that stops walking (and skips its remaining input
/// rows) after emitting `n` rows produces *exactly* that prefix, in the same
/// order. The `Limit` op itself is kept — the annotation only lets every
/// executor stop the product-automaton walk the moment the limit is covered
/// instead of enumerating the full (possibly astronomically large) walk set
/// and truncating afterwards. Emissions are counted after the automaton's
/// `to`-restriction, i.e. exactly the rows the `Limit` sees.
fn push_limits_into_automata(ops: &mut [PlanOp], changed: &mut bool) {
    for i in 1..ops.len() {
        let PlanOp::Limit(n) = ops[i] else { continue };
        // R7 for breadth-first automata, R9 for best-first weighted ones —
        // the cap semantics (truncate the emission sequence, then skip the
        // remaining input rows) is identical
        if let PlanOp::ExpandAutomaton { limit, .. } | PlanOp::ExpandWeighted { k: limit, .. } =
            &mut ops[i - 1]
        {
            let fused = limit.map_or(n, |l| l.min(n));
            if *limit != Some(fused) {
                *limit = Some(fused);
                *changed = true;
            }
        }
    }
}

/// R8: evaluate an automaton under reachability semantics when only
/// reachability is observable downstream.
///
/// A `DedupByVertex` that follows an `ExpandAutomaton` — possibly with
/// head-based filters (`RestrictVertices`, `RestrictProperty`) in between, but
/// no `Limit` or expansion — keeps only the *first* emission per head.
/// Switching the automaton to [`Semantics::Reachable`] drops, per input row,
/// every frontier entry whose `(vertex, dfa-state)` pair was already seen.
/// Such an entry is a duplicate of an earlier entry with the same pair, whose
/// canonical copy produces the same descendants *earlier* in the emission
/// order (same vertex + same state ⇒ same moves over the same adjacency
/// slices). By induction over BFS layers, the reachable emission sequence is
/// exactly the subsequence of the walk emission sequence keeping the first
/// emission per `(head, state)` — same rows, same paths, same relative order.
/// The first emission per *head* is therefore the same row in both modes, the
/// intervening filters decide on heads alone, and the dedup output is
/// row-for-row identical — while the walk itself shrinks from the walk set
/// (exponential on dense cyclic graphs) to at most `|V| · |states|` frontier
/// entries per input row. An already-annotated emission `limit` blocks the
/// rewrite: the limit counts walks, and truncating the deduplicated sequence
/// at `n` keeps different rows than truncating the full one.
///
/// Only *cyclic* automata (a `*`/`+`/`{n,}` in the pattern) are upgraded:
/// they are the ones whose walk set can grow without bound, so the per-row
/// seen-set pays for itself. An acyclic (chain-shaped) automaton — e.g. an
/// R5-merged `ℓ₁·ℓ₂` run — has its walk count bounded by the depth anyway,
/// and the dedup bookkeeping would be pure overhead (`exp_optimizer`'s
/// `dedup_limit` workload regressed 3× before this gate).
fn upgrade_automata_to_reachability(ops: &mut [PlanOp], changed: &mut bool) {
    for i in 0..ops.len() {
        let followed_by_dedup = ops[i + 1..]
            .iter()
            .find(|op| {
                !matches!(
                    op,
                    PlanOp::RestrictVertices(_) | PlanOp::RestrictProperty { .. }
                )
            })
            .is_some_and(|op| matches!(op, PlanOp::DedupByVertex));
        if !followed_by_dedup {
            continue;
        }
        if let PlanOp::ExpandAutomaton {
            spec, limit: None, ..
        } = &mut ops[i]
        {
            if spec.semantics == Semantics::Walks && spec.has_cycle() {
                spec.semantics = Semantics::Reachable;
                *changed = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cardinality estimation and the plan report
// ---------------------------------------------------------------------------

/// A per-op cardinality estimate (rows *after* the op has run).
#[derive(Debug, Clone, PartialEq)]
pub struct OpEstimate {
    /// Human-readable op description.
    pub op: String,
    /// Estimated row count after the op.
    pub rows: f64,
}

/// The structured output of `Traversal::explain`: the naive (pre-rewrite)
/// plan, the optimized (post-rewrite) plan, and per-op cardinality estimates
/// for the optimized plan derived from snapshot label frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    before: LogicalPlan,
    after: LogicalPlan,
    estimates: Vec<OpEstimate>,
}

impl PlanReport {
    /// The naive plan, as lowered 1:1 from the pipeline steps.
    pub fn before(&self) -> &LogicalPlan {
        &self.before
    }

    /// The plan after the rewriting optimizer ran.
    pub fn after(&self) -> &LogicalPlan {
        &self.after
    }

    /// Per-op estimates for the optimized plan: entry 0 is the start
    /// frontier, entry `i + 1` the rows after `after().ops()[i]`.
    pub fn estimates(&self) -> &[OpEstimate] {
        &self.estimates
    }

    /// Whether the optimizer changed the plan.
    pub fn rewritten(&self) -> bool {
        self.before != self.after
    }

    /// A multi-line rendering of the report.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "before: {}", self.before.describe());
        let _ = writeln!(s, "after:  {}", self.after.describe());
        let _ = writeln!(s, "estimates:");
        for e in &self.estimates {
            let _ = writeln!(s, "  {:>12.2}  {}", e.rows, e.op);
        }
        s
    }
}

/// Plans, optimizes, and estimates a pipeline: the full report behind
/// `Traversal::explain`.
pub fn report(
    snapshot: &GraphSnapshot,
    start: &StartSpec,
    steps: &[Step],
) -> Result<PlanReport, EngineError> {
    let before = plan(snapshot, start, steps)?;
    let after = optimize(snapshot, &before);
    let estimates = estimate(snapshot, &after);
    Ok(PlanReport {
        before,
        after,
        estimates,
    })
}

/// Estimates per-op row counts for a plan from snapshot label frequencies
/// (average label degree `|E_ℓ| / |V|`), vertex-set sizes, and — for `has` —
/// the predicate's actual selectivity over `V`. Expansion estimates assume
/// frontier heads are uniformly distributed over `V`; automaton and repeat
/// estimates additionally assume depth-independence. Heuristics, not bounds.
pub fn estimate(snapshot: &GraphSnapshot, plan: &LogicalPlan) -> Vec<OpEstimate> {
    let mut rows = plan.start.len() as f64;
    let mut out = vec![OpEstimate {
        op: format!("start({} vertices)", plan.start.len()),
        rows,
    }];
    for op in &plan.ops {
        rows = estimate_op(snapshot, rows, op);
        out.push(OpEstimate {
            op: describe_op(op),
            rows,
        });
    }
    out
}

fn vertex_count(snapshot: &GraphSnapshot) -> f64 {
    snapshot.graph().vertex_count().max(1) as f64
}

fn set_selectivity(snapshot: &GraphSnapshot, set: &Option<HashSet<VertexId>>) -> f64 {
    match set {
        None => 1.0,
        Some(vs) => (vs.len() as f64 / vertex_count(snapshot)).min(1.0),
    }
}

fn avg_degree(snapshot: &GraphSnapshot, direction: Direction, labels: Option<&[LabelId]>) -> f64 {
    let g = snapshot.graph();
    let total = match labels {
        None => g.edge_count(),
        Some(ls) => ls.iter().map(|&l| g.edges_with_label(l).len()).sum(),
    } as f64;
    let per_vertex = total / vertex_count(snapshot);
    match direction {
        Direction::Both => 2.0 * per_vertex,
        _ => per_vertex,
    }
}

fn estimate_op(snapshot: &GraphSnapshot, rows: f64, op: &PlanOp) -> f64 {
    let v = vertex_count(snapshot);
    match op {
        PlanOp::Expand {
            direction,
            labels,
            from,
            to,
        } => {
            rows * set_selectivity(snapshot, from)
                * avg_degree(snapshot, *direction, labels.as_deref())
                * set_selectivity(snapshot, to)
        }
        PlanOp::ExpandAutomaton {
            spec,
            from,
            to,
            limit,
        } => {
            let labels: Vec<LabelId> = {
                let mut ls: Vec<LabelId> = spec
                    .by_label
                    .iter()
                    .flat_map(|moves| moves.iter().map(|m| m.label))
                    .collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            };
            let deg = avg_degree(snapshot, spec.direction, Some(&labels));
            let accept_ratio = spec.accept.iter().filter(|&&a| a).count() as f64
                / spec.state_count().max(1) as f64;
            let mut frontier = rows * set_selectivity(snapshot, from);
            let mut emitted = if spec.is_accept(spec.start) {
                frontier
            } else {
                0.0
            };
            // the estimation loop is depth-capped independently of max_hops:
            // an unbounded reachable automaton terminates on frontier
            // saturation, which the depth-independence heuristic cannot model
            for _ in 1..=spec.max_hops.min(64) {
                frontier *= deg;
                emitted += frontier * accept_ratio;
                if frontier < 1e-9 {
                    break;
                }
            }
            if spec.semantics != Semantics::Walks {
                emitted = emitted.min(vertex_count(snapshot) * spec.state_count() as f64 * rows);
            }
            if spec.semantics == Semantics::GlobalReachable {
                // one emission per (vertex, state) for the whole op
                emitted = emitted.min(vertex_count(snapshot) * spec.state_count() as f64);
            }
            let emitted = emitted * set_selectivity(snapshot, to);
            match limit {
                Some(n) => emitted.min(*n as f64),
                None => emitted,
            }
        }
        PlanOp::ExpandWeighted { from, to, k, .. } => {
            // at most one emission per (input row, head vertex)
            let emitted = rows * set_selectivity(snapshot, from) * vertex_count(snapshot);
            let emitted = emitted * set_selectivity(snapshot, to);
            match k {
                Some(n) => emitted.min(*n as f64),
                None => emitted,
            }
        }
        PlanOp::Repeat { body, min, max, .. } => {
            let mut frontier = rows;
            let mut emitted = if *min == 0 { rows } else { 0.0 };
            for k in 1..=*max {
                for body_op in body {
                    frontier = estimate_op(snapshot, frontier, body_op);
                }
                if k >= *min {
                    emitted += frontier;
                }
                if frontier < 1e-9 {
                    break;
                }
            }
            emitted
        }
        PlanOp::RestrictVertices(vs) => rows * (vs.len() as f64 / v).min(1.0),
        PlanOp::RestrictProperty { key, predicate } => {
            let matching = snapshot.vertices_where(key, predicate).len() as f64;
            rows * (matching / v).min(1.0)
        }
        PlanOp::DedupByVertex => rows.min(v),
        PlanOp::Limit(n) => rows.min(*n as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::classic_social_graph;
    use crate::value::{Predicate, Value};

    fn out_step(labels: &[&str]) -> Step {
        Step::Out(Some(labels.iter().map(|s| s.to_string()).collect()))
    }

    #[test]
    fn plan_resolves_names_and_lowers_steps() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["marko".into()]),
            &[
                out_step(&["knows"]),
                Step::Has("age".into(), Predicate::Gt(30.0)),
                out_step(&["created"]),
                Step::DedupByVertex,
                Step::Limit(5),
            ],
        )
        .unwrap();
        assert_eq!(plan.start().len(), 1);
        assert_eq!(plan.ops().len(), 5);
        assert_eq!(plan.expansion_count(), 2);
        let desc = plan.describe();
        assert!(desc.contains("join[out"));
        assert!(desc.contains("has(age)"));
        assert!(desc.contains("limit(5)"));
    }

    #[test]
    fn needs_reversed_detects_in_and_both_anywhere_in_the_plan() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let p = |steps: &[Step]| plan(&snap, &StartSpec::AllVertices, steps).unwrap();
        // pure-Out plans — including stateful tails and Out-repeat bodies
        assert!(!p(&[out_step(&["knows"]), Step::DedupByVertex]).needs_reversed());
        assert!(!p(&[Step::Repeat {
            body: vec![out_step(&["knows"])],
            min: 1,
            max: 2,
            until: None,
        }])
        .needs_reversed());
        assert!(!p(&[Step::Match {
            pattern: "knows+".into(),
            max_hops: 3,
            direction: Direction::Out,
            semantics: Semantics::Walks,
        }])
        .needs_reversed());
        // In/Both steps flip the bit, wherever they sit
        assert!(p(&[Step::In(None)]).needs_reversed());
        assert!(p(&[Step::Both(None)]).needs_reversed());
        assert!(p(&[Step::Repeat {
            body: vec![Step::In(None)],
            min: 1,
            max: 2,
            until: None,
        }])
        .needs_reversed());
        assert!(p(&[Step::Match {
            pattern: "knows+".into(),
            max_hops: 3,
            direction: Direction::In,
            semantics: Semantics::Walks,
        }])
        .needs_reversed());
    }

    #[test]
    fn all_vertices_start_covers_v() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(&snap, &StartSpec::AllVertices, &[]).unwrap();
        assert_eq!(plan.start().len(), 6);
        assert_eq!(plan.expansion_count(), 0);
    }

    #[test]
    fn where_start_uses_property_index() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Where("lang".into(), Predicate::Eq(Value::from("java"))),
            &[],
        )
        .unwrap();
        assert_eq!(plan.start().len(), 2);
    }

    #[test]
    fn unknown_names_error_at_plan_time() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert!(matches!(
            plan(&snap, &StartSpec::Named(vec!["ghost".into()]), &[]),
            Err(EngineError::UnknownVertex(_))
        ));
        assert!(matches!(
            plan(&snap, &StartSpec::AllVertices, &[out_step(&["likes"])]),
            Err(EngineError::UnknownLabel(_))
        ));
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Is(vec!["ghost".into()])]
            ),
            Err(EngineError::UnknownVertex(_))
        ));
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Match {
                    pattern: "likes".into(),
                    max_hops: 4,
                    direction: Direction::Out,
                    semantics: Semantics::Walks,
                }]
            ),
            Err(EngineError::UnknownLabel(_))
        ));
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Match {
                    pattern: "knows |".into(),
                    max_hops: 4,
                    direction: Direction::Out,
                    semantics: Semantics::Walks,
                }]
            ),
            Err(EngineError::InvalidPattern(_))
        ));
        // a bound the pattern's shortest word cannot fit is rejected, not
        // silently empty
        assert!(matches!(
            plan(
                &snap,
                &StartSpec::AllVertices,
                &[Step::Match {
                    pattern: "knows{17}".into(),
                    max_hops: 16,
                    direction: Direction::Out,
                    semantics: Semantics::Walks,
                }]
            ),
            Err(EngineError::InvalidPattern(_))
        ));
        // ...while the empty language is legitimately empty at any bound
        assert!(plan(
            &snap,
            &StartSpec::AllVertices,
            &[Step::Match {
                pattern: "empty".into(),
                max_hops: 4,
                direction: Direction::Out,
                semantics: Semantics::Walks,
            }]
        )
        .is_ok());
    }

    #[test]
    fn duplicate_labels_are_deduplicated_at_plan_time() {
        // `.out(["knows", "knows"])` is a label *set*: listing a label twice
        // must not double the expansion's rows
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["marko".into()]),
            &[out_step(&["knows", "knows"])],
        )
        .unwrap();
        assert_eq!(
            plan.ops()[0],
            PlanOp::Expand {
                direction: Direction::Out,
                labels: Some(vec![snap.label("knows").unwrap()]),
                from: None,
                to: None,
            }
        );
    }

    #[test]
    fn in_and_both_steps_plan_with_their_directions() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["lop".into()]),
            &[Step::In(None), Step::Both(None)],
        )
        .unwrap();
        assert!(matches!(
            plan.ops()[0],
            PlanOp::Expand {
                direction: Direction::In,
                labels: None,
                ..
            }
        ));
        assert!(matches!(
            plan.ops()[1],
            PlanOp::Expand {
                direction: Direction::Both,
                labels: None,
                ..
            }
        ));
    }

    #[test]
    fn match_lowers_to_a_minimized_product_automaton() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let plan = plan(
            &snap,
            &StartSpec::Named(vec!["marko".into()]),
            &[Step::Match {
                pattern: "knows+·created".into(),
                max_hops: 8,
                direction: Direction::Out,
                semantics: Semantics::Walks,
            }],
        )
        .unwrap();
        let PlanOp::ExpandAutomaton { spec, .. } = &plan.ops()[0] else {
            panic!("expected an automaton op, got {:?}", plan.ops()[0]);
        };
        assert_eq!(spec.pattern(), "knows+·created");
        assert_eq!(spec.max_hops(), 8);
        assert!(spec.state_count() >= 3);
        assert!(!spec.is_accept(spec.start_state()));
        assert!(plan.describe().contains("automaton[knows+·created"));
    }

    #[test]
    fn repeat_bodies_reject_stateful_ops() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let bad = Step::Repeat {
            body: vec![out_step(&["knows"]), Step::Limit(3)],
            min: 1,
            max: 3,
            until: None,
        };
        assert!(matches!(
            plan(&snap, &StartSpec::AllVertices, &[bad]),
            Err(EngineError::Unsupported(_))
        ));
        let empty = Step::Repeat {
            body: vec![],
            min: 0,
            max: 3,
            until: None,
        };
        assert!(matches!(
            plan(&snap, &StartSpec::AllVertices, &[empty]),
            Err(EngineError::Unsupported(_))
        ));
    }

    // -- optimizer rules ----------------------------------------------------

    fn named_start(names: &[&str]) -> StartSpec {
        StartSpec::Named(names.iter().map(|s| s.to_string()).collect())
    }

    fn optimized(
        g: &crate::store::PropertyGraph,
        start: &StartSpec,
        steps: &[Step],
    ) -> LogicalPlan {
        let snap = g.snapshot();
        let naive = plan(&snap, start, steps).unwrap();
        optimize(&snap, &naive)
    }

    #[test]
    fn r1_adjacent_restrictions_fuse() {
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[
                Step::Is(vec!["marko".into(), "josh".into(), "lop".into()]),
                Step::Is(vec!["josh".into(), "lop".into()]),
                Step::Has("kind".into(), Predicate::Eq(Value::from("person"))),
            ],
        );
        // three filters fuse into one concrete vertex set {josh}
        assert_eq!(plan.ops().len(), 1);
        let PlanOp::RestrictVertices(vs) = &plan.ops()[0] else {
            panic!("expected fused restriction, got {:?}", plan.ops()[0]);
        };
        let snap = g.snapshot();
        assert_eq!(vs.len(), 1);
        assert!(vs.contains(&snap.vertex("josh").unwrap()));
    }

    #[test]
    fn r2_limits_fuse_and_limit_zero_kills_the_tail() {
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[Step::Limit(7), Step::Limit(3), Step::Limit(5)],
        );
        assert_eq!(plan.ops(), &[PlanOp::Limit(3)]);
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[Step::Limit(0), Step::Out(None), Step::DedupByVertex],
        );
        assert_eq!(plan.ops(), &[PlanOp::Limit(0)]);
    }

    #[test]
    fn r3_redundant_dedups_are_removed() {
        let g = classic_social_graph();
        // distinct start + filters: both dedups are identities
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[
                Step::DedupByVertex,
                Step::Has("kind".into(), Predicate::Exists),
                Step::DedupByVertex,
            ],
        );
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, PlanOp::DedupByVertex)));
        // after an expansion the dedup must survive
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[Step::Out(None), Step::DedupByVertex],
        );
        assert!(plan
            .ops()
            .iter()
            .any(|op| matches!(op, PlanOp::DedupByVertex)));
        // duplicate start names: the first dedup is NOT redundant
        let plan = optimized(
            &g,
            &named_start(&["marko", "marko"]),
            &[Step::DedupByVertex],
        );
        assert_eq!(plan.ops(), &[PlanOp::DedupByVertex]);
    }

    #[test]
    fn r4_optimizer_leaves_dedup_limit_order_alone() {
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &StartSpec::AllVertices,
            &[Step::Out(None), Step::DedupByVertex, Step::Limit(2)],
        );
        // dedup (not redundant here) must still precede limit
        let dedup_pos = plan
            .ops()
            .iter()
            .position(|op| matches!(op, PlanOp::DedupByVertex))
            .expect("dedup survives");
        let limit_pos = plan
            .ops()
            .iter()
            .position(|op| matches!(op, PlanOp::Limit(_)))
            .expect("limit survives");
        assert!(dedup_pos < limit_pos);
    }

    #[test]
    fn r5_expand_runs_merge_into_an_automaton() {
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[out_step(&["knows"]), out_step(&["created"])],
        );
        assert_eq!(plan.ops().len(), 1);
        let PlanOp::ExpandAutomaton { spec, .. } = &plan.ops()[0] else {
            panic!("expected merged automaton, got {:?}", plan.ops()[0]);
        };
        assert_eq!(spec.pattern(), "knows·created");
        assert_eq!(spec.max_hops(), 2);
        assert_eq!(spec.direction(), Direction::Out);
        // a direction change breaks the run
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[out_step(&["knows"]), Step::In(Some(vec!["created".into()]))],
        );
        assert_eq!(plan.ops().len(), 2);
    }

    #[test]
    fn r5_multi_label_and_wildcard_runs_are_not_merged() {
        // Merging would reorder rows: the automaton emits edges grouped by
        // graph label order, a multi-label Expand in the step's label-list
        // order — under a downstream Limit those keep different rows.
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[
                out_step(&["knows", "created"]),
                out_step(&["created", "knows"]),
            ],
        );
        assert_eq!(plan.ops().len(), 2);
        assert!(plan
            .ops()
            .iter()
            .all(|op| matches!(op, PlanOp::Expand { .. })));
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[Step::Out(None), Step::Out(None)],
        );
        assert_eq!(plan.ops().len(), 2);
        // mixed runs merge only the single-label suffix/prefix of length ≥ 2
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[
                Step::Out(None),
                out_step(&["knows"]),
                out_step(&["created"]),
            ],
        );
        assert_eq!(plan.ops().len(), 2);
        assert!(matches!(plan.ops()[0], PlanOp::Expand { .. }));
        assert!(matches!(plan.ops()[1], PlanOp::ExpandAutomaton { .. }));
    }

    #[test]
    fn r6_is_restrictions_push_into_expansions() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let josh = snap.vertex("josh").unwrap();
        // restriction after the expand → head-side restriction
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[out_step(&["knows"]), Step::Is(vec!["josh".into()])],
        );
        assert_eq!(plan.ops().len(), 1);
        let PlanOp::Expand { to: Some(to), .. } = &plan.ops()[0] else {
            panic!("expected pushed head restriction, got {:?}", plan.ops()[0]);
        };
        assert!(to.contains(&josh));
        // restriction between two expands → from-side of the second
        let plan = optimized(
            &g,
            &named_start(&["marko"]),
            &[
                out_step(&["knows"]),
                Step::Is(vec!["josh".into()]),
                Step::In(Some(vec!["knows".into()])),
            ],
        );
        // the Is lands as `to` of the first expand (scan order), leaving two ops
        assert_eq!(plan.ops().len(), 2);
        assert!(plan.describe().contains("head⊆1"));
    }

    #[test]
    fn weighted_steps_lower_to_expand_weighted() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let t = crate::Traversal::over(&g)
            .v(["marko"])
            .cheapest_("knows+·created")
            .weight_by_labels([("knows", 1.0), ("created", 2.5)]);
        let plan = plan(&snap, t.start_spec(), t.steps()).unwrap();
        let PlanOp::ExpandWeighted {
            spec,
            semiring,
            weight,
            k,
            ..
        } = &plan.ops()[0]
        else {
            panic!("expected a weighted op, got {:?}", plan.ops()[0]);
        };
        assert_eq!(spec.pattern(), "knows+·created");
        assert_eq!(spec.max_hops(), UNBOUNDED_MATCH_HOPS);
        assert_eq!(*semiring, SemiringKind::Shortest);
        assert_eq!(*k, None);
        let WeightSource::Labels(table) = weight else {
            panic!("expected a resolved label table, got {weight:?}");
        };
        assert_eq!(table.len(), 2);
        assert_eq!(table[&snap.label("created").unwrap()], 2.5);
        assert!(plan
            .describe()
            .contains("weighted[knows+·created, shortest"));
        assert_eq!(plan.expansion_count(), 1);
    }

    #[test]
    fn dangling_weight_by_is_rejected_at_plan_time() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let t = crate::Traversal::over(&g)
            .out(["knows"])
            .weight_by("weight");
        assert!(matches!(
            plan(&snap, t.start_spec(), t.steps()),
            Err(EngineError::Unsupported(_))
        ));
        // and a weight table with an unknown label name fails resolution
        let t = crate::Traversal::over(&g)
            .cheapest_("knows")
            .weight_by_labels([("likes", 1.0)]);
        assert!(matches!(
            plan(&snap, t.start_spec(), t.steps()),
            Err(EngineError::UnknownLabel(_))
        ));
    }

    #[test]
    fn r9_limit_pushes_into_the_weighted_top_k_cap() {
        let g = classic_social_graph();
        let t = crate::Traversal::over(&g)
            .v(["marko"])
            .cheapest_("knows+")
            .top_k(2);
        let snap = g.snapshot();
        let naive = plan(&snap, t.start_spec(), t.steps()).unwrap();
        let optimized = optimize(&snap, &naive);
        let PlanOp::ExpandWeighted { k, .. } = &optimized.ops()[0] else {
            panic!("expected a weighted op");
        };
        assert_eq!(*k, Some(2));
        // the Limit itself is kept (R9 annotates, like R7)
        assert!(matches!(optimized.ops()[1], PlanOp::Limit(2)));
        assert!(optimized.describe().contains("top≤2"));
    }

    #[test]
    fn r6_restrictions_push_into_weighted_expansions() {
        let g = classic_social_graph();
        let plan = optimized(
            &g,
            &named_start(&["marko", "josh"]),
            &[
                Step::Is(vec!["marko".into()]),
                Step::Weighted {
                    pattern: "knows·created".into(),
                    max_hops: UNBOUNDED_MATCH_HOPS,
                    direction: Direction::Out,
                    semiring: SemiringKind::Shortest,
                    weight: WeightSpec::Unit,
                },
                Step::Is(vec!["lop".into()]),
            ],
        );
        assert_eq!(plan.ops().len(), 1);
        let PlanOp::ExpandWeighted {
            from: Some(from),
            to: Some(to),
            ..
        } = &plan.ops()[0]
        else {
            panic!("expected pushed restrictions, got {:?}", plan.ops()[0]);
        };
        assert_eq!(from.len(), 1);
        assert_eq!(to.len(), 1);
    }

    #[test]
    fn global_reachability_is_stateful_in_repeat_bodies() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let t = crate::Traversal::over(&g).repeat(1..=2, |p| p.match_reachable_global("knows+"));
        assert!(matches!(
            plan(&snap, t.start_spec(), t.steps()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn compiled_automata_carry_accept_distances_and_prune_dead_moves() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let spec =
            compile_pattern(&snap, "knows·created", 8, Direction::Out, Semantics::Walks).unwrap();
        // the chain start is 2 edges from acceptance; accepting states are 0
        assert_eq!(spec.dist_to_accept(spec.start_state()), Some(2));
        for state in 0..spec.state_count() {
            assert_eq!(spec.is_accept(state), spec.dist_to_accept(state) == Some(0));
            // the dead-state pruning invariant: every surviving move leads
            // to a state that can still reach acceptance
            for m in spec.moves(state) {
                assert!(spec.dist_to_accept(m.target).is_some());
                // the enrichment invariant: the precomputed facts agree with
                // the per-state accessors they replace in the hot loops
                assert_eq!(m.accepts, spec.is_accept(m.target));
                assert_eq!(m.target_live, !spec.moves(m.target).is_empty());
                assert_eq!(spec.dist_to_accept(m.target), Some(m.min_edges_to_accept));
            }
        }
    }

    #[test]
    fn report_carries_pre_and_post_rewrite_plans_and_estimates() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let report = report(
            &snap,
            &named_start(&["marko"]),
            &[
                out_step(&["knows"]),
                out_step(&["created"]),
                Step::DedupByVertex,
            ],
        )
        .unwrap();
        assert!(report.rewritten());
        assert_eq!(report.before().ops().len(), 3);
        assert!(report.before().ops().len() > report.after().ops().len());
        assert_eq!(report.estimates().len(), report.after().ops().len() + 1);
        assert_eq!(report.estimates()[0].rows, 1.0);
        // every estimate is finite and non-negative
        assert!(report
            .estimates()
            .iter()
            .all(|e| e.rows.is_finite() && e.rows >= 0.0));
        let text = report.describe();
        assert!(text.contains("before:"));
        assert!(text.contains("after:"));
        assert!(text.contains("estimates:"));
    }

    #[test]
    fn estimates_scale_with_label_frequency() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let p = plan(&snap, &StartSpec::AllVertices, &[Step::Out(None)]).unwrap();
        let est = estimate(&snap, &p);
        // 6 start vertices × (6 edges / 6 vertices) = 6 expected rows
        assert!((est[1].rows - 6.0).abs() < 1e-9);
        let p = plan(&snap, &StartSpec::AllVertices, &[out_step(&["knows"])]).unwrap();
        let est = estimate(&snap, &p);
        // 6 × (2 knows-edges / 6) = 2
        assert!((est[1].rows - 2.0).abs() < 1e-9);
    }
}
