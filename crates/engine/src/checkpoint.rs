//! Paged checkpoint files: a full serialization of one store generation.
//!
//! A checkpoint captures everything a store generation holds — both interner
//! domains, the vertex set, the edge list, and the property maps — under the
//! epoch it was taken at. The layout is
//!
//! ```text
//! [8B magic "MRPACKP1"][u32 version][u64 epoch]
//! ( [u8 tag][u32 len][u32 crc32][page payload] )*
//! [0xFF end marker page]
//! ```
//!
//! where every page payload starts with a `u32` item count and carries at
//! most [`PAGE_ITEMS`] items of one section (vertex names, label names,
//! vertices, edges, vertex properties, edge properties). Pages are
//! individually CRC-checked; a checkpoint that fails any check — or is
//! missing its end marker — is reported as a typed
//! [`RecoveryError`], never a panic.
//!
//! [`RecoveryError`]: crate::recovery::RecoveryError
//!
//! Checkpoints are installed atomically: the writer streams to
//! `checkpoint.tmp`, fsyncs, and `rename`s over `checkpoint.bin`, so a crash
//! at any boundary leaves either the old checkpoint or the new one — never a
//! torn hybrid. (A stale `checkpoint.tmp` is deleted on open.)
//!
//! Restoration is **canonical**: names are re-interned in id order and edges
//! re-added in serialized order, so restoring always produces the same
//! adjacency-bucket layout. [`PropertyGraph::checkpoint`] installs this
//! restored generation as the live state, which keeps the invariant that the
//! live store and a recovery of its directory are structurally identical.
//!
//! [`PropertyGraph::checkpoint`]: crate::store::PropertyGraph::checkpoint

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use mrpa_core::{Edge, GraphInterner, LabelId, MultiGraph, VertexId};

use crate::error::StoreError;
use crate::recovery::RecoveryError;
use crate::store::GraphState;
use crate::value::Value;
use crate::wal::{crc32, put_str, put_u32, put_u64, put_value, ByteReader, FailPlan, FailPoint};

/// File name of the installed checkpoint inside a durable store directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// File name of the in-flight checkpoint being written (renamed over
/// [`CHECKPOINT_FILE`] on success; deleted on open if left behind).
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Magic bytes opening a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MRPACKP1";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Maximum items per page (keeps page payloads bounded so corruption is
/// localized and reads never allocate absurdly from a bad length field).
pub const PAGE_ITEMS: usize = 65_536;

const MAX_PAGE_LEN: u32 = 1 << 26; // 64 MiB

mod tag {
    pub const VERTEX_NAMES: u8 = 1;
    pub const LABEL_NAMES: u8 = 2;
    pub const VERTICES: u8 = 3;
    pub const EDGES: u8 = 4;
    pub const VERTEX_PROPS: u8 = 5;
    pub const EDGE_PROPS: u8 = 6;
    pub const END: u8 = 0xFF;
}

/// The fully-decoded content of a checkpoint: a flat, deterministic image of
/// one store generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct CheckpointData {
    pub(crate) epoch: u64,
    /// Vertex names in id order (index == id).
    pub(crate) vertex_names: Vec<String>,
    /// Label names in id order (index == id).
    pub(crate) label_names: Vec<String>,
    /// The vertex set `V` (ids; includes isolated vertices).
    pub(crate) vertices: Vec<u32>,
    /// The edge list in insertion (edge-slice) order.
    pub(crate) edges: Vec<(u32, u32, u32)>,
    /// Vertex properties flattened to `(vertex, key, value)`, sorted.
    pub(crate) vertex_props: Vec<(u32, String, Value)>,
    /// Edge properties flattened to `((tail, label, head), key, value)`,
    /// sorted.
    pub(crate) edge_props: Vec<((u32, u32, u32), String, Value)>,
}

impl CheckpointData {
    /// Captures a generation under `epoch` as a deterministic flat image.
    pub(crate) fn capture(state: &GraphState, epoch: u64) -> Self {
        let mut vertex_names: Vec<String> = Vec::with_capacity(state.interner.vertex_count());
        for (_, name) in state.interner.vertices() {
            vertex_names.push(name.to_owned());
        }
        let mut label_names: Vec<String> = Vec::with_capacity(state.interner.label_count());
        for (_, name) in state.interner.labels() {
            label_names.push(name.to_owned());
        }
        let vertices: Vec<u32> = state.graph.vertices().map(|v| v.0).collect();
        let edges: Vec<(u32, u32, u32)> = state
            .graph
            .edge_slice()
            .iter()
            .map(|e| (e.tail.0, e.label.0, e.head.0))
            .collect();
        // props on ids the interner never assigned (or edges not in E) are
        // unreachable through any by-name read; dropping them here keeps the
        // image restorable, and the canonical install after a checkpoint
        // makes the live store agree
        let mut vertex_props: Vec<(u32, String, Value)> = state
            .vertex_props
            .iter()
            .filter(|(v, _)| (v.0 as usize) < vertex_names.len())
            .flat_map(|(v, m)| m.iter().map(|(k, val)| (v.0, k.clone(), val.clone())))
            .collect();
        vertex_props.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut edge_props: Vec<((u32, u32, u32), String, Value)> = state
            .edge_props
            .iter()
            .filter(|(e, _)| state.graph.contains_edge(e))
            .flat_map(|(e, m)| {
                let key = (e.tail.0, e.label.0, e.head.0);
                m.iter().map(move |(k, val)| (key, k.clone(), val.clone()))
            })
            .collect();
        edge_props.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        CheckpointData {
            epoch,
            vertex_names,
            label_names,
            vertices,
            edges,
            vertex_props,
            edge_props,
        }
    }

    /// Rebuilds a [`GraphState`] from the image. Names are re-interned in id
    /// order (reproducing the original dense ids) and edges re-added in
    /// serialized order — the **canonical** adjacency layout every restore of
    /// this checkpoint shares.
    pub(crate) fn restore(
        &self,
        metrics: std::sync::Arc<crate::store::StoreMetrics>,
    ) -> Result<GraphState, RecoveryError> {
        let corrupt = |detail: String| RecoveryError::CorruptCheckpoint { detail };
        let mut interner = GraphInterner::new();
        for (i, name) in self.vertex_names.iter().enumerate() {
            let id = interner.vertex(name);
            if id.0 as usize != i {
                return Err(corrupt(format!("duplicate vertex name {name:?}")));
            }
        }
        for (i, name) in self.label_names.iter().enumerate() {
            let id = interner.label(name);
            if id.0 as usize != i {
                return Err(corrupt(format!("duplicate label name {name:?}")));
            }
        }
        let n_vertices = self.vertex_names.len() as u32;
        let n_labels = self.label_names.len() as u32;
        let mut graph = MultiGraph::with_capacity(self.vertices.len(), self.edges.len());
        for &v in &self.vertices {
            if v >= n_vertices {
                return Err(corrupt(format!("vertex id {v} has no interned name")));
            }
            graph.add_vertex(VertexId(v));
        }
        for &(t, l, h) in &self.edges {
            if t >= n_vertices || h >= n_vertices || l >= n_labels {
                return Err(corrupt(format!("edge ({t}, {l}, {h}) out of id range")));
            }
            let e = Edge::new(VertexId(t), LabelId(l), VertexId(h));
            if !graph.contains_vertex(e.tail) || !graph.contains_vertex(e.head) {
                return Err(corrupt(format!("edge ({t}, {l}, {h}) endpoint not in V")));
            }
            if !graph.add_edge(e) {
                return Err(corrupt(format!("duplicate edge ({t}, {l}, {h})")));
            }
        }
        let mut state = GraphState {
            graph,
            interner,
            vertex_props: Default::default(),
            edge_props: Default::default(),
            reversed: Default::default(),
            csr_out: Default::default(),
            csr_in: Default::default(),
            metrics,
        };
        for (v, key, value) in &self.vertex_props {
            if *v >= n_vertices {
                return Err(corrupt(format!("property on unknown vertex id {v}")));
            }
            state
                .vertex_props
                .entry(VertexId(*v))
                .or_default()
                .insert(key.clone(), value.clone());
        }
        for ((t, l, h), key, value) in &self.edge_props {
            let e = Edge::new(VertexId(*t), LabelId(*l), VertexId(*h));
            if !state.graph.contains_edge(&e) {
                return Err(corrupt(format!("property on unknown edge ({t}, {l}, {h})")));
            }
            state
                .edge_props
                .entry(e)
                .or_default()
                .insert(key.clone(), value.clone());
        }
        Ok(state)
    }
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

struct PageWriter<'a> {
    file: &'a mut File,
    fail: &'a FailPlan,
}

impl PageWriter<'_> {
    /// Writes one `[tag][len][crc][payload]` page. An armed
    /// [`FailPoint::CheckpointWrite`] leaves roughly half the page behind —
    /// a genuinely torn tmp file.
    fn page(&mut self, tag: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(9 + payload.len());
        frame.push(tag);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(payload));
        frame.extend_from_slice(payload);
        if self.fail.hit(FailPoint::CheckpointWrite) {
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            return Err(StoreError::Injected(FailPoint::CheckpointWrite));
        }
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("writing checkpoint page", &e))
    }

    /// Writes a whole section as pages of at most [`PAGE_ITEMS`] items.
    /// Every section writes at least one page (possibly empty), so readers
    /// can distinguish "empty section" from "file from an older run".
    fn section<T>(
        &mut self,
        tag: u8,
        items: &[T],
        mut encode: impl FnMut(&mut Vec<u8>, &T),
    ) -> Result<(), StoreError> {
        let mut chunks = items.chunks(PAGE_ITEMS);
        let mut wrote_any = false;
        loop {
            let chunk: &[T] = match chunks.next() {
                Some(c) => c,
                None if !wrote_any => &[],
                None => break,
            };
            let mut payload = Vec::new();
            put_u32(&mut payload, chunk.len() as u32);
            for item in chunk {
                encode(&mut payload, item);
            }
            self.page(tag, &payload)?;
            wrote_any = true;
        }
        Ok(())
    }
}

/// Writes `data` as `checkpoint.tmp` in `dir`, fsyncs it, and atomically
/// renames it over `checkpoint.bin`. Honors the [`FailPoint::CheckpointWrite`]
/// and [`FailPoint::CheckpointRename`] crash boundaries. Returns the
/// checkpoint's on-disk size in bytes (the `checkpoint_bytes` counter).
pub(crate) fn write_checkpoint(
    dir: &Path,
    data: &CheckpointData,
    fail: &FailPlan,
) -> Result<u64, StoreError> {
    let tmp_path = dir.join(CHECKPOINT_TMP);
    let final_path = dir.join(CHECKPOINT_FILE);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| StoreError::io("creating checkpoint.tmp", &e))?;
    let mut header = CHECKPOINT_MAGIC.to_vec();
    put_u32(&mut header, CHECKPOINT_VERSION);
    put_u64(&mut header, data.epoch);
    file.write_all(&header)
        .map_err(|e| StoreError::io("writing checkpoint header", &e))?;
    {
        let mut w = PageWriter {
            file: &mut file,
            fail,
        };
        w.section(tag::VERTEX_NAMES, &data.vertex_names, |out, name| {
            put_str(out, name)
        })?;
        w.section(tag::LABEL_NAMES, &data.label_names, |out, name| {
            put_str(out, name)
        })?;
        w.section(tag::VERTICES, &data.vertices, |out, &v| put_u32(out, v))?;
        w.section(tag::EDGES, &data.edges, |out, &(t, l, h)| {
            put_u32(out, t);
            put_u32(out, l);
            put_u32(out, h);
        })?;
        w.section(tag::VERTEX_PROPS, &data.vertex_props, |out, (v, k, val)| {
            put_u32(out, *v);
            put_str(out, k);
            put_value(out, val);
        })?;
        w.section(tag::EDGE_PROPS, &data.edge_props, |out, (e, k, val)| {
            put_u32(out, e.0);
            put_u32(out, e.1);
            put_u32(out, e.2);
            put_str(out, k);
            put_value(out, val);
        })?;
        w.page(tag::END, &[])?;
    }
    file.sync_all()
        .map_err(|e| StoreError::io("syncing checkpoint.tmp", &e))?;
    let bytes = file
        .metadata()
        .map_err(|e| StoreError::io("sizing checkpoint.tmp", &e))?
        .len();
    if fail.hit(FailPoint::CheckpointRename) {
        return Err(StoreError::Injected(FailPoint::CheckpointRename));
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| StoreError::io("installing checkpoint", &e))?;
    // make the rename itself durable; not all platforms support dir fsync
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Reading.
// ---------------------------------------------------------------------------

/// Reads and fully validates the checkpoint at `path`. Returns `Ok(None)` if
/// the file does not exist; content problems surface as
/// [`RecoveryError`]-carrying [`StoreError::Recovery`], never a panic.
pub(crate) fn read_checkpoint(path: &Path) -> Result<Option<CheckpointData>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("reading checkpoint", &e)),
    };
    let file = path.display().to_string();
    let corrupt =
        |detail: String| StoreError::Recovery(RecoveryError::CorruptCheckpoint { detail });
    if bytes.len() < 20 {
        return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(StoreError::Recovery(RecoveryError::BadMagic { file }));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(StoreError::Recovery(RecoveryError::UnsupportedVersion {
            file,
            version,
        }));
    }
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let mut data = CheckpointData {
        epoch,
        ..Default::default()
    };
    let mut pos = 20usize;
    let mut saw_end = false;
    while pos < bytes.len() {
        if bytes.len() - pos < 9 {
            return Err(corrupt(format!("truncated page header at offset {pos}")));
        }
        let tag = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().unwrap());
        if len > MAX_PAGE_LEN {
            return Err(corrupt(format!("implausible page length {len}")));
        }
        let len = len as usize;
        if bytes.len() - pos - 9 < len {
            return Err(corrupt(format!("truncated page at offset {pos}")));
        }
        let payload = &bytes[pos + 9..pos + 9 + len];
        if crc32(payload) != crc {
            return Err(corrupt(format!("page checksum mismatch at offset {pos}")));
        }
        pos += 9 + len;
        if tag == tag::END {
            if pos != bytes.len() {
                return Err(corrupt("trailing bytes after end marker".into()));
            }
            saw_end = true;
            break;
        }
        decode_page(tag, payload, &mut data)
            .map_err(|detail| corrupt(format!("page at offset {}: {detail}", pos - 9 - len)))?;
    }
    if !saw_end {
        return Err(corrupt("missing end marker (incomplete checkpoint)".into()));
    }
    Ok(Some(data))
}

fn decode_page(tag: u8, payload: &[u8], data: &mut CheckpointData) -> Result<(), String> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    if count > PAGE_ITEMS {
        return Err(format!("page item count {count} exceeds {PAGE_ITEMS}"));
    }
    match tag {
        tag::VERTEX_NAMES => {
            for _ in 0..count {
                data.vertex_names.push(r.str()?);
            }
        }
        tag::LABEL_NAMES => {
            for _ in 0..count {
                data.label_names.push(r.str()?);
            }
        }
        tag::VERTICES => {
            for _ in 0..count {
                data.vertices.push(r.u32()?);
            }
        }
        tag::EDGES => {
            for _ in 0..count {
                data.edges.push((r.u32()?, r.u32()?, r.u32()?));
            }
        }
        tag::VERTEX_PROPS => {
            for _ in 0..count {
                data.vertex_props.push((r.u32()?, r.str()?, r.value()?));
            }
        }
        tag::EDGE_PROPS => {
            for _ in 0..count {
                let e = (r.u32()?, r.u32()?, r.u32()?);
                data.edge_props.push((e, r.str()?, r.value()?));
            }
        }
        other => return Err(format!("unknown page tag {other}")),
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::classic_social_graph;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mrpa-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_roundtrips_the_classic_graph() {
        let dir = tmp_dir("roundtrip");
        let g = classic_social_graph();
        let data = g.with_state(CheckpointData::capture);
        write_checkpoint(&dir, &data, &FailPlan::new()).unwrap();
        let back = read_checkpoint(&dir.join(CHECKPOINT_FILE))
            .unwrap()
            .unwrap();
        assert_eq!(back, data);
        let restored = back.restore(Default::default()).unwrap();
        assert_eq!(restored.graph.vertex_count(), 6);
        assert_eq!(restored.graph.edge_count(), 6);
        assert_eq!(restored.interner.vertex_name(VertexId(0)), Some("marko"));
        assert_eq!(
            restored
                .vertex_props
                .get(&VertexId(0))
                .and_then(|m| m.get("age")),
            Some(&Value::Int(29))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_reads_as_none() {
        let dir = tmp_dir("missing");
        assert_eq!(read_checkpoint(&dir.join(CHECKPOINT_FILE)).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_yield_typed_errors() {
        let dir = tmp_dir("corrupt");
        let g = classic_social_graph();
        let data = g.with_state(CheckpointData::capture);
        write_checkpoint(&dir, &data, &FailPlan::new()).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let clean = std::fs::read(&path).unwrap();
        // bad magic
        let mut bad = clean.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::Recovery(RecoveryError::BadMagic { .. }))
        ));
        // future version
        let mut bad = clean.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::Recovery(RecoveryError::UnsupportedVersion {
                version: 9,
                ..
            }))
        ));
        // flipped payload bit → page checksum
        let mut bad = clean.clone();
        bad[40] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::Recovery(
                RecoveryError::CorruptCheckpoint { .. }
            ))
        ));
        // truncation → missing end marker / truncated page
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::Recovery(
                RecoveryError::CorruptCheckpoint { .. }
            ))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_dangling_references() {
        let g = classic_social_graph();
        let data = g.with_state(CheckpointData::capture);
        let mut bad = data.clone();
        bad.edges.push((0, 0, 999));
        assert!(bad.restore(Default::default()).is_err());
        let mut bad = data.clone();
        bad.vertex_names.push("marko".into()); // duplicate name
        assert!(bad.restore(Default::default()).is_err());
        let mut bad = data;
        bad.vertex_props.push((999, "k".into(), Value::Bool(true)));
        assert!(bad.restore(Default::default()).is_err());
    }
}
