//! Demand-driven execution: the pull-based [`RowCursor`] protocol.
//!
//! Every [`PlanOp`] compiles to a *stage* that yields rows on demand. A pull
//! returns one of three things, modelled as
//! `ControlFlow<(), Option<ArenaRow>>`:
//!
//! * `Continue(Some(row))` — a row;
//! * `Break(())` — the stage will never produce another row, no matter what.
//!   `Break` propagates *downstream* to the consumer, and — because a broken
//!   consumer simply stops pulling — acts *upstream* as cancellation: a
//!   saturated `Limit` never pulls its input again, so an in-flight
//!   product-automaton frontier suspended mid-layer is dropped without
//!   finishing the walk;
//! * `Continue(None)` — the stage is starved: its source is a feedable queue
//!   (parallel suffix evaluation) that has no rows *right now*. Ordinary
//!   source-backed pipelines never produce this.
//!
//! Composite ops keep resumable per-input-row state. The automaton stage
//! holds an `AutoWalk`: the current `(row, dfa-state)` frontier layer, the
//! index of the next entry to expand (the mid-layer suspension point), the
//! half-built next layer, and a queue of emissions awaiting delivery — one
//! `next()` expands at most one frontier entry beyond what it needs to hand
//! out a row. The same walker, drained to exhaustion, is the materialized
//! executor's batch evaluation, so both granularities share one definition of
//! the walk (order, caps, semantics, emission limits).
//!
//! `max_intermediate` is enforced per stage: each stage counts the rows it
//! has emitted over its lifetime and fails once the count exceeds the cap.
//! For top-level ops this is exactly the materialized executor's per-level
//! check (a top-level op runs once, so its cumulative output *is* its level),
//! making the cap strategy-agnostic.

use std::cell::Cell;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::ops::ControlFlow;
use std::time::Instant;

use mrpa_core::fxhash::FxHashSet;
use mrpa_core::{ArenaWriter, Edge, IdForwarder, PathArena, VertexId};

use crate::cancel::{CancelToken, Liveness};
use crate::chunk::{ChunkPull, RowChunk};
use crate::error::EngineError;
use crate::exec::{
    apply_ops, check_cap, eval_until, for_each_expansion_edge, in_set, initial_rows, materialized,
    materialized_traced, ArenaRow, Counters, ExecConfig, ExecCtx, ExecStats, ExecutionStrategy,
};
use crate::plan::{
    AutomatonSpec, Direction, LogicalPlan, PlanOp, Semantics, SemiringKind, WeightSource,
};
use crate::query::ResultRow;
use crate::store::GraphSnapshot;
use crate::trace::OpActuals;
use crate::value::Predicate;

use mrpa_core::LabelId;

/// One pull from a stage. See the module docs for the three outcomes.
pub(crate) type Pull = ControlFlow<(), Option<ArenaRow>>;

/// Consumes one unit of an optional emission budget. Returns whether the
/// emission is allowed.
fn take_budget(remaining: &mut Option<usize>) -> bool {
    match remaining {
        None => true,
        Some(0) => false,
        Some(n) => {
            *n -= 1;
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Resumable walkers (shared by batch evaluation and cursor stages)
// ---------------------------------------------------------------------------

/// The frontier dedup set of (global) reachability evaluation: `(vertex,
/// dfa-state)` pairs already reached. Owned by the *caller* of the walk —
/// created per input row under [`Semantics::Reachable`], shared across every
/// input row of the op under [`Semantics::GlobalReachable`], absent under
/// [`Semantics::Walks`].
pub(crate) type SeenSet = FxHashSet<(VertexId, usize)>;

/// A resumable product-automaton walk for **one input row**: breadth-first
/// over `(row, dfa-state)` pairs, suspended between frontier entries.
///
/// * `frontier`/`idx` — the current layer and the next entry to expand;
/// * `next` — the half-built next layer;
/// * `pending` — emissions generated but not yet handed out.
///
/// Reachability dedup state lives outside the walk (see [`SeenSet`]) so one
/// set can span input rows under [`Semantics::GlobalReachable`].
#[derive(Debug)]
pub(crate) struct AutoWalk {
    frontier: Vec<(ArenaRow, usize)>,
    next: Vec<(ArenaRow, usize)>,
    hop: usize,
    idx: usize,
    pending: VecDeque<ArenaRow>,
}

impl AutoWalk {
    /// Begins the walk for one input row. The caller has already applied the
    /// `from` restriction and checked the emission budget is non-empty. Seeds
    /// the depth-0 emission when the start state accepts. A start pair the
    /// shared seen-set has already reached yields an immediately-finished
    /// walk (its expansions and emission happened at first reach).
    pub(crate) fn start(
        spec: &AutomatonSpec,
        to: &Option<HashSet<VertexId>>,
        row: ArenaRow,
        remaining: &mut Option<usize>,
        seen: Option<&mut SeenSet>,
    ) -> AutoWalk {
        if let Some(seen) = seen {
            if !seen.insert((row.head, spec.start_state())) {
                return AutoWalk {
                    frontier: Vec::new(),
                    next: Vec::new(),
                    hop: 1,
                    idx: 0,
                    pending: VecDeque::new(),
                };
            }
        }
        let mut pending = VecDeque::new();
        if spec.is_accept(spec.start_state()) && in_set(to, row.head) && take_budget(remaining) {
            pending.push_back(row);
        }
        let halted = matches!(remaining, Some(0));
        let frontier = if spec.max_hops() == 0 || halted {
            Vec::new()
        } else {
            vec![(row, spec.start_state())]
        };
        AutoWalk {
            frontier,
            next: Vec::new(),
            hop: 1,
            idx: 0,
            pending,
        }
    }

    /// Takes the next emission awaiting delivery, if any.
    pub(crate) fn pop(&mut self) -> Option<ArenaRow> {
        self.pending.pop_front()
    }

    /// Moves every pending emission into `out` in one bulk drain (batch
    /// evaluation's fast path).
    pub(crate) fn drain_pending_into(&mut self, out: &mut Vec<ArenaRow>) {
        out.extend(self.pending.drain(..));
    }

    /// Whether the walk can produce no further emissions.
    pub(crate) fn finished(&self) -> bool {
        self.pending.is_empty() && self.frontier.is_empty() && self.next.is_empty()
    }

    fn halt(&mut self) {
        self.frontier.clear();
        self.next.clear();
        self.idx = 0;
    }

    /// Whether the current layer is exhausted and the walk must roll over to
    /// the next one before another entry can be expanded.
    pub(crate) fn needs_roll(&self) -> bool {
        self.idx >= self.frontier.len()
    }

    /// Rolls the layer over: the half-built next layer becomes current. This
    /// is where the intermediate-size cap is checked — `delivered` (rows the
    /// enclosing op already handed out) plus the pending emissions plus the
    /// live frontier, exactly the materialized executor's per-layer check.
    pub(crate) fn roll(
        &mut self,
        ctx: &ExecCtx<'_>,
        spec: &AutomatonSpec,
        delivered: usize,
    ) -> Result<(), EngineError> {
        self.frontier = std::mem::take(&mut self.next);
        self.idx = 0;
        self.hop += 1;
        check_cap(
            self.frontier.len() + delivered + self.pending.len(),
            ctx.cap,
        )?;
        if self.hop > spec.max_hops() {
            self.frontier.clear();
        }
        Ok(())
    }

    /// Expands one frontier entry (or rolls the layer over), pushing any
    /// emissions into the pending queue. The incremental (cursor) entry
    /// point: acquires a short-lived arena writer per entry so no lock is
    /// held across pulls. Batch evaluation instead drives
    /// [`AutoWalk::step_entry`] directly under one long-lived writer.
    /// `remaining` is the op-level R7 emission budget; reaching zero halts
    /// the walk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn advance(
        &mut self,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        spec: &AutomatonSpec,
        to: &Option<HashSet<VertexId>>,
        delivered: usize,
        remaining: &mut Option<usize>,
        seen: Option<&mut SeenSet>,
    ) -> Result<(), EngineError> {
        if self.needs_roll() {
            return self.roll(ctx, spec, delivered);
        }
        let mut writer = arena.writer();
        self.step_entry(ctx, &mut writer, spec, to, remaining, seen);
        Ok(())
    }

    /// Expands exactly one frontier entry under the caller's writer. Must not
    /// be called when [`AutoWalk::needs_roll`] — entries only exist mid-layer.
    ///
    /// Kept in lockstep with [`AutoWalk::run_layer`] (the batch fast path);
    /// the `cursor ≡ materialized` property suites pin their equivalence.
    pub(crate) fn step_entry(
        &mut self,
        ctx: &ExecCtx<'_>,
        writer: &mut ArenaWriter<'_>,
        spec: &AutomatonSpec,
        to: &Option<HashSet<VertexId>>,
        remaining: &mut Option<usize>,
        mut seen: Option<&mut SeenSet>,
    ) {
        let (row, state) = self.frontier[self.idx];
        self.idx += 1;
        let adj = ctx.adjacency(spec.direction());
        for &m in spec.moves(state) {
            // a row only joins the next frontier if it can still make
            // progress: there are hops left and the target state moves
            // (both facts precomputed into the move table at compile time)
            let survives = self.hop < spec.max_hops() && m.target_live;
            for e in adj.labeled(row.head, m.label) {
                ctx.count_expansion();
                if let Some(seen) = seen.as_deref_mut() {
                    if !seen.insert((e.head, m.target)) {
                        continue;
                    }
                }
                let produced = ArenaRow {
                    source: row.source,
                    path: writer.append(row.path, e),
                    head: e.head,
                    weight: row.weight,
                };
                if m.accepts && in_set(to, e.head) {
                    if take_budget(remaining) {
                        self.pending.push_back(produced);
                        if matches!(remaining, Some(0)) {
                            self.halt();
                            return;
                        }
                    } else {
                        self.halt();
                        return;
                    }
                }
                if survives {
                    self.next.push((produced, m.target));
                }
            }
        }
    }

    /// Expands the **entire current layer** in one tight batch loop, pushing
    /// emissions straight into `out` — the materialized executor's fast path
    /// (the ~10–15% the per-entry dispatch of [`AutoWalk::step_entry`] costs
    /// on dense full-enumeration scans came from per-entry calls plus
    /// pending-queue traffic; this recovers it without giving up the
    /// cursor's mid-layer suspension points, which keep using `step_entry`).
    ///
    /// Semantically identical to driving `step_entry` until
    /// [`AutoWalk::needs_roll`] and draining `pending` after each entry:
    /// same emission order, same budget halting, same seen-set discipline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_layer(
        &mut self,
        ctx: &ExecCtx<'_>,
        writer: &mut ArenaWriter<'_>,
        spec: &AutomatonSpec,
        to: &Option<HashSet<VertexId>>,
        remaining: &mut Option<usize>,
        mut seen: Option<&mut SeenSet>,
        out: &mut Vec<ArenaRow>,
    ) {
        let adj = ctx.adjacency(spec.direction());
        let max_hops = spec.max_hops();
        while self.idx < self.frontier.len() {
            let (row, state) = self.frontier[self.idx];
            self.idx += 1;
            for &m in spec.moves(state) {
                let survives = self.hop < max_hops && m.target_live;
                for e in adj.labeled(row.head, m.label) {
                    ctx.count_expansion();
                    if let Some(seen) = seen.as_deref_mut() {
                        if !seen.insert((e.head, m.target)) {
                            continue;
                        }
                    }
                    let produced = ArenaRow {
                        source: row.source,
                        path: writer.append(row.path, e),
                        head: e.head,
                        weight: row.weight,
                    };
                    if m.accepts && in_set(to, e.head) {
                        if take_budget(remaining) {
                            out.push(produced);
                            if matches!(remaining, Some(0)) {
                                self.halt();
                                return;
                            }
                        } else {
                            self.halt();
                            return;
                        }
                    }
                    if survives {
                        self.next.push((produced, m.target));
                    }
                }
            }
        }
    }
}

/// The static parameters of a `Repeat` op, borrowed from the plan.
#[derive(Clone, Copy)]
pub(crate) struct RepeatSpec<'a> {
    pub(crate) body: &'a [PlanOp],
    pub(crate) min: usize,
    pub(crate) max: usize,
    pub(crate) until: Option<&'a (String, Predicate)>,
}

/// A resumable bounded-Kleene iteration for **one input row**, suspended at
/// iteration granularity: one `advance` emits the rows due at the current
/// iteration count and applies the body once.
#[derive(Debug)]
pub(crate) struct RepeatWalk {
    frontier: Vec<ArenaRow>,
    k: usize,
    pending: VecDeque<ArenaRow>,
    done: bool,
}

impl RepeatWalk {
    pub(crate) fn new(row: ArenaRow) -> RepeatWalk {
        RepeatWalk {
            frontier: vec![row],
            k: 0,
            pending: VecDeque::new(),
            done: false,
        }
    }

    pub(crate) fn pop(&mut self) -> Option<ArenaRow> {
        self.pending.pop_front()
    }

    pub(crate) fn finished(&self) -> bool {
        self.pending.is_empty() && self.done
    }

    /// Moves every pending emission into `out` in one bulk drain (batch
    /// evaluation's fast path).
    pub(crate) fn drain_pending_into(&mut self, out: &mut Vec<ArenaRow>) {
        out.extend(self.pending.drain(..));
    }

    /// One iteration step, replicating the materialized order exactly:
    /// emissions for the current count `k` first, then one body application.
    pub(crate) fn advance(
        &mut self,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        spec: RepeatSpec<'_>,
        delivered: usize,
    ) -> Result<(), EngineError> {
        let RepeatSpec {
            body,
            min,
            max,
            until,
        } = spec;
        if self.done {
            return Ok(());
        }
        match until {
            Some(cond) if self.k >= min => {
                let mut stay = Vec::with_capacity(self.frontier.len());
                for row in std::mem::take(&mut self.frontier) {
                    if eval_until(ctx.snapshot, cond, row.head) {
                        self.pending.push_back(row);
                    } else {
                        stay.push(row);
                    }
                }
                self.frontier = stay;
            }
            Some(_) => {}
            None => {
                if self.k >= min {
                    self.pending.extend(self.frontier.iter().copied());
                }
            }
        }
        if self.k == max || self.frontier.is_empty() {
            self.done = true;
            return Ok(());
        }
        self.frontier = apply_ops(ctx, arena, std::mem::take(&mut self.frontier), body)?;
        check_cap(
            self.frontier.len() + delivered + self.pending.len(),
            ctx.cap,
        )?;
        self.k += 1;
        Ok(())
    }
}

/// One prioritized entry of a best-first weighted walk. Ordered so that the
/// std max-heap pops the **smallest key first** (the semiring-normalized
/// priority: smaller = better), with insertion order (`seq`) as the
/// deterministic tie-break — equal-cost paths come out in discovery order,
/// which is identical across all strategies.
#[derive(Debug)]
struct WeightedEntry {
    key: f64,
    seq: u64,
    cost: f64,
    row: ArenaRow,
    state: usize,
    hop: usize,
}

impl PartialEq for WeightedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key).is_eq() && self.seq == other.seq
    }
}

impl Eq for WeightedEntry {}

impl PartialOrd for WeightedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WeightedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed on both fields: BinaryHeap is a max-heap, we want the
        // smallest (key, seq) on top
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A resumable **best-first** (Dijkstra-style) product-automaton walk for one
/// input row, behind [`PlanOp::ExpandWeighted`].
///
/// The priority queue holds `(cost, row, dfa-state, hops)` entries ordered by
/// the semiring's selection order. One [`WeightedWalk::advance`] pops one
/// entry: the first pop of a product key *settles* it — its cost is
/// semiring-optimal, because extension (`⊗` with a validated weight) never
/// improves a cost — and only settling expands adjacency. An accepting settle
/// whose head has not been emitted yet emits one row carrying the optimal
/// cost, so emissions come out **best-first, one per reachable head**, and a
/// top-k cap (R9) makes pulling the k-th result expand no more of the
/// product space than that result requires.
///
/// * Unbounded (`max_hops == usize::MAX`, the default): settle per
///   `(vertex, state)` — at most `|V|·|states|` settles, so the walk
///   terminates on cyclic graphs without any bound.
/// * Bounded: a cheapest bounded walk may be forced through a vertex whose
///   unbounded-optimal path is too long, so settling is per
///   `(vertex, state, hops)` — the layered product space is a DAG and the
///   same optimality argument applies per layer. The DFA's
///   distance-to-accept hook prunes entries that cannot finish in budget.
#[derive(Debug)]
pub(crate) struct WeightedWalk {
    heap: BinaryHeap<WeightedEntry>,
    settled: FxHashSet<(VertexId, usize, usize)>,
    emitted_heads: FxHashSet<VertexId>,
    pending: VecDeque<ArenaRow>,
    seq: u64,
    bounded: bool,
}

impl WeightedWalk {
    /// Begins the walk for one input row (the caller has applied the `from`
    /// restriction). Nothing is emitted here — even the depth-0 emission of a
    /// nullable pattern goes through the settle-ordered queue.
    pub(crate) fn start(spec: &AutomatonSpec, semiring: SemiringKind, row: ArenaRow) -> Self {
        let one = semiring.one();
        let mut heap = BinaryHeap::new();
        heap.push(WeightedEntry {
            key: semiring.key(one),
            seq: 0,
            cost: one,
            row,
            state: spec.start_state(),
            hop: 0,
        });
        WeightedWalk {
            heap,
            settled: FxHashSet::default(),
            emitted_heads: FxHashSet::default(),
            pending: VecDeque::new(),
            seq: 0,
            bounded: spec.max_hops() != usize::MAX,
        }
    }

    /// Takes the next emission awaiting delivery, if any.
    pub(crate) fn pop(&mut self) -> Option<ArenaRow> {
        self.pending.pop_front()
    }

    /// Moves every pending emission into `out` in one bulk drain.
    pub(crate) fn drain_pending_into(&mut self, out: &mut Vec<ArenaRow>) {
        out.extend(self.pending.drain(..));
    }

    /// Whether the walk can produce no further emissions.
    pub(crate) fn finished(&self) -> bool {
        self.pending.is_empty() && self.heap.is_empty()
    }

    fn halt(&mut self) {
        self.heap.clear();
    }

    fn settle_key(&self, v: VertexId, state: usize, hop: usize) -> (VertexId, usize, usize) {
        (v, state, if self.bounded { hop } else { 0 })
    }

    /// Pops (and, if fresh, settles and expands) one queue entry — the
    /// bounded-work unit of the lazy cursor stage. `remaining` is the
    /// op-level R9 top-k budget; reaching zero halts the walk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn advance(
        &mut self,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        spec: &AutomatonSpec,
        semiring: SemiringKind,
        weight: &WeightSource,
        to: &Option<HashSet<VertexId>>,
        delivered: usize,
        remaining: &mut Option<usize>,
    ) -> Result<(), EngineError> {
        let Some(entry) = self.heap.pop() else {
            return Ok(());
        };
        let WeightedEntry {
            cost,
            row,
            state,
            hop,
            ..
        } = entry;
        if !self.settled.insert(self.settle_key(row.head, state, hop)) {
            return Ok(()); // a stale (worse) duplicate of an earlier settle
        }
        // an accepting settle is this head's semiring-optimal match; emit it
        // once per head — a head suppressed by `to` still counts as emitted,
        // so the output equals post-filtering the unrestricted emissions
        if spec.is_accept(state) && self.emitted_heads.insert(row.head) && in_set(to, row.head) {
            let mut emitted = row;
            emitted.weight = Some(cost);
            if take_budget(remaining) {
                self.pending.push_back(emitted);
                if matches!(remaining, Some(0)) {
                    self.halt();
                    return Ok(());
                }
            } else {
                self.halt();
                return Ok(());
            }
        }
        if hop >= spec.max_hops() {
            return Ok(());
        }
        let adj = ctx.adjacency(spec.direction());
        let mut writer = arena.writer();
        for &m in spec.moves(state) {
            // admissible bound pruning: any completion from the move's target
            // needs at least `min_edges_to_accept` more edges (precomputed at
            // compile time; moves into states that can never accept were
            // already pruned from the table)
            if self.bounded && hop + 1 + m.min_edges_to_accept > spec.max_hops() {
                continue;
            }
            for e in adj.labeled(row.head, m.label) {
                ctx.count_expansion();
                if self
                    .settled
                    .contains(&self.settle_key(e.head, m.target, hop + 1))
                {
                    continue;
                }
                // property lookup always uses the stored orientation
                let stored = match spec.direction() {
                    Direction::In => Edge::new(e.head, e.label, e.tail),
                    _ => e,
                };
                let w = weight.resolve(ctx.snapshot, &stored, semiring)?;
                let cost2 = semiring.extend(cost, w);
                self.seq += 1;
                self.heap.push(WeightedEntry {
                    key: semiring.key(cost2),
                    seq: self.seq,
                    cost: cost2,
                    row: ArenaRow {
                        source: row.source,
                        path: writer.append(row.path, e),
                        head: e.head,
                        weight: row.weight,
                    },
                    state: m.target,
                    hop: hop + 1,
                });
            }
        }
        check_cap(self.heap.len() + delivered + self.pending.len(), ctx.cap)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// One pull-based stage with its lifetime output counter (the cap check).
#[derive(Debug)]
pub(crate) struct Stage {
    op: StageOp,
    out_count: usize,
    /// Profiling counters, attached only when the cursor was compiled with
    /// [`ExecConfig::profile`]. `None` (the production default) costs one
    /// branch per pull.
    trace: Option<Box<StageTraceRec>>,
}

/// Per-stage profiling counters: plain `Cell`s like [`Counters`], one record
/// per stage instance (so one per partition under the parallel strategy),
/// summed at collection time — never atomics on the hot path. Time and
/// counter deltas are recorded *inclusive* of upstream stages (the pull
/// wrapper brackets the whole upstream chain) and converted to exclusive
/// self-values when collected, since a pipeline is a chain.
#[derive(Debug, Default)]
struct StageTraceRec {
    pulls: Cell<u64>,
    chunks: Cell<u64>,
    nanos: Cell<u64>,
    expansions: Cell<u64>,
    interned: Cell<u64>,
}

#[derive(Debug)]
enum StageOp {
    /// Fixed start rows.
    Source {
        rows: Vec<ArenaRow>,
        idx: usize,
    },
    /// Feedable source for the parallel suffix: rows arrive in batches.
    Feed {
        queue: VecDeque<ArenaRow>,
        closed: bool,
    },
    Expand {
        input: Box<Stage>,
        direction: Direction,
        labels: Option<Vec<LabelId>>,
        from: Option<HashSet<VertexId>>,
        to: Option<HashSet<VertexId>>,
        buf: VecDeque<ArenaRow>,
    },
    Automaton {
        input: Box<Stage>,
        spec: AutomatonSpec,
        from: Option<HashSet<VertexId>>,
        to: Option<HashSet<VertexId>>,
        /// The R7 emission budget; `Some(0)` saturates the stage.
        remaining: Option<usize>,
        walk: Option<AutoWalk>,
        /// Reachability dedup state: reset per input row under
        /// [`Semantics::Reachable`], carried across rows under
        /// [`Semantics::GlobalReachable`], `None` under [`Semantics::Walks`].
        seen: Option<SeenSet>,
    },
    Weighted {
        input: Box<Stage>,
        spec: AutomatonSpec,
        semiring: SemiringKind,
        weight: WeightSource,
        from: Option<HashSet<VertexId>>,
        to: Option<HashSet<VertexId>>,
        /// The R9 top-k budget; `Some(0)` saturates the stage.
        remaining: Option<usize>,
        walk: Option<WeightedWalk>,
    },
    Repeat {
        input: Box<Stage>,
        body: Vec<PlanOp>,
        min: usize,
        max: usize,
        until: Option<(String, Predicate)>,
        walk: Option<RepeatWalk>,
    },
    RestrictVertices {
        input: Box<Stage>,
        vs: HashSet<VertexId>,
    },
    RestrictProperty {
        input: Box<Stage>,
        key: String,
        predicate: Predicate,
    },
    Dedup {
        input: Box<Stage>,
        seen: HashSet<VertexId>,
    },
    Limit {
        input: Box<Stage>,
        remaining: usize,
    },
}

impl Stage {
    fn new(op: StageOp) -> Stage {
        Stage {
            op,
            out_count: 0,
            trace: None,
        }
    }

    /// The stage's upstream input, if any (sources have none).
    fn input_ref(&self) -> Option<&Stage> {
        match &self.op {
            StageOp::Source { .. } | StageOp::Feed { .. } => None,
            StageOp::Expand { input, .. }
            | StageOp::Automaton { input, .. }
            | StageOp::Weighted { input, .. }
            | StageOp::Repeat { input, .. }
            | StageOp::RestrictVertices { input, .. }
            | StageOp::RestrictProperty { input, .. }
            | StageOp::Dedup { input, .. }
            | StageOp::Limit { input, .. } => Some(input),
        }
    }

    fn input_mut(&mut self) -> Option<&mut Stage> {
        match &mut self.op {
            StageOp::Source { .. } | StageOp::Feed { .. } => None,
            StageOp::Expand { input, .. }
            | StageOp::Automaton { input, .. }
            | StageOp::Weighted { input, .. }
            | StageOp::Repeat { input, .. }
            | StageOp::RestrictVertices { input, .. }
            | StageOp::RestrictProperty { input, .. }
            | StageOp::Dedup { input, .. }
            | StageOp::Limit { input, .. } => Some(input),
        }
    }

    /// Attaches a profiling record to every stage in the chain.
    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Box::default());
        if let Some(input) = self.input_mut() {
            input.enable_trace();
        }
    }

    /// Whether profiling records are attached.
    pub(crate) fn has_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Collects per-op actuals source-first (index 0 = source stage),
    /// converting each stage's inclusive counters to exclusive self-values
    /// by subtracting its input's inclusive totals.
    pub(crate) fn collect_trace(&self, out: &mut Vec<OpActuals>) {
        self.collect_trace_inner(out, &mut (0, 0, 0));
    }

    fn collect_trace_inner(&self, out: &mut Vec<OpActuals>, upstream: &mut (u64, u64, u64)) {
        if let Some(input) = self.input_ref() {
            input.collect_trace_inner(out, upstream);
        }
        let (nanos, expansions, interned, pulls, chunks) = match &self.trace {
            Some(tr) => (
                tr.nanos.get(),
                tr.expansions.get(),
                tr.interned.get(),
                tr.pulls.get(),
                tr.chunks.get(),
            ),
            None => (upstream.0, upstream.1, upstream.2, 0, 0),
        };
        out.push(OpActuals {
            rows_out: self.out_count as u64,
            pulls,
            chunks,
            nanos: nanos.saturating_sub(upstream.0),
            expansions: expansions.saturating_sub(upstream.1),
            interned: interned.saturating_sub(upstream.2),
        });
        *upstream = (nanos, expansions, interned);
    }

    /// A pipeline over fixed start rows. Consumes the op sequence — cursor
    /// compilation moves plan ops into the stage tree rather than cloning.
    pub(crate) fn pipeline(start: Vec<ArenaRow>, ops: Vec<PlanOp>) -> Stage {
        Self::build(
            Stage::new(StageOp::Source {
                rows: start,
                idx: 0,
            }),
            ops,
        )
    }

    /// A pipeline over a feedable source (parallel suffix evaluation).
    pub(crate) fn fed_pipeline(ops: Vec<PlanOp>) -> Stage {
        Self::build(
            Stage::new(StageOp::Feed {
                queue: VecDeque::new(),
                closed: false,
            }),
            ops,
        )
    }

    fn build(source: Stage, ops: Vec<PlanOp>) -> Stage {
        let mut cur = source;
        for op in ops {
            let op = match op {
                PlanOp::Expand {
                    direction,
                    labels,
                    from,
                    to,
                } => StageOp::Expand {
                    input: Box::new(cur),
                    direction,
                    labels,
                    from,
                    to,
                    buf: VecDeque::new(),
                },
                PlanOp::ExpandAutomaton {
                    spec,
                    from,
                    to,
                    limit,
                } => {
                    let seen = match spec.semantics() {
                        Semantics::GlobalReachable => Some(SeenSet::default()),
                        Semantics::Walks | Semantics::Reachable => None,
                    };
                    StageOp::Automaton {
                        input: Box::new(cur),
                        spec,
                        from,
                        to,
                        remaining: limit,
                        walk: None,
                        seen,
                    }
                }
                PlanOp::ExpandWeighted {
                    spec,
                    semiring,
                    weight,
                    from,
                    to,
                    k,
                } => StageOp::Weighted {
                    input: Box::new(cur),
                    spec,
                    semiring,
                    weight,
                    from,
                    to,
                    remaining: k,
                    walk: None,
                },
                PlanOp::Repeat {
                    body,
                    min,
                    max,
                    until,
                } => StageOp::Repeat {
                    input: Box::new(cur),
                    body,
                    min,
                    max,
                    until,
                    walk: None,
                },
                PlanOp::RestrictVertices(vs) => StageOp::RestrictVertices {
                    input: Box::new(cur),
                    vs,
                },
                PlanOp::RestrictProperty { key, predicate } => StageOp::RestrictProperty {
                    input: Box::new(cur),
                    key,
                    predicate,
                },
                PlanOp::DedupByVertex => StageOp::Dedup {
                    input: Box::new(cur),
                    seen: HashSet::new(),
                },
                PlanOp::Limit(n) => StageOp::Limit {
                    input: Box::new(cur),
                    remaining: n,
                },
            };
            cur = Stage::new(op);
        }
        cur
    }

    /// The innermost source stage (for feeding the parallel suffix).
    fn source_mut(&mut self) -> &mut Stage {
        if matches!(self.op, StageOp::Source { .. } | StageOp::Feed { .. }) {
            return self;
        }
        match &mut self.op {
            StageOp::Expand { input, .. }
            | StageOp::Automaton { input, .. }
            | StageOp::Weighted { input, .. }
            | StageOp::Repeat { input, .. }
            | StageOp::RestrictVertices { input, .. }
            | StageOp::RestrictProperty { input, .. }
            | StageOp::Dedup { input, .. }
            | StageOp::Limit { input, .. } => input.source_mut(),
            StageOp::Source { .. } | StageOp::Feed { .. } => unreachable!(),
        }
    }

    /// Enqueues rows into the feedable source.
    pub(crate) fn feed(&mut self, rows: impl IntoIterator<Item = ArenaRow>) {
        if let StageOp::Feed { queue, .. } = &mut self.source_mut().op {
            queue.extend(rows);
        } else {
            unreachable!("feed called on a pipeline without a Feed source");
        }
    }

    /// Marks the feedable source as complete: once its queue drains, the
    /// pipeline reports `Break` instead of starvation.
    pub(crate) fn close_feed(&mut self) {
        if let StageOp::Feed { closed, .. } = &mut self.source_mut().op {
            *closed = true;
        }
    }

    /// Pulls one row, counting the stage's lifetime output against the cap.
    /// Every pull is a cancellation point: an expired deadline or a fired
    /// [`CancelToken`](crate::CancelToken) surfaces here as
    /// [`EngineError::Cancelled`], killing suspended frontiers cleanly.
    pub(crate) fn pull(
        &mut self,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
    ) -> Result<Pull, EngineError> {
        ctx.ensure_alive()?;
        let pulled = if self.trace.is_some() {
            let before = ctx.counters.stats();
            let started = Instant::now();
            let res = Self::pull_op(&mut self.op, self.out_count, ctx, arena);
            let elapsed = started.elapsed().as_nanos() as u64;
            let after = ctx.counters.stats();
            let tr = self.trace.as_deref().expect("checked above");
            tr.pulls.set(tr.pulls.get() + 1);
            tr.nanos.set(tr.nanos.get() + elapsed);
            tr.expansions
                .set(tr.expansions.get() + (after.expansions - before.expansions));
            tr.interned
                .set(tr.interned.get() + (after.interned_nodes - before.interned_nodes));
            res?
        } else {
            Self::pull_op(&mut self.op, self.out_count, ctx, arena)?
        };
        if matches!(pulled, ControlFlow::Continue(Some(_))) {
            self.out_count += 1;
            check_cap(self.out_count, ctx.cap)?;
        }
        Ok(pulled)
    }

    fn pull_op(
        op: &mut StageOp,
        delivered: usize,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
    ) -> Result<Pull, EngineError> {
        match op {
            StageOp::Source { rows, idx } => {
                if *idx < rows.len() {
                    *idx += 1;
                    Ok(ControlFlow::Continue(Some(rows[*idx - 1])))
                } else {
                    Ok(ControlFlow::Break(()))
                }
            }
            StageOp::Feed { queue, closed } => match queue.pop_front() {
                Some(row) => Ok(ControlFlow::Continue(Some(row))),
                None if *closed => Ok(ControlFlow::Break(())),
                None => Ok(ControlFlow::Continue(None)),
            },
            StageOp::Expand {
                input,
                direction,
                labels,
                from,
                to,
                buf,
            } => loop {
                if let Some(row) = buf.pop_front() {
                    return Ok(ControlFlow::Continue(Some(row)));
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(ControlFlow::Break(())),
                    ControlFlow::Continue(None) => return Ok(ControlFlow::Continue(None)),
                    ControlFlow::Continue(Some(row)) => {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        // collect this row's expansions under one lock
                        // acquisition; they stream out one pull at a time
                        let mut writer = arena.writer();
                        for_each_expansion_edge(ctx, *direction, row.head, labels, |e| {
                            ctx.count_expansion();
                            if !in_set(to, e.head) {
                                return;
                            }
                            buf.push_back(ArenaRow {
                                source: row.source,
                                path: writer.append(row.path, e),
                                head: e.head,
                                weight: row.weight,
                            });
                        });
                        if ctx.budgeted() {
                            ctx.charge_arena_growth(writer.node_count())?;
                            ctx.charge_bytes(buf.len() as u64 * crate::exec::ROW_BYTES)?;
                        }
                    }
                }
            },
            StageOp::Automaton {
                input,
                spec,
                from,
                to,
                remaining,
                walk,
                seen,
            } => loop {
                if let Some(w) = walk {
                    if let Some(row) = w.pop() {
                        return Ok(ControlFlow::Continue(Some(row)));
                    }
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    ctx.ensure_alive()?;
                    w.advance(ctx, arena, spec, to, delivered, remaining, seen.as_mut())?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                    }
                    continue;
                }
                if matches!(remaining, Some(0)) {
                    return Ok(ControlFlow::Break(()));
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(ControlFlow::Break(())),
                    ControlFlow::Continue(None) => return Ok(ControlFlow::Continue(None)),
                    ControlFlow::Continue(Some(row)) => {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        if spec.semantics() == Semantics::Reachable {
                            // per-row reachability: fresh dedup state per walk
                            *seen = Some(SeenSet::default());
                        }
                        *walk = Some(AutoWalk::start(spec, to, row, remaining, seen.as_mut()));
                    }
                }
            },
            StageOp::Weighted {
                input,
                spec,
                semiring,
                weight,
                from,
                to,
                remaining,
                walk,
            } => loop {
                if let Some(w) = walk {
                    if let Some(row) = w.pop() {
                        return Ok(ControlFlow::Continue(Some(row)));
                    }
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    ctx.ensure_alive()?;
                    w.advance(
                        ctx, arena, spec, *semiring, weight, to, delivered, remaining,
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                    }
                    continue;
                }
                if matches!(remaining, Some(0)) {
                    return Ok(ControlFlow::Break(()));
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(ControlFlow::Break(())),
                    ControlFlow::Continue(None) => return Ok(ControlFlow::Continue(None)),
                    ControlFlow::Continue(Some(row)) => {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        *walk = Some(WeightedWalk::start(spec, *semiring, row));
                    }
                }
            },
            StageOp::Repeat {
                input,
                body,
                min,
                max,
                until,
                walk,
            } => loop {
                if let Some(w) = walk {
                    if let Some(row) = w.pop() {
                        return Ok(ControlFlow::Continue(Some(row)));
                    }
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    ctx.ensure_alive()?;
                    w.advance(
                        ctx,
                        arena,
                        RepeatSpec {
                            body,
                            min: *min,
                            max: *max,
                            until: until.as_ref(),
                        },
                        delivered,
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                    }
                    continue;
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(ControlFlow::Break(())),
                    ControlFlow::Continue(None) => return Ok(ControlFlow::Continue(None)),
                    ControlFlow::Continue(Some(row)) => *walk = Some(RepeatWalk::new(row)),
                }
            },
            StageOp::RestrictVertices { input, vs } => loop {
                match input.pull(ctx, arena)? {
                    ControlFlow::Continue(Some(row)) if !vs.contains(&row.head) => continue,
                    other => return Ok(other),
                }
            },
            StageOp::RestrictProperty {
                input,
                key,
                predicate,
            } => loop {
                match input.pull(ctx, arena)? {
                    ControlFlow::Continue(Some(row))
                        if !predicate.eval(ctx.snapshot.vertex_property(row.head, key)) =>
                    {
                        continue
                    }
                    other => return Ok(other),
                }
            },
            StageOp::Dedup { input, seen } => loop {
                match input.pull(ctx, arena)? {
                    ControlFlow::Continue(Some(row)) if !seen.insert(row.head) => continue,
                    other => return Ok(other),
                }
            },
            StageOp::Limit { input, remaining } => {
                if *remaining == 0 {
                    // saturated: never pull upstream again — this is the
                    // ControlFlow::Break that cancels suspended walks above
                    return Ok(ControlFlow::Break(()));
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Continue(Some(row)) => {
                        *remaining -= 1;
                        Ok(ControlFlow::Continue(Some(row)))
                    }
                    other => Ok(other),
                }
            }
        }
    }

    /// The chunked pull: appends up to ~`target` rows to `out` (overshoot is
    /// allowed — composite walkers finish their current frontier layer), in
    /// exactly the scalar protocol's row order. Only full-drain terminals use
    /// this path; early-exit consumption stays on [`Stage::pull`]. Counts the
    /// appended rows against the stage's lifetime cap, and remains a
    /// cancellation point per call (and per walker layer).
    pub(crate) fn pull_chunk(
        &mut self,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        target: usize,
        out: &mut Vec<ArenaRow>,
    ) -> Result<ChunkPull, EngineError> {
        ctx.ensure_alive()?;
        let base = out.len();
        let res = if self.trace.is_some() {
            let before = ctx.counters.stats();
            let started = Instant::now();
            let res = Self::pull_op_chunk(&mut self.op, self.out_count, ctx, arena, target, out);
            let elapsed = started.elapsed().as_nanos() as u64;
            let after = ctx.counters.stats();
            let tr = self.trace.as_deref().expect("checked above");
            tr.chunks.set(tr.chunks.get() + 1);
            tr.nanos.set(tr.nanos.get() + elapsed);
            tr.expansions
                .set(tr.expansions.get() + (after.expansions - before.expansions));
            tr.interned
                .set(tr.interned.get() + (after.interned_nodes - before.interned_nodes));
            res?
        } else {
            Self::pull_op_chunk(&mut self.op, self.out_count, ctx, arena, target, out)?
        };
        let appended = out.len() - base;
        if appended > 0 {
            self.out_count += appended;
            check_cap(self.out_count, ctx.cap)?;
            return Ok(ChunkPull::Rows);
        }
        Ok(res)
    }

    fn pull_op_chunk(
        op: &mut StageOp,
        delivered: usize,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        target: usize,
        out: &mut Vec<ArenaRow>,
    ) -> Result<ChunkPull, EngineError> {
        // `Rows` if this call appended anything, otherwise `empty`
        fn flush(out_len: usize, base: usize, empty: ChunkPull) -> ChunkPull {
            if out_len > base {
                ChunkPull::Rows
            } else {
                empty
            }
        }
        let base = out.len();
        let goal = base + target.max(1);
        match op {
            StageOp::Source { rows, idx } => {
                if *idx >= rows.len() {
                    return Ok(ChunkPull::Done);
                }
                let end = rows.len().min(goal - base + *idx);
                out.extend_from_slice(&rows[*idx..end]);
                *idx = end;
                Ok(ChunkPull::Rows)
            }
            StageOp::Feed { queue, closed } => {
                if queue.is_empty() {
                    return Ok(if *closed {
                        ChunkPull::Done
                    } else {
                        ChunkPull::Starved
                    });
                }
                let n = queue.len().min(goal - base);
                out.extend(queue.drain(..n));
                Ok(ChunkPull::Rows)
            }
            StageOp::Expand {
                input,
                direction,
                labels,
                from,
                to,
                buf,
            } => {
                // rows buffered by an earlier scalar pull drain first
                out.extend(buf.drain(..));
                let mut inbuf: Vec<ArenaRow> = Vec::new();
                while out.len() < goal {
                    inbuf.clear();
                    match input.pull_chunk(ctx, arena, target, &mut inbuf)? {
                        ChunkPull::Rows => {}
                        ChunkPull::Done => return Ok(flush(out.len(), base, ChunkPull::Done)),
                        ChunkPull::Starved => {
                            return Ok(flush(out.len(), base, ChunkPull::Starved))
                        }
                    }
                    // one writer acquisition for the whole input chunk — the
                    // scalar path pays one per input row
                    let mut writer = arena.writer();
                    for row in &inbuf {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        for_each_expansion_edge(ctx, *direction, row.head, labels, |e| {
                            ctx.count_expansion();
                            if !in_set(to, e.head) {
                                return;
                            }
                            out.push(ArenaRow {
                                source: row.source,
                                path: writer.append(row.path, e),
                                head: e.head,
                                weight: row.weight,
                            });
                        });
                    }
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(writer.node_count())?;
                    }
                }
                Ok(ChunkPull::Rows)
            }
            StageOp::Automaton {
                input,
                spec,
                from,
                to,
                remaining,
                walk,
                seen,
            } => loop {
                if let Some(w) = walk {
                    w.drain_pending_into(out);
                    {
                        // the batch fast path: whole layers under one writer,
                        // emissions straight into the chunk
                        let mut writer = arena.writer();
                        while !w.finished() && out.len() < goal {
                            ctx.ensure_alive()?;
                            if w.needs_roll() {
                                w.roll(ctx, spec, delivered + (out.len() - base))?;
                            } else {
                                w.run_layer(
                                    ctx,
                                    &mut writer,
                                    spec,
                                    to,
                                    remaining,
                                    seen.as_mut(),
                                    out,
                                );
                            }
                            // per-layer budget check (mirrors the batch
                            // executor): dense frontiers die mid-walk
                            if ctx.budgeted() {
                                ctx.charge_arena_growth(writer.node_count())?;
                            }
                        }
                    }
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    return Ok(ChunkPull::Rows);
                }
                if matches!(remaining, Some(0)) {
                    return Ok(flush(out.len(), base, ChunkPull::Done));
                }
                // input rows arrive one at a time: per-input-row walk work
                // dwarfs pull dispatch, and scalar pulls keep the suspension
                // protocol identical on the boundary
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(flush(out.len(), base, ChunkPull::Done)),
                    ControlFlow::Continue(None) => {
                        return Ok(flush(out.len(), base, ChunkPull::Starved))
                    }
                    ControlFlow::Continue(Some(row)) => {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        if spec.semantics() == Semantics::Reachable {
                            *seen = Some(SeenSet::default());
                        }
                        *walk = Some(AutoWalk::start(spec, to, row, remaining, seen.as_mut()));
                    }
                }
            },
            StageOp::Weighted {
                input,
                spec,
                semiring,
                weight,
                from,
                to,
                remaining,
                walk,
            } => loop {
                if let Some(w) = walk {
                    w.drain_pending_into(out);
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    if out.len() >= goal {
                        return Ok(ChunkPull::Rows);
                    }
                    ctx.ensure_alive()?;
                    w.advance(
                        ctx,
                        arena,
                        spec,
                        *semiring,
                        weight,
                        to,
                        delivered + (out.len() - base),
                        remaining,
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                    }
                    continue;
                }
                if matches!(remaining, Some(0)) {
                    return Ok(flush(out.len(), base, ChunkPull::Done));
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(flush(out.len(), base, ChunkPull::Done)),
                    ControlFlow::Continue(None) => {
                        return Ok(flush(out.len(), base, ChunkPull::Starved))
                    }
                    ControlFlow::Continue(Some(row)) => {
                        if !in_set(from, row.head) {
                            continue;
                        }
                        *walk = Some(WeightedWalk::start(spec, *semiring, row));
                    }
                }
            },
            StageOp::Repeat {
                input,
                body,
                min,
                max,
                until,
                walk,
            } => loop {
                if let Some(w) = walk {
                    w.drain_pending_into(out);
                    if w.finished() {
                        *walk = None;
                        continue;
                    }
                    if out.len() >= goal {
                        return Ok(ChunkPull::Rows);
                    }
                    ctx.ensure_alive()?;
                    w.advance(
                        ctx,
                        arena,
                        RepeatSpec {
                            body,
                            min: *min,
                            max: *max,
                            until: until.as_ref(),
                        },
                        delivered + (out.len() - base),
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                    }
                    continue;
                }
                match input.pull(ctx, arena)? {
                    ControlFlow::Break(()) => return Ok(flush(out.len(), base, ChunkPull::Done)),
                    ControlFlow::Continue(None) => {
                        return Ok(flush(out.len(), base, ChunkPull::Starved))
                    }
                    ControlFlow::Continue(Some(row)) => *walk = Some(RepeatWalk::new(row)),
                }
            },
            StageOp::RestrictVertices { input, vs } => {
                Self::filtered_chunk(input, ctx, arena, goal, out, |row, _| {
                    vs.contains(&row.head)
                })
            }
            StageOp::RestrictProperty {
                input,
                key,
                predicate,
            } => Self::filtered_chunk(input, ctx, arena, goal, out, |row, ctx| {
                predicate.eval(ctx.snapshot.vertex_property(row.head, key))
            }),
            StageOp::Dedup { input, seen } => {
                Self::filtered_chunk(input, ctx, arena, goal, out, |row, _| seen.insert(row.head))
            }
            StageOp::Limit { input, remaining } => {
                if *remaining == 0 {
                    return Ok(ChunkPull::Done);
                }
                let start = out.len();
                let res = input.pull_chunk(ctx, arena, target.max(1).min(*remaining), out)?;
                let mut appended = out.len() - start;
                if appended > *remaining {
                    // the upstream chunk overshot the limit: the surplus rows
                    // are dropped here (their expansions already counted —
                    // the documented chunked-vs-scalar stats divergence on
                    // non-pushed limits; emitted rows are identical)
                    out.truncate(start + *remaining);
                    appended = *remaining;
                }
                *remaining -= appended;
                Ok(flush(out.len(), start, res))
            }
        }
    }

    /// Shared chunk driver for the per-row filter stages
    /// (`RestrictVertices`/`RestrictProperty`/`Dedup`): pulls input chunks
    /// and compacts survivors in place (arena rows are `Copy`), looping until
    /// the goal is met or the input runs out.
    fn filtered_chunk(
        input: &mut Stage,
        ctx: &ExecCtx<'_>,
        arena: &PathArena,
        goal: usize,
        out: &mut Vec<ArenaRow>,
        mut keep: impl FnMut(&ArenaRow, &ExecCtx<'_>) -> bool,
    ) -> Result<ChunkPull, EngineError> {
        let base = out.len();
        loop {
            let start = out.len();
            let res = input.pull_chunk(ctx, arena, goal - start, out)?;
            let mut kept = start;
            for i in start..out.len() {
                if keep(&out[i], ctx) {
                    out[kept] = out[i];
                    kept += 1;
                }
            }
            out.truncate(kept);
            match res {
                ChunkPull::Rows => {
                    if out.len() >= goal {
                        return Ok(ChunkPull::Rows);
                    }
                }
                ChunkPull::Done => {
                    return Ok(if out.len() > base {
                        ChunkPull::Rows
                    } else {
                        ChunkPull::Done
                    })
                }
                ChunkPull::Starved => {
                    return Ok(if out.len() > base {
                        ChunkPull::Rows
                    } else {
                        ChunkPull::Starved
                    })
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The public cursor
// ---------------------------------------------------------------------------

/// A demand-driven cursor over a planned traversal: the pull-based execution
/// protocol behind [`Traversal::cursor`](crate::Traversal::cursor) and the
/// non-materializing terminals (`first`, `exists`, `count`).
///
/// Each `next_row` pull performs only the work needed to surface one row —
/// composite ops (`match_` product automata, `repeat`) suspend their frontier
/// mid-layer between pulls — so `limit(k)`, `first()` and external
/// [`Iterator`] consumption early-exit dense expansions instead of
/// enumerating them. The cursor honours the traversal's
/// [`ExecutionStrategy`]:
///
/// * `Streaming` — fully incremental (the protocol's native granularity);
/// * `Materialized` — evaluates the plan level-at-a-time on the first pull
///   and then yields from the buffer (early exit comes from the optimizer's
///   limit-pushdown annotation, not from the pull protocol);
/// * `Parallel` — pulls batches from partitioned prefix cursors on scoped
///   threads, preserving partition order.
///
/// Dropping the cursor drops all suspended state; an error fuses it (further
/// pulls return `Ok(None)`).
#[derive(Debug)]
pub struct RowCursor {
    snapshot: GraphSnapshot,
    cap: Option<usize>,
    counters: Counters,
    alive: Liveness,
    /// Byte budget for this cursor's accounting domain: the full
    /// [`ExecConfig::budget`] for the streaming/materialized strategies, an
    /// even share for the parallel strategy (whose partitions each carry
    /// their own share — see [`RowCursor::compile_parallel`]).
    budget: Option<u64>,
    inner: Inner,
    config: ExecConfig,
    /// Whether the compiled plan has at least one expansion op — plans that
    /// are pure filters gain nothing from batching, so [`RowCursor::next_chunk`]
    /// falls back to the scalar pull for them.
    chunkable: bool,
    /// Reused transport buffer for the chunked drain (one allocation per
    /// cursor, not per batch).
    chunk_buf: RowChunk,
    fused: bool,
}

#[derive(Debug)]
enum Inner {
    Pipe {
        arena: PathArena,
        root: Box<Stage>,
    },
    Batch {
        plan: LogicalPlan,
        buffered: Option<std::vec::IntoIter<ResultRow>>,
        /// Per-op actuals recorded by the profiled batch run (populated on
        /// the first pull when [`ExecConfig::profile`] is set).
        trace: Option<Vec<OpActuals>>,
    },
    Parallel(Box<ParallelState>),
}

impl RowCursor {
    /// Compiles a cursor for an already-planned traversal, optionally forcing
    /// the parallel strategy's worker thread count (`None` =
    /// `available_parallelism`; ignored by the other strategies).
    pub(crate) fn compile_with_threads(
        snapshot: GraphSnapshot,
        plan: LogicalPlan,
        strategy: ExecutionStrategy,
        cap: Option<usize>,
        threads: Option<usize>,
    ) -> RowCursor {
        Self::compile_with_config(
            snapshot,
            plan,
            strategy,
            cap,
            threads,
            ExecConfig::default(),
        )
    }

    /// Compiles a cursor with explicit execution knobs (CSR adjacency on/off,
    /// chunk size). [`Traversal`](crate::pipeline::Traversal) threads its
    /// `vectorize`/`chunk_size` settings through here.
    pub(crate) fn compile_with_config(
        snapshot: GraphSnapshot,
        plan: LogicalPlan,
        strategy: ExecutionStrategy,
        cap: Option<usize>,
        threads: Option<usize>,
        config: ExecConfig,
    ) -> RowCursor {
        match strategy {
            ExecutionStrategy::Materialized => Self::batch(snapshot, plan, cap, config),
            ExecutionStrategy::Streaming => {
                let chunkable = plan.chunk_capable();
                let (start, ops) = plan.into_parts();
                let mut root = Stage::pipeline(initial_rows(&start), ops);
                if config.profile {
                    root.enable_trace();
                }
                RowCursor {
                    snapshot,
                    cap,
                    counters: Counters::default(),
                    alive: Liveness::default(),
                    budget: config.budget,
                    inner: Inner::Pipe {
                        arena: PathArena::new(),
                        root: Box::new(root),
                    },
                    config,
                    chunkable,
                    chunk_buf: RowChunk::default(),
                    fused: false,
                }
            }
            ExecutionStrategy::Parallel => {
                Self::compile_parallel(snapshot, plan, cap, threads, config)
            }
        }
    }

    fn batch(
        snapshot: GraphSnapshot,
        plan: LogicalPlan,
        cap: Option<usize>,
        config: ExecConfig,
    ) -> RowCursor {
        RowCursor {
            snapshot,
            cap,
            counters: Counters::default(),
            alive: Liveness::default(),
            budget: config.budget,
            inner: Inner::Batch {
                plan,
                buffered: None,
                trace: None,
            },
            config,
            chunkable: false,
            chunk_buf: RowChunk::default(),
            fused: false,
        }
    }

    /// Compiles the parallel variant, optionally forcing the thread count.
    /// Falls back to the materialized batch cursor when partitioning cannot
    /// help (single thread, single start vertex, or a plan that begins with a
    /// stateful op and therefore has no parallelizable prefix).
    pub(crate) fn compile_parallel(
        snapshot: GraphSnapshot,
        plan: LogicalPlan,
        cap: Option<usize>,
        threads: Option<usize>,
        config: ExecConfig,
    ) -> RowCursor {
        let threads = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(plan.start().len().max(1));
        // stateful-across-rows ops must run in the global single-threaded
        // suffix: Dedup/Limit, and a GlobalReachable automaton (its shared
        // seen-set makes each row's output depend on every earlier row —
        // per-partition seen-sets would change emissions, unlike the R7/R9
        // emission caps, which are sound per-partition over-approximations)
        let stateful = |op: &PlanOp| {
            matches!(op, PlanOp::DedupByVertex | PlanOp::Limit(_))
                || matches!(
                    op,
                    PlanOp::ExpandAutomaton { spec, .. }
                        if spec.semantics() == Semantics::GlobalReachable
                )
        };
        let split = plan
            .ops()
            .iter()
            .position(stateful)
            .unwrap_or(plan.ops().len());
        if threads <= 1 || plan.start().len() <= 1 || split == 0 {
            return Self::batch(snapshot, plan, cap, config);
        }
        // build the reversed graph once, up front, if the plan will need it —
        // otherwise every worker's first In/Both hop would block on the
        // lazy per-generation build
        if plan.needs_reversed() {
            snapshot.prewarm_reversed();
        }
        // likewise the CSR snapshots the plan's label-restricted expansions
        // will scan (only the directions actually used — see the csr_cache
        // regression suite)
        if config.use_csr {
            let (out, in_) = plan.csr_directions();
            snapshot.prewarm_csr(out, in_);
        }
        let (start, mut prefix) = plan.into_parts();
        let suffix = prefix.split_off(split);
        let has_suffix = !suffix.is_empty();
        let chunk_size = start.len().div_ceil(threads);
        // each accounting domain — every partition plus the suffix/consumer —
        // gets an even share of the query budget (conservative: a query whose
        // growth is skewed onto one partition trips earlier than a perfectly
        // balanced one, never later)
        let domains = start.chunks(chunk_size).count() as u64 + 1;
        let share = config.budget.map(|b| (b / domains).max(1));
        let partitions: Vec<Partition> = start
            .chunks(chunk_size)
            .map(|chunk| {
                let mut root = Stage::pipeline(initial_rows(chunk), prefix.clone());
                if config.profile {
                    root.enable_trace();
                }
                Partition {
                    arena: PathArena::new(),
                    root,
                    counters: Counters::default(),
                    rows: VecDeque::new(),
                    finished: VecDeque::new(),
                    materialise: !has_suffix,
                    forward: IdForwarder::new(),
                    budget: share,
                    done: false,
                }
            })
            .collect();
        let suffix = if suffix.is_empty() {
            None
        } else {
            let mut root = Stage::fed_pipeline(suffix);
            if config.profile {
                root.enable_trace();
            }
            Some(SuffixPipe {
                arena: PathArena::new(),
                root,
            })
        };
        RowCursor {
            snapshot,
            cap,
            counters: Counters::default(),
            alive: Liveness::default(),
            budget: share,
            inner: Inner::Parallel(Box::new(ParallelState {
                partitions,
                current: 0,
                suffix,
                feed_closed: false,
                fed: 0,
                batch: INITIAL_BATCH,
                boundary_interned: 0,
            })),
            config,
            chunkable: false,
            chunk_buf: RowChunk::default(),
            fused: false,
        }
    }

    /// Pulls the next result row, or `None` when the traversal is exhausted
    /// (or a `Limit` upstream broke the pipeline). After an error the cursor
    /// is fused and returns `Ok(None)`.
    pub fn next_row(&mut self) -> Result<Option<ResultRow>, EngineError> {
        if self.fused {
            return Ok(None);
        }
        let out = self.advance_inner(true);
        match out {
            Ok(Some(RowDelivery::Materialised(row))) => Ok(Some(row)),
            Ok(Some(RowDelivery::Counted)) => unreachable!("materialise requested"),
            Ok(None) => Ok(None),
            Err(e) => {
                self.fused = true;
                Err(e)
            }
        }
    }

    /// Advances past one row without materialising its path (the `count`
    /// terminal). Returns whether a row was consumed.
    pub(crate) fn advance_row(&mut self) -> Result<bool, EngineError> {
        if self.fused {
            return Ok(false);
        }
        match self.advance_inner(false) {
            Ok(opt) => Ok(opt.is_some()),
            Err(e) => {
                self.fused = true;
                Err(e)
            }
        }
    }

    /// The snapshot this cursor executes against (pinned at compile time; a
    /// server can report its generation alongside results).
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// Cancels the cursor when `deadline` passes: every subsequent pull (on
    /// any strategy, including parallel partition workers) fails with
    /// [`EngineError::Cancelled`]. Combines with any token bound — the first
    /// bound to trip wins.
    pub fn set_deadline(&mut self, deadline: std::time::Instant) {
        self.alive.deadline = Some(deadline);
    }

    /// Attaches a shared [`CancelToken`]: cancelling any clone of the token
    /// makes every subsequent pull fail with [`EngineError::Cancelled`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.alive.token = Some(token);
    }

    /// Pulls the next batch of result rows into `out` (appending), returning
    /// whether anything was appended — the full-drain counterpart of
    /// [`RowCursor::next_row`]. Streaming pipelines with expansion work move
    /// whole row chunks through the stage tree per call (see [`crate::chunk`]);
    /// other strategies and pure-filter plans fall back to repeated scalar
    /// pulls, so every cursor supports this entry point. After an error the
    /// cursor is fused, exactly like the scalar protocol.
    pub fn next_chunk(&mut self, out: &mut Vec<ResultRow>) -> Result<bool, EngineError> {
        if self.fused {
            return Ok(false);
        }
        let target = self.config.chunk.max(1);
        if !self.chunkable || !matches!(self.inner, Inner::Pipe { .. }) {
            let before = out.len();
            for _ in 0..target {
                match self.next_row()? {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            return Ok(out.len() > before);
        }
        let ctx = ExecCtx {
            snapshot: &self.snapshot,
            cap: self.cap,
            counters: &self.counters,
            alive: self.alive.active(),
            use_csr: self.config.use_csr,
            budget: self.budget,
        };
        let Inner::Pipe { arena, root } = &mut self.inner else {
            unreachable!("checked above");
        };
        self.chunk_buf.clear();
        match root.pull_chunk(&ctx, arena, target, &mut self.chunk_buf.rows) {
            Ok(ChunkPull::Rows) => {
                if ctx.budgeted() {
                    if let Err(e) =
                        ctx.charge_bytes(self.chunk_buf.rows.len() as u64 * crate::exec::ROW_BYTES)
                    {
                        self.fused = true;
                        return Err(e);
                    }
                }
                out.extend(self.chunk_buf.rows.iter().map(|row| ResultRow {
                    source: row.source,
                    path: arena.to_path(row.path),
                    head: row.head,
                    weight: row.weight,
                }));
                Ok(true)
            }
            Ok(ChunkPull::Done | ChunkPull::Starved) => Ok(false),
            Err(e) => {
                self.fused = true;
                Err(e)
            }
        }
    }

    fn advance_inner(&mut self, materialise: bool) -> Result<Option<RowDelivery>, EngineError> {
        let profile = self.config.profile;
        let ctx = ExecCtx {
            snapshot: &self.snapshot,
            cap: self.cap,
            counters: &self.counters,
            alive: self.alive.active(),
            use_csr: self.config.use_csr,
            budget: self.budget,
        };
        match &mut self.inner {
            Inner::Pipe { arena, root } => match root.pull(&ctx, arena)? {
                ControlFlow::Continue(Some(row)) => Ok(Some(if materialise {
                    RowDelivery::Materialised(ResultRow {
                        source: row.source,
                        path: arena.to_path(row.path),
                        head: row.head,
                        weight: row.weight,
                    })
                } else {
                    RowDelivery::Counted
                })),
                ControlFlow::Continue(None) | ControlFlow::Break(()) => Ok(None),
            },
            Inner::Batch {
                plan,
                buffered,
                trace,
            } => {
                if buffered.is_none() {
                    let rows = if profile {
                        let (rows, actuals) = materialized_traced(&ctx, plan.start(), plan.ops())?;
                        *trace = Some(actuals);
                        rows
                    } else {
                        materialized(&ctx, plan.start(), plan.ops())?
                    };
                    *buffered = Some(rows.into_iter());
                }
                Ok(buffered
                    .as_mut()
                    .and_then(|it| it.next())
                    .map(RowDelivery::Materialised))
            }
            Inner::Parallel(state) => Ok(state.next_row(&ctx)?.map(RowDelivery::Materialised)),
        }
    }

    /// The per-op actuals recorded by a profiled run, source-first (index 0
    /// is the start frontier, aligned with
    /// [`PlanReport::estimates`](crate::plan::PlanReport::estimates)).
    /// `None` unless the cursor was compiled with [`ExecConfig::profile`]
    /// (for the materialized strategy, also until the first pull runs the
    /// batch). For the parallel strategy, per-partition prefix counters are
    /// summed elementwise and the global suffix ops appended (the feed
    /// boundary stage is plumbing, not a plan op, and is dropped).
    pub(crate) fn op_actuals(&self) -> Option<Vec<OpActuals>> {
        match &self.inner {
            Inner::Pipe { root, .. } => root.has_trace().then(|| {
                let mut out = Vec::new();
                root.collect_trace(&mut out);
                out
            }),
            Inner::Batch { trace, .. } => trace.clone(),
            Inner::Parallel(state) => {
                let mut summed: Option<Vec<OpActuals>> = None;
                for p in &state.partitions {
                    if !p.root.has_trace() {
                        return None;
                    }
                    let mut part = Vec::new();
                    p.root.collect_trace(&mut part);
                    match &mut summed {
                        None => summed = Some(part),
                        Some(acc) => {
                            for (a, b) in acc.iter_mut().zip(&part) {
                                a.merge(b);
                            }
                        }
                    }
                }
                let mut out = summed?;
                // the boundary id-forwarding interns into the suffix arena
                // between pulls; credit it to the prefix root, the op whose
                // rows crossed the boundary
                if let Some(last) = out.last_mut() {
                    last.interned += state.boundary_interned;
                }
                if let Some(sfx) = &state.suffix {
                    let mut tail = Vec::new();
                    sfx.root.collect_trace(&mut tail);
                    out.extend(tail.into_iter().skip(1));
                }
                Some(out)
            }
        }
    }

    /// Work counters accumulated so far (across all partitions for the
    /// parallel strategy).
    pub fn stats(&self) -> ExecStats {
        let mut stats = self.counters.stats();
        if let Inner::Parallel(state) = &self.inner {
            for p in &state.partitions {
                let ps = p.counters.stats();
                stats.expansions += ps.expansions;
                stats.interned_nodes += ps.interned_nodes;
                stats.bytes_charged += ps.bytes_charged;
            }
        }
        stats
    }
}

enum RowDelivery {
    Materialised(ResultRow),
    Counted,
}

/// External iteration: yields `Err` once on failure, then fuses.
impl Iterator for RowCursor {
    type Item = Result<ResultRow, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_row().transpose()
    }
}

// ---------------------------------------------------------------------------
// The parallel cursor
// ---------------------------------------------------------------------------

const INITIAL_BATCH: usize = 64;
const MAX_BATCH: usize = 8192;

/// One start-frontier partition: its own arena, prefix pipeline, counters
/// (merged into [`RowCursor::stats`] on demand), the queue of rows it has
/// produced but the consumer has not reached yet, and the memoized
/// partition-arena → suffix-arena id translation used when those rows cross
/// the boundary into the stateful suffix.
#[derive(Debug)]
struct Partition {
    arena: PathArena,
    root: Stage,
    counters: Counters,
    /// Rows awaiting the suffix boundary (id-forwarding plans).
    rows: VecDeque<ArenaRow>,
    /// Rows materialised on the worker thread (suffix-free plans).
    finished: VecDeque<ResultRow>,
    /// Whether this partition's rows are final output (no suffix pipeline):
    /// then workers materialise in parallel inside [`Partition::pull_batch`];
    /// otherwise rows stay as ids for the forwarder.
    materialise: bool,
    forward: IdForwarder,
    /// This partition's even share of the query memory budget (its own
    /// accounting domain: own arena, own counters, own mark).
    budget: Option<u64>,
    done: bool,
}

impl Partition {
    /// Rows queued and not yet consumed (either representation).
    fn queued(&self) -> usize {
        self.rows.len() + self.finished.len()
    }

    /// Pulls up to `batch` rows from the partition's prefix pipeline (runs on
    /// a scoped worker thread). Suffix-free plans materialise here — path
    /// reconstruction runs in parallel across partitions; plans with a
    /// stateful suffix keep [`ArenaRow`]s for the consumer's id forwarder.
    fn pull_batch(
        &mut self,
        snapshot: &GraphSnapshot,
        cap: Option<usize>,
        alive: Option<&Liveness>,
        use_csr: bool,
        batch: usize,
    ) -> Result<(), EngineError> {
        let ctx = ExecCtx {
            snapshot,
            cap,
            counters: &self.counters,
            alive,
            use_csr,
            budget: self.budget,
        };
        let mut produced = 0u64;
        for _ in 0..batch {
            match self.root.pull(&ctx, &self.arena)? {
                ControlFlow::Continue(Some(row)) => {
                    produced += 1;
                    if self.materialise {
                        self.finished.push_back(ResultRow {
                            source: row.source,
                            path: self.arena.to_path(row.path),
                            head: row.head,
                            weight: row.weight,
                        });
                    } else {
                        self.rows.push_back(row);
                    }
                }
                ControlFlow::Continue(None) | ControlFlow::Break(()) => {
                    self.done = true;
                    break;
                }
            }
        }
        if ctx.budgeted() {
            // per-batch backstop for the queued rows (arena growth was
            // charged inside the stage pulls against this partition's share)
            ctx.charge_bytes(produced * crate::exec::ROW_BYTES)?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SuffixPipe {
    arena: PathArena,
    root: Stage,
}

/// Start-partitioned parallel evaluation as a cursor.
///
/// The plan is split at the first *stateful* op (`Dedup`/`Limit` — only ever
/// top-level; repeat bodies are validated stateless at plan time). The
/// stateless prefix distributes over rows, so each partition evaluates it
/// with its own pull pipeline; scoped threads refill the partition queues in
/// growing batches, and the consumer drains the queues strictly in partition
/// order (row-major order is preserved, because stateless ops map each input
/// row to a contiguous run of output rows) — feeding the stateful suffix
/// pipeline, which runs globally, single-threaded. The result is row-for-row
/// identical to the materialized strategy; when the suffix reports
/// `ControlFlow::Break` (a saturated `Limit`), the partition cursors are
/// simply never pulled again, so at most one speculative batch per partition
/// is wasted.
///
/// The partition → suffix boundary is **copy-free**: instead of
/// materialising each row's path and re-interning it into the suffix arena
/// (O(path length) per row, discarding the partition arena's prefix
/// sharing), each partition keeps a memoized [`IdForwarder`] that translates
/// its arena ids into the suffix arena — O(new nodes) amortised, counted in
/// [`ExecStats::interned_nodes`](crate::exec::ExecStats).
#[derive(Debug)]
struct ParallelState {
    partitions: Vec<Partition>,
    current: usize,
    suffix: Option<SuffixPipe>,
    feed_closed: bool,
    fed: usize,
    batch: usize,
    /// Arena nodes interned by partition → suffix id forwarding. The
    /// forwarding runs between stage pulls, so no stage trace record
    /// brackets it; profiling attributes it to the prefix root instead
    /// (see [`RowCursor::op_actuals`]).
    boundary_interned: u64,
}

impl ParallelState {
    fn next_row(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ResultRow>, EngineError> {
        loop {
            // 1. serve from the suffix pipeline if there is one
            if let Some(sfx) = &mut self.suffix {
                match sfx.root.pull(ctx, &sfx.arena)? {
                    ControlFlow::Break(()) => return Ok(None),
                    ControlFlow::Continue(Some(row)) => {
                        return Ok(Some(ResultRow {
                            source: row.source,
                            path: sfx.arena.to_path(row.path),
                            head: row.head,
                            weight: row.weight,
                        }))
                    }
                    ControlFlow::Continue(None) => {} // starved: feed below
                }
            } else if self.current < self.partitions.len() {
                // suffix-free plans: the worker threads already materialised
                if let Some(row) = self.partitions[self.current].finished.pop_front() {
                    self.fed += 1;
                    check_cap(self.fed, ctx.cap)?;
                    return Ok(Some(row));
                }
            }

            // 2. make sure the current partition has queued rows (or move on)
            loop {
                if self.current >= self.partitions.len() {
                    match &mut self.suffix {
                        None => return Ok(None),
                        Some(sfx) => {
                            if self.feed_closed {
                                // the suffix was already flushed and is
                                // starved again — nothing more will come
                                return Ok(None);
                            }
                            sfx.root.close_feed();
                            self.feed_closed = true;
                            break; // flush the suffix
                        }
                    }
                }
                let part = &self.partitions[self.current];
                if part.queued() > 0 {
                    break;
                }
                if part.done {
                    self.current += 1;
                    continue;
                }
                self.fill_round(ctx)?;
            }

            // 3. feed the suffix from the current partition, in order —
            // id forwarding, not a materialise/re-intern round trip: each
            // partition-arena node crosses the boundary at most once
            if let Some(sfx) = &mut self.suffix {
                if self.current < self.partitions.len() {
                    let part = &mut self.partitions[self.current];
                    let mut rows: Vec<ArenaRow> = Vec::with_capacity(part.rows.len());
                    for row in part.rows.drain(..) {
                        self.fed += 1;
                        let (path, appended) =
                            part.forward.forward(&part.arena, &sfx.arena, row.path);
                        ctx.count_interned(appended);
                        self.boundary_interned += appended as u64;
                        rows.push(ArenaRow {
                            source: row.source,
                            path,
                            head: row.head,
                            weight: row.weight,
                        });
                    }
                    check_cap(self.fed, ctx.cap)?;
                    if ctx.budgeted() {
                        // the forwarder's appends grew the suffix arena (no
                        // writer is held here), and the fed rows join the
                        // suffix queue — both on the consumer's share
                        ctx.charge_arena_growth(sfx.arena.node_count())?;
                        ctx.charge_bytes(rows.len() as u64 * crate::exec::ROW_BYTES)?;
                    }
                    sfx.root.feed(rows);
                }
            }
        }
    }

    /// One parallel refill round: every live partition whose queue is below
    /// the batch target pulls a batch on its own scoped thread.
    fn fill_round(&mut self, ctx: &ExecCtx<'_>) -> Result<(), EngineError> {
        let batch = self.batch;
        let cap = ctx.cap;
        let snapshot = ctx.snapshot;
        let alive = ctx.alive;
        let use_csr = ctx.use_csr;
        let results: Vec<Result<(), EngineError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .iter_mut()
                .filter(|p| !p.done && p.queued() < batch)
                .map(|part| {
                    scope.spawn(move |_| part.pull_batch(snapshot, cap, alive, use_csr, batch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition thread panicked"))
                .collect()
        })
        .expect("thread scope failed");
        for r in results {
            r?;
        }
        self.batch = (self.batch * 2).min(MAX_BATCH);
        Ok(())
    }
}
