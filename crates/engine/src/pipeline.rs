//! The Gremlin-style pipeline DSL.
//!
//! A [`Traversal`] is a description of a query as a sequence of steps — the
//! surface syntax of the "multi-relational graph traversal engine" the paper
//! motivates. Steps are *not* executed as written: the [`planner`](crate::plan)
//! rewrites them into the paper's algebra (restricted edge sets combined with
//! concatenative joins), which an [executor](crate::exec) then evaluates.
//!
//! ```
//! use mrpa_engine::{classic_social_graph, Traversal};
//!
//! let g = classic_social_graph();
//! // "software created by people marko knows"
//! let result = Traversal::over(&g)
//!     .v(["marko"])
//!     .out(["knows"])
//!     .out(["created"])
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.head_names(), vec!["lop", "ripple"]);
//! ```

use crate::exec::ExecutionStrategy;
use crate::query::QueryResult;
use crate::store::PropertyGraph;
use crate::value::Predicate;
use crate::{error::EngineError, plan};

/// How a traversal starts.
#[derive(Debug, Clone, PartialEq)]
pub enum StartSpec {
    /// Start at every vertex of the graph.
    AllVertices,
    /// Start at the named vertices.
    Named(Vec<String>),
    /// Start at vertices whose property satisfies a predicate.
    Where(String, Predicate),
}

/// One step of a traversal pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Traverse outgoing edges (optionally restricted to the given labels),
    /// moving to the head vertices.
    Out(Option<Vec<String>>),
    /// Traverse incoming edges (optionally restricted to the given labels),
    /// moving to the tail vertices.
    In(Option<Vec<String>>),
    /// Keep only rows whose current vertex has a property satisfying the
    /// predicate.
    Has(String, Predicate),
    /// Keep only rows whose current vertex is one of the named vertices.
    Is(Vec<String>),
    /// Deduplicate rows by their current vertex.
    DedupByVertex,
    /// Keep at most this many rows.
    Limit(usize),
}

/// A fluent traversal builder bound to a [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct Traversal {
    graph: PropertyGraph,
    start: StartSpec,
    steps: Vec<Step>,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
}

impl Traversal {
    /// Starts building a traversal over the given graph. The default start is
    /// every vertex; narrow it with [`Traversal::v`] or [`Traversal::v_where`].
    pub fn over(graph: &PropertyGraph) -> Self {
        Traversal {
            graph: graph.clone(),
            start: StartSpec::AllVertices,
            steps: Vec::new(),
            strategy: ExecutionStrategy::Materialized,
            max_intermediate: None,
        }
    }

    /// Starts at the named vertices.
    pub fn v<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.start = StartSpec::Named(names.into_iter().map(Into::into).collect());
        self
    }

    /// Starts at every vertex whose property `key` satisfies `pred`.
    pub fn v_where(mut self, key: &str, pred: Predicate) -> Self {
        self.start = StartSpec::Where(key.to_owned(), pred);
        self
    }

    /// Follows outgoing edges with any of the given labels.
    pub fn out<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        self.steps.push(Step::Out(if labels.is_empty() {
            None
        } else {
            Some(labels)
        }));
        self
    }

    /// Follows outgoing edges with any label.
    pub fn out_any(mut self) -> Self {
        self.steps.push(Step::Out(None));
        self
    }

    /// Follows incoming edges with any of the given labels.
    pub fn in_<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        self.steps.push(Step::In(if labels.is_empty() {
            None
        } else {
            Some(labels)
        }));
        self
    }

    /// Follows incoming edges with any label.
    pub fn in_any(mut self) -> Self {
        self.steps.push(Step::In(None));
        self
    }

    /// Filters on a property of the current vertex.
    pub fn has(mut self, key: &str, pred: Predicate) -> Self {
        self.steps.push(Step::Has(key.to_owned(), pred));
        self
    }

    /// Filters to the named current vertices.
    pub fn is<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.steps
            .push(Step::Is(names.into_iter().map(Into::into).collect()));
        self
    }

    /// Deduplicates rows by their current vertex.
    pub fn dedup(mut self) -> Self {
        self.steps.push(Step::DedupByVertex);
        self
    }

    /// Keeps at most `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.steps.push(Step::Limit(n));
        self
    }

    /// Chooses the execution strategy (materialized by default).
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps intermediate result sizes; exceeding the cap aborts the traversal.
    pub fn max_intermediate(mut self, cap: usize) -> Self {
        self.max_intermediate = Some(cap);
        self
    }

    /// The steps accumulated so far (used by the planner and tests).
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The start specification.
    pub fn start_spec(&self) -> &StartSpec {
        &self.start
    }

    /// Plans and executes the traversal.
    pub fn execute(&self) -> Result<QueryResult, EngineError> {
        let snapshot = self.graph.snapshot();
        let plan = plan::plan(&snapshot, &self.start, &self.steps)?;
        crate::exec::execute(&snapshot, &plan, self.strategy, self.max_intermediate)
    }

    /// Plans the traversal and returns the logical plan without executing it
    /// (useful for inspecting what the planner produced).
    pub fn explain(&self) -> Result<plan::LogicalPlan, EngineError> {
        let snapshot = self.graph.snapshot();
        plan::plan(&snapshot, &self.start, &self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::classic_social_graph;
    use crate::value::Value;

    #[test]
    fn builder_accumulates_steps() {
        let g = classic_social_graph();
        let t = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .has("age", Predicate::Gt(30.0))
            .dedup()
            .limit(10);
        assert_eq!(t.steps().len(), 4);
        assert_eq!(t.start_spec(), &StartSpec::Named(vec!["marko".to_owned()]));
    }

    #[test]
    fn quickstart_pipeline_runs() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .out(["created"])
            .execute()
            .unwrap();
        assert_eq!(result.head_names(), vec!["lop", "ripple"]);
    }

    #[test]
    fn empty_label_list_means_any_label() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v(["marko"])
            .out(Vec::<String>::new())
            .execute()
            .unwrap();
        // marko's out-neighbours over all labels: vadas, josh, lop
        assert_eq!(result.head_names().len(), 3);
    }

    #[test]
    fn where_start_selects_by_property() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .dedup()
            .execute()
            .unwrap();
        // creators of java software: marko, josh, peter
        let mut names = result.head_names();
        names.sort();
        assert_eq!(names, vec!["josh", "marko", "peter"]);
    }

    #[test]
    fn explain_reports_plan_operations() {
        let g = classic_social_graph();
        let plan = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .has("age", Predicate::Gt(30.0))
            .explain()
            .unwrap();
        assert!(plan.ops().len() >= 2);
        assert!(!plan.describe().is_empty());
    }

    #[test]
    fn unknown_start_vertex_is_an_error() {
        let g = classic_social_graph();
        let err = Traversal::over(&g).v(["nobody"]).execute();
        assert!(matches!(err, Err(EngineError::UnknownVertex(_))));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let g = classic_social_graph();
        let err = Traversal::over(&g).v(["marko"]).out(["likes"]).execute();
        assert!(matches!(err, Err(EngineError::UnknownLabel(_))));
    }
}
