//! The Gremlin-style pipeline DSL.
//!
//! A [`Traversal`] is a description of a query as a sequence of steps — the
//! surface syntax of the "multi-relational graph traversal engine" the paper
//! motivates. Steps are *not* executed as written: the [`planner`](crate::plan)
//! lowers them into the paper's algebra (restricted edge sets combined with
//! concatenative joins), rewrites the result with an optimizer pass, and an
//! [executor](crate::exec) then evaluates the rewritten plan.
//!
//! Three families of steps share one algebraic IR:
//!
//! * **step-at-a-time traversal** — `out` / `in_` / `both`, filters (`has`,
//!   `is`), `dedup`, `limit`;
//! * **regular path patterns** — [`Traversal::match_`] takes a label regex
//!   like `"knows+·created"` and compiles it to a minimized product automaton;
//! * **bounded iteration** — [`Traversal::repeat`] runs a nested pipeline
//!   fragment (a [`Pipeline`]) between `min` and `max` times, with an
//!   optional `until` early-exit predicate.
//!
//! ```
//! use mrpa_engine::{classic_social_graph, Traversal};
//!
//! let g = classic_social_graph();
//! // "software created by people marko knows"
//! let result = Traversal::over(&g)
//!     .v(["marko"])
//!     .out(["knows"])
//!     .out(["created"])
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
//!
//! // the same query as a regular path pattern
//! let result = Traversal::over(&g)
//!     .v(["marko"])
//!     .match_("knows·created")
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
//! ```

use std::ops::RangeInclusive;

use crate::cursor::RowCursor;
use crate::exec::{ExecStats, ExecutionStrategy};
use crate::plan::{
    self, Direction, Semantics, SemiringKind, DEFAULT_MATCH_MAX_HOPS, UNBOUNDED_MATCH_HOPS,
};
use crate::query::{QueryResult, ResultRow};
use crate::store::PropertyGraph;
use crate::trace::{ProfiledQuery, QueryTrace};
use crate::value::Predicate;
use crate::{error::EngineError, plan::PlanReport};

/// Feeds the process-wide [`crate::metrics`] registry after a completed
/// query (any terminal).
fn record_query_metrics(stats: ExecStats, elapsed: std::time::Duration) {
    crate::metrics::queries_total().inc();
    crate::metrics::query_latency().observe(elapsed);
    crate::metrics::query_expansions().add(stats.expansions);
    crate::metrics::query_interned().add(stats.interned_nodes);
}

/// How a traversal starts.
#[derive(Debug, Clone, PartialEq)]
pub enum StartSpec {
    /// Start at every vertex of the graph.
    AllVertices,
    /// Start at the named vertices.
    Named(Vec<String>),
    /// Start at vertices whose property satisfies a predicate.
    Where(String, Predicate),
}

/// How a weighted step ([`Step::Weighted`]) obtains each traversed edge's
/// weight — the name-level counterpart of the plan's
/// [`WeightSource`](crate::plan::WeightSource), resolved at plan time.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightSpec {
    /// Every edge weighs 1 (hop counting). The default for
    /// [`Traversal::cheapest_`] and [`Traversal::widest_`].
    Unit,
    /// Read the weight from this edge property.
    Property(String),
    /// A per-label weight table.
    Labels(Vec<(String, f64)>),
}

/// One step of a traversal pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Traverse outgoing edges (optionally restricted to the given labels),
    /// moving to the head vertices.
    Out(Option<Vec<String>>),
    /// Traverse incoming edges (optionally restricted to the given labels),
    /// moving to the tail vertices.
    In(Option<Vec<String>>),
    /// Traverse edges in both directions (optionally restricted to the given
    /// labels).
    Both(Option<Vec<String>>),
    /// Traverse edge sequences whose label word matches a regular path
    /// pattern (`"knows+·created"`), bounded to `max_hops` edges. `direction`
    /// chooses between outgoing (`Out`) and incoming (`In`) walks;
    /// `semantics` between all-walks and reachability evaluation.
    Match {
        /// The label-regex pattern text (parsed at plan time).
        pattern: String,
        /// Depth bound on automaton evaluation
        /// ([`crate::plan::UNBOUNDED_MATCH_HOPS`] = none; requires
        /// [`Semantics::Reachable`]).
        max_hops: usize,
        /// Direction of travel (`Out` or `In`; `Both` is rejected at plan
        /// time).
        direction: Direction,
        /// Walk vs. reachability evaluation semantics.
        semantics: Semantics,
    },
    /// Semiring-weighted best-first path search: per input row, one row per
    /// reachable head matching the pattern, carrying the semiring-optimal
    /// path and cost, emitted best-cost-first. Built by
    /// [`Traversal::cheapest_`] / [`Traversal::widest_`] and refined by
    /// [`Traversal::weight_by`] / [`Traversal::weight_by_labels`].
    Weighted {
        /// The label-regex pattern text (parsed at plan time).
        pattern: String,
        /// Depth bound ([`crate::plan::UNBOUNDED_MATCH_HOPS`] = none;
        /// unbounded is safe here — best-first settling terminates on cyclic
        /// graphs by itself).
        max_hops: usize,
        /// Direction of travel (`Out` or `In`; `Both` is rejected at plan
        /// time).
        direction: Direction,
        /// Which selective semiring orders the search.
        semiring: SemiringKind,
        /// Where edge weights come from.
        weight: WeightSpec,
    },
    /// A dangling `weight_by` that did not follow a weighted step; rejected
    /// at plan time (the builder folds a well-placed `weight_by` into the
    /// preceding [`Step::Weighted`] instead of emitting this).
    WeightBy(WeightSpec),
    /// Bounded Kleene iteration of a nested pipeline fragment: rows that have
    /// completed `k` body iterations for `min ≤ k ≤ max` are emitted. With
    /// `until`, a row instead exits (and is emitted) as soon as its head
    /// satisfies the predicate, checked from iteration `min` on.
    Repeat {
        /// The loop body.
        body: Vec<Step>,
        /// Minimum completed iterations before emission.
        min: usize,
        /// Maximum iterations.
        max: usize,
        /// Optional early-exit predicate `(property key, predicate)`.
        until: Option<(String, Predicate)>,
    },
    /// Keep only rows whose current vertex has a property satisfying the
    /// predicate.
    Has(String, Predicate),
    /// Keep only rows whose current vertex is one of the named vertices.
    Is(Vec<String>),
    /// Deduplicate rows by their current vertex.
    DedupByVertex,
    /// Keep at most this many rows.
    Limit(usize),
}

fn label_list<I, S>(labels: I) -> Option<Vec<String>>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
    if labels.is_empty() {
        None
    } else {
        Some(labels)
    }
}

/// A free-standing pipeline fragment: the same step vocabulary as
/// [`Traversal`], but not bound to a graph or a start set. Used to build
/// [`Traversal::repeat`] bodies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pipeline {
    steps: Vec<Step>,
}

impl Pipeline {
    /// An empty fragment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a fragment directly from a step sequence. This is the lowering
    /// path used by textual frontends (MRPA-QL): text parses to [`Step`]s and
    /// re-enters the exact pipeline the fluent builder would have produced —
    /// there is no second execution path.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        Pipeline { steps }
    }

    /// The accumulated steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Consumes the fragment, returning its steps.
    pub fn into_steps(self) -> Vec<Step> {
        self.steps
    }

    fn push(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Follows outgoing edges with any of the given labels (empty = any).
    pub fn out<I, S>(self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push(Step::Out(label_list(labels)))
    }

    /// Follows outgoing edges with any label.
    pub fn out_any(self) -> Self {
        self.push(Step::Out(None))
    }

    /// Follows incoming edges with any of the given labels (empty = any).
    pub fn in_<I, S>(self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push(Step::In(label_list(labels)))
    }

    /// Follows incoming edges with any label.
    pub fn in_any(self) -> Self {
        self.push(Step::In(None))
    }

    /// Follows edges in both directions with any of the given labels
    /// (empty = any).
    pub fn both<I, S>(self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push(Step::Both(label_list(labels)))
    }

    /// Follows edges in both directions with any label.
    pub fn both_any(self) -> Self {
        self.push(Step::Both(None))
    }

    /// Traverses outgoing edge sequences whose label word matches the pattern
    /// (see [`Traversal::match_`]).
    pub fn match_(self, pattern: &str) -> Self {
        self.match_dir(Direction::Out, pattern)
    }

    /// [`Pipeline::match_`] with an explicit depth bound.
    pub fn match_within(self, pattern: &str, max_hops: usize) -> Self {
        self.match_dir_within(Direction::Out, pattern, max_hops)
    }

    /// Traverses *incoming* edge sequences whose label word matches the
    /// pattern (see [`Traversal::match_in_`]).
    pub fn match_in_(self, pattern: &str) -> Self {
        self.match_dir(Direction::In, pattern)
    }

    /// [`Pipeline::match_in_`] with an explicit depth bound.
    pub fn match_in_within(self, pattern: &str, max_hops: usize) -> Self {
        self.match_dir_within(Direction::In, pattern, max_hops)
    }

    /// A path pattern with an explicit traversal direction (see
    /// [`Traversal::match_dir`]).
    pub fn match_dir(self, direction: Direction, pattern: &str) -> Self {
        self.match_dir_within(direction, pattern, DEFAULT_MATCH_MAX_HOPS)
    }

    /// [`Pipeline::match_dir`] with an explicit depth bound.
    pub fn match_dir_within(self, direction: Direction, pattern: &str, max_hops: usize) -> Self {
        self.push(Step::Match {
            pattern: pattern.to_owned(),
            max_hops,
            direction,
            semantics: Semantics::Walks,
        })
    }

    /// A path pattern evaluated under reachability semantics (see
    /// [`Traversal::match_reachable`]).
    pub fn match_reachable(self, pattern: &str) -> Self {
        self.push(Step::Match {
            pattern: pattern.to_owned(),
            max_hops: UNBOUNDED_MATCH_HOPS,
            direction: Direction::Out,
            semantics: Semantics::Reachable,
        })
    }

    /// [`Pipeline::match_reachable`] with an explicit depth bound.
    pub fn match_reachable_within(self, pattern: &str, max_hops: usize) -> Self {
        self.push(Step::Match {
            pattern: pattern.to_owned(),
            max_hops,
            direction: Direction::Out,
            semantics: Semantics::Reachable,
        })
    }

    /// A path pattern under **global** reachability semantics (see
    /// [`Traversal::match_reachable_global`]): one shared `(vertex, state)`
    /// seen-set across all input rows.
    pub fn match_reachable_global(self, pattern: &str) -> Self {
        self.push(Step::Match {
            pattern: pattern.to_owned(),
            max_hops: UNBOUNDED_MATCH_HOPS,
            direction: Direction::Out,
            semantics: Semantics::GlobalReachable,
        })
    }

    /// [`Pipeline::match_reachable_global`] with an explicit depth bound.
    pub fn match_reachable_global_within(self, pattern: &str, max_hops: usize) -> Self {
        self.push(Step::Match {
            pattern: pattern.to_owned(),
            max_hops,
            direction: Direction::Out,
            semantics: Semantics::GlobalReachable,
        })
    }

    /// Best-first shortest-path search over a pattern (see
    /// [`Traversal::cheapest_`]). Unit weights (hop counting) by default;
    /// follow with [`Pipeline::weight_by`] for property weights.
    pub fn cheapest_(self, pattern: &str) -> Self {
        self.cheapest_within(pattern, UNBOUNDED_MATCH_HOPS)
    }

    /// [`Pipeline::cheapest_`] with an explicit depth bound.
    pub fn cheapest_within(self, pattern: &str, max_hops: usize) -> Self {
        self.push(Step::Weighted {
            pattern: pattern.to_owned(),
            max_hops,
            direction: Direction::Out,
            semiring: SemiringKind::Shortest,
            weight: WeightSpec::Unit,
        })
    }

    /// Best-first widest-path (bottleneck) search over a pattern (see
    /// [`Traversal::widest_`]).
    pub fn widest_(self, pattern: &str) -> Self {
        self.widest_within(pattern, UNBOUNDED_MATCH_HOPS)
    }

    /// [`Pipeline::widest_`] with an explicit depth bound.
    pub fn widest_within(self, pattern: &str, max_hops: usize) -> Self {
        self.push(Step::Weighted {
            pattern: pattern.to_owned(),
            max_hops,
            direction: Direction::Out,
            semiring: SemiringKind::Widest,
            weight: WeightSpec::Unit,
        })
    }

    fn set_weight(mut self, weight: WeightSpec) -> Self {
        match self.steps.last_mut() {
            Some(Step::Weighted { weight: slot, .. }) => {
                *slot = weight;
                self
            }
            // dangling: remember it so planning reports the misuse
            _ => self.push(Step::WeightBy(weight)),
        }
    }

    /// Weights the preceding weighted step by an edge property (see
    /// [`Traversal::weight_by`]).
    pub fn weight_by(self, key: &str) -> Self {
        self.set_weight(WeightSpec::Property(key.to_owned()))
    }

    /// Weights the preceding weighted step by a per-label table (see
    /// [`Traversal::weight_by_labels`]).
    pub fn weight_by_labels<I, S>(self, table: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        self.set_weight(WeightSpec::Labels(
            table.into_iter().map(|(s, w)| (s.into(), w)).collect(),
        ))
    }

    /// Keeps the first `k` rows of a weighted search (see
    /// [`Traversal::top_k`] for the per-input-row ordering caveat). Sugar
    /// for [`Pipeline::limit`].
    pub fn top_k(self, k: usize) -> Self {
        self.limit(k)
    }

    /// Repeats a nested fragment between `times.start()` and `times.end()`
    /// iterations (see [`Traversal::repeat`]).
    pub fn repeat(
        self,
        times: RangeInclusive<usize>,
        body: impl FnOnce(Pipeline) -> Pipeline,
    ) -> Self {
        self.push(Step::Repeat {
            body: body(Pipeline::new()).into_steps(),
            min: *times.start(),
            max: *times.end(),
            until: None,
        })
    }

    /// Repeats a nested fragment until the row's head satisfies the predicate
    /// (see [`Traversal::repeat_until`]).
    pub fn repeat_until(
        self,
        max: usize,
        key: &str,
        pred: Predicate,
        body: impl FnOnce(Pipeline) -> Pipeline,
    ) -> Self {
        self.push(Step::Repeat {
            body: body(Pipeline::new()).into_steps(),
            min: 0,
            max,
            until: Some((key.to_owned(), pred)),
        })
    }

    /// Filters on a property of the current vertex.
    pub fn has(self, key: &str, pred: Predicate) -> Self {
        self.push(Step::Has(key.to_owned(), pred))
    }

    /// Filters to the named current vertices.
    pub fn is<I, S>(self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push(Step::Is(names.into_iter().map(Into::into).collect()))
    }

    /// Deduplicates rows by their current vertex.
    pub fn dedup(self) -> Self {
        self.push(Step::DedupByVertex)
    }

    /// Keeps at most `n` rows.
    pub fn limit(self, n: usize) -> Self {
        self.push(Step::Limit(n))
    }
}

/// A fluent traversal builder bound to a [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct Traversal {
    graph: PropertyGraph,
    start: StartSpec,
    pipeline: Pipeline,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
    threads: Option<usize>,
    timeout: Option<std::time::Duration>,
    cancel: Option<crate::cancel::CancelToken>,
    vectorize: bool,
    chunk: usize,
    budget: Option<u64>,
}

impl Traversal {
    /// Starts building a traversal over the given graph. The default start is
    /// every vertex; narrow it with [`Traversal::v`] or [`Traversal::v_where`].
    pub fn over(graph: &PropertyGraph) -> Self {
        Traversal {
            graph: graph.clone(),
            start: StartSpec::AllVertices,
            pipeline: Pipeline::new(),
            strategy: ExecutionStrategy::Materialized,
            max_intermediate: None,
            threads: None,
            timeout: None,
            cancel: None,
            vectorize: true,
            chunk: crate::chunk::DEFAULT_CHUNK_SIZE,
            budget: None,
        }
    }

    /// Replaces the start specification wholesale. This is the lowering path
    /// for textual frontends, which produce a [`StartSpec`] directly; the
    /// fluent [`Traversal::v`]/[`Traversal::v_where`] verbs cover the common
    /// cases.
    pub fn start_at(mut self, start: StartSpec) -> Self {
        self.start = start;
        self
    }

    /// Replaces the accumulated steps wholesale with an already-built step
    /// sequence (see [`Pipeline::from_steps`]).
    pub fn with_steps(mut self, steps: Vec<Step>) -> Self {
        self.pipeline = Pipeline::from_steps(steps);
        self
    }

    /// Starts at the named vertices.
    pub fn v<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.start = StartSpec::Named(names.into_iter().map(Into::into).collect());
        self
    }

    /// Starts at every vertex whose property `key` satisfies `pred`.
    pub fn v_where(mut self, key: &str, pred: Predicate) -> Self {
        self.start = StartSpec::Where(key.to_owned(), pred);
        self
    }

    /// Applies an arbitrary [`Pipeline`]-building closure to the traversal's
    /// step sequence.
    pub fn step(mut self, f: impl FnOnce(Pipeline) -> Pipeline) -> Self {
        self.pipeline = f(self.pipeline);
        self
    }

    /// Follows outgoing edges with any of the given labels (empty = any).
    pub fn out<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pipeline = self.pipeline.out(labels);
        self
    }

    /// Follows outgoing edges with any label.
    pub fn out_any(mut self) -> Self {
        self.pipeline = self.pipeline.out_any();
        self
    }

    /// Follows incoming edges with any of the given labels (empty = any).
    pub fn in_<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pipeline = self.pipeline.in_(labels);
        self
    }

    /// Follows incoming edges with any label.
    pub fn in_any(mut self) -> Self {
        self.pipeline = self.pipeline.in_any();
        self
    }

    /// Follows edges in both directions with any of the given labels
    /// (empty = any): the union of [`Traversal::out`] and [`Traversal::in_`]
    /// expansions.
    pub fn both<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pipeline = self.pipeline.both(labels);
        self
    }

    /// Follows edges in both directions with any label.
    pub fn both_any(mut self) -> Self {
        self.pipeline = self.pipeline.both_any();
        self
    }

    /// Traverses outgoing edge sequences whose label word matches a regular
    /// path pattern — the paper's regular-path-query surface. The pattern is
    /// a regex over label names: `·` (or `.`) concatenation, `|` union, `*`,
    /// `+`, `?`, `{n}`, `{min,max}`, `_` for any label, parentheses. Each row
    /// walks edge sequences whose label word is in the pattern's language; a
    /// row is emitted per matching path. Evaluation is bounded to
    /// [`DEFAULT_MATCH_MAX_HOPS`] edges (a `*`/`+` over a cyclic graph
    /// denotes infinitely many walks); use [`Traversal::match_within`] to
    /// choose the bound.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .match_("knows+·created")
    ///     .execute()
    ///     .unwrap();
    /// assert_eq!(r.head_names_sorted(), vec!["lop", "ripple"]);
    /// ```
    pub fn match_(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.match_(pattern);
        self
    }

    /// [`Traversal::match_`] with an explicit bound on the number of edges a
    /// matching walk may take.
    pub fn match_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self.pipeline.match_within(pattern, max_hops);
        self
    }

    /// Traverses *incoming* edge sequences whose label word matches a regular
    /// path pattern: the `In`-direction counterpart of [`Traversal::match_`],
    /// evaluated as a product automaton over the reversed graph — each hop
    /// walks a stored edge backwards, exactly like [`Traversal::in_`].
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// // "people who know someone who created lop" — walked from lop
    /// let r = Traversal::over(&g)
    ///     .v(["lop"])
    ///     .match_in_("created·knows")
    ///     .execute()
    ///     .unwrap();
    /// assert_eq!(r.head_names_sorted(), vec!["marko"]);
    /// ```
    pub fn match_in_(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.match_in_(pattern);
        self
    }

    /// [`Traversal::match_in_`] with an explicit depth bound.
    pub fn match_in_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self.pipeline.match_in_within(pattern, max_hops);
        self
    }

    /// A path pattern with an explicit traversal direction:
    /// `match_dir(Direction::Out, p)` ≡ `match_(p)`,
    /// `match_dir(Direction::In, p)` ≡ `match_in_(p)`. `Direction::Both` is
    /// rejected at plan time (automata are compiled against one adjacency
    /// orientation).
    pub fn match_dir(mut self, direction: Direction, pattern: &str) -> Self {
        self.pipeline = self.pipeline.match_dir(direction, pattern);
        self
    }

    /// [`Traversal::match_dir`] with an explicit depth bound.
    pub fn match_dir_within(
        mut self,
        direction: Direction,
        pattern: &str,
        max_hops: usize,
    ) -> Self {
        self.pipeline = self.pipeline.match_dir_within(direction, pattern, max_hops);
        self
    }

    /// Traverses a path pattern under **reachability semantics**
    /// ([`Semantics::Reachable`]): per input row, the product-automaton
    /// frontier is deduplicated by `(vertex, dfa-state)`, so rows that differ
    /// only in their path collapse to the breadth-first first walk. Because
    /// each pair is expanded at most once, evaluation terminates on cyclic
    /// graphs without a hop bound or `max_intermediate` — this variant is
    /// unbounded (`*`/`+` mean true reachability), unlike [`Traversal::match_`]
    /// which enumerates every walk and must stay depth-bounded.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// // everything transitively reachable from marko, one row per vertex+state
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .match_reachable("_+")
    ///     .execute()
    ///     .unwrap();
    /// assert_eq!(
    ///     r.head_names_sorted(),
    ///     vec!["josh", "lop", "ripple", "vadas"]
    /// );
    /// ```
    pub fn match_reachable(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.match_reachable(pattern);
        self
    }

    /// [`Traversal::match_reachable`] with an explicit depth bound.
    pub fn match_reachable_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self.pipeline.match_reachable_within(pattern, max_hops);
        self
    }

    /// Traverses a path pattern under **global reachability semantics**
    /// ([`Semantics::GlobalReachable`]): like [`Traversal::match_reachable`],
    /// but one `(vertex, dfa-state)` seen-set is shared across *all* input
    /// rows, so each pair is expanded — and emitted — at most once for the
    /// whole step, attributed to the first source (in row order) that
    /// reaches it. The multi-source reachability mode: `n` sources cost one
    /// sweep of the product space instead of `n`.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// // vertices reachable from *any* vertex, each reported exactly once
    /// let r = Traversal::over(&g).match_reachable_global("_+").execute().unwrap();
    /// assert_eq!(
    ///     r.head_names_sorted(),
    ///     vec!["josh", "lop", "ripple", "vadas"]
    /// );
    /// ```
    pub fn match_reachable_global(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.match_reachable_global(pattern);
        self
    }

    /// [`Traversal::match_reachable_global`] with an explicit depth bound.
    pub fn match_reachable_global_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self
            .pipeline
            .match_reachable_global_within(pattern, max_hops);
        self
    }

    /// Best-first **shortest-path** search over a regular path pattern: per
    /// input row, one row per reachable head whose walk matches the pattern,
    /// carrying the minimum-cost path and its cost
    /// ([`crate::ResultRow::weight`]), emitted cheapest-first. Costs are the
    /// tropical min-plus fold of edge weights — unit weights (hop counting)
    /// unless a [`Traversal::weight_by`] variant follows. Evaluation is
    /// Dijkstra over the `(vertex, dfa-state)` product automaton, so it
    /// terminates on cyclic graphs without a hop bound, and a following
    /// [`Traversal::top_k`] expands no more of the product space than the
    /// k-th result requires (optimizer rule R9).
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .cheapest_("knows·created")
    ///     .weight_by("weight")
    ///     .execute()
    ///     .unwrap();
    /// // cheapest matching path per destination, cheapest destination first
    /// assert_eq!(r.head_names(), vec!["lop", "ripple"]);
    /// let w: Vec<f64> = r.weights().into_iter().flatten().collect();
    /// assert!((w[0] - 1.4).abs() < 1e-9); // marko -knows(1.0)-> josh -created(0.4)-> lop
    /// assert!((w[1] - 2.0).abs() < 1e-9);
    /// ```
    pub fn cheapest_(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.cheapest_(pattern);
        self
    }

    /// [`Traversal::cheapest_`] with an explicit bound on the number of
    /// edges a matching walk may take. Bounded search settles per
    /// `(vertex, state, hops)`, so results are optimal *within the bound*.
    pub fn cheapest_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self.pipeline.cheapest_within(pattern, max_hops);
        self
    }

    /// Best-first **widest-path** (bottleneck) search over a pattern: like
    /// [`Traversal::cheapest_`] but under the max-min semiring — a path's
    /// cost is its *narrowest* edge weight, and per head the path maximising
    /// that bottleneck wins, widest head first.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .widest_("knows·created")
    ///     .weight_by("weight")
    ///     .execute()
    ///     .unwrap();
    /// // ripple's route sustains weight 1.0 throughout; lop's best is 0.4
    /// assert_eq!(r.head_names(), vec!["ripple", "lop"]);
    /// ```
    pub fn widest_(mut self, pattern: &str) -> Self {
        self.pipeline = self.pipeline.widest_(pattern);
        self
    }

    /// [`Traversal::widest_`] with an explicit depth bound.
    pub fn widest_within(mut self, pattern: &str, max_hops: usize) -> Self {
        self.pipeline = self.pipeline.widest_within(pattern, max_hops);
        self
    }

    /// Weights the preceding `cheapest_`/`widest_` step by an edge property:
    /// each traversed edge must carry a finite numeric value under `key`
    /// (missing or non-numeric values are a
    /// [`crate::EngineError::BadWeight`] error, and shortest-path search
    /// additionally rejects negative weights). Anywhere else in the pipeline,
    /// `weight_by` is rejected at plan time.
    pub fn weight_by(mut self, key: &str) -> Self {
        self.pipeline = self.pipeline.weight_by(key);
        self
    }

    /// Weights the preceding `cheapest_`/`widest_` step by a per-label
    /// table, resolved at plan time — the "weighted mapping" of
    /// multi-relational analysis: relation types priced by how strongly they
    /// connect.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .cheapest_("(knows|created)+")
    ///     .weight_by_labels([("knows", 1.0), ("created", 10.0)])
    ///     .top_k(2)
    ///     .execute()
    ///     .unwrap();
    /// // the two destinations cheapest under "created is 10x knows"
    /// assert_eq!(r.head_names(), vec!["vadas", "josh"]);
    /// ```
    pub fn weight_by_labels<I, S>(mut self, table: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        self.pipeline = self.pipeline.weight_by_labels(table);
        self
    }

    /// Keeps the first `k` rows of a weighted search. Sugar for
    /// [`Traversal::limit`]: a weighted step emits its rows best-cost-first
    /// **within each input row** (rows stay row-major across input rows), so
    /// with a single start vertex — the common shape for ranking queries —
    /// truncation is exactly top-k, and the optimizer (rule R9) pushes the
    /// cap into the best-first walk, which then settles only as much of the
    /// product space as the k-th result requires. With several start
    /// vertices the kept rows are the first `k` of the per-source streams in
    /// source order, *not* a global cost ranking.
    pub fn top_k(mut self, k: usize) -> Self {
        self.pipeline = self.pipeline.top_k(k);
        self
    }

    /// Repeats a pipeline fragment between `times.start()` and `times.end()`
    /// iterations (bounded Kleene iteration). A row is emitted once per
    /// completed iteration count `k` with `min ≤ k ≤ max` — so
    /// `repeat(n..=n, …)` is classic `times(n)`, and `repeat(0..=n, …)` also
    /// emits the unexpanded input rows. The body must be stateless per row
    /// (no `dedup`/`limit`).
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// // 1 or 2 hops along any label
    /// let r = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .repeat(1..=2, |p| p.out_any())
    ///     .execute()
    ///     .unwrap();
    /// assert!(r.len() > 0);
    /// ```
    pub fn repeat(
        mut self,
        times: RangeInclusive<usize>,
        body: impl FnOnce(Pipeline) -> Pipeline,
    ) -> Self {
        self.pipeline = self.pipeline.repeat(times, body);
        self
    }

    /// Repeats a pipeline fragment until the row's head vertex satisfies
    /// `pred` on property `key` (checked before each iteration, including the
    /// zeroth), for at most `max` iterations. Rows that never satisfy the
    /// predicate are dropped.
    pub fn repeat_until(
        mut self,
        max: usize,
        key: &str,
        pred: Predicate,
        body: impl FnOnce(Pipeline) -> Pipeline,
    ) -> Self {
        self.pipeline = self.pipeline.repeat_until(max, key, pred, body);
        self
    }

    /// Filters on a property of the current vertex.
    pub fn has(mut self, key: &str, pred: Predicate) -> Self {
        self.pipeline = self.pipeline.has(key, pred);
        self
    }

    /// Filters to the named current vertices.
    pub fn is<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pipeline = self.pipeline.is(names);
        self
    }

    /// Deduplicates rows by their current vertex.
    pub fn dedup(mut self) -> Self {
        self.pipeline = self.pipeline.dedup();
        self
    }

    /// Keeps at most `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.pipeline = self.pipeline.limit(n);
        self
    }

    /// Chooses the execution strategy (materialized by default).
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The strategy this traversal will execute under.
    pub fn current_strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// Caps intermediate result sizes; exceeding the cap aborts the traversal.
    pub fn max_intermediate(mut self, cap: usize) -> Self {
        self.max_intermediate = Some(cap);
        self
    }

    /// Forces the parallel strategy's worker thread count (the default is
    /// `available_parallelism`). Useful for tests and benchmarks —
    /// single-core CI machines otherwise silently fall back to the
    /// materialized path — and for pinning resource use in servers. Ignored
    /// by the other strategies.
    pub fn parallel_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Bounds the traversal's wall-clock time: the deadline starts when
    /// execution starts (at [`Traversal::execute`]/[`Traversal::cursor`]
    /// time, not builder time) and an execution that outlives it fails with
    /// [`EngineError::Cancelled`] at its next pull — including
    /// mid-product-automaton-frontier. Cancellation is cooperative and never
    /// poisons the underlying store.
    pub fn timeout(mut self, timeout: std::time::Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a shared [`CancelToken`](crate::CancelToken): cancelling any
    /// clone of the token (e.g. from another thread) makes the executing
    /// traversal fail with [`EngineError::Cancelled`] at its next pull.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, CancelToken, EngineError, Traversal};
    /// let g = classic_social_graph();
    /// let token = CancelToken::new();
    /// let t = Traversal::over(&g).match_("(knows|created)*").cancel_token(&token);
    /// token.cancel();
    /// assert_eq!(t.execute().unwrap_err(), EngineError::Cancelled);
    /// ```
    pub fn cancel_token(mut self, token: &crate::cancel::CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Switches the vectorized execution machinery on or off (on by
    /// default). When on, label-restricted expansions scan the snapshot's
    /// [CSR topology](crate::csr::CsrTopology) instead of probing hash
    /// buckets, and full-drain terminals move [chunks](crate::chunk) of rows
    /// per cursor call. When off, execution takes the original
    /// hashmap-adjacency scalar path — results are identical either way (the
    /// vectorized-equivalence suite pins this); the knob exists for A/B
    /// benchmarks and as a fallback.
    pub fn vectorize(mut self, on: bool) -> Self {
        self.vectorize = on;
        self
    }

    /// Overrides the row-chunk target for full-drain execution (default
    /// [`DEFAULT_CHUNK_SIZE`](crate::chunk::DEFAULT_CHUNK_SIZE)). Mostly a
    /// benchmark/testing knob: 1 degenerates to scalar-sized batches, larger
    /// values trade memory for fewer protocol round trips.
    pub fn chunk_size(mut self, rows: usize) -> Self {
        self.chunk = rows.max(1);
        self
    }

    /// Caps this execution's memory in bytes. Execution charges arena node
    /// growth and buffered-row growth against the budget at the same
    /// layer/pull/batch boundaries cancellation is checked at; crossing the
    /// cap fails the traversal with [`EngineError::MemoryBudget`], suspending
    /// any in-flight frontier cleanly — the cursor fuses and the store stays
    /// fully usable, exactly like a timeout. The parallel strategy splits the
    /// budget evenly across its partitions and consumer. With no budget set
    /// (the default) accounting is skipped entirely.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, EngineError, Traversal};
    /// let g = classic_social_graph();
    /// let err = Traversal::over(&g)
    ///     .match_("(knows|created)*")
    ///     .memory_budget(64)
    ///     .execute()
    ///     .unwrap_err();
    /// assert!(matches!(err, EngineError::MemoryBudget { .. }));
    /// ```
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes.max(1));
        self
    }

    /// The steps accumulated so far (used by the planner and tests).
    pub fn steps(&self) -> &[Step] {
        self.pipeline.steps()
    }

    /// The start specification.
    pub fn start_spec(&self) -> &StartSpec {
        &self.start
    }

    /// Plans, optimizes, and executes the traversal, collecting every row.
    /// [`QueryResult`] is a thin collect of [`Traversal::cursor`]; use the
    /// cursor or the `first`/`exists`/`count` terminals when you do not need
    /// the full row set.
    pub fn execute(&self) -> Result<QueryResult, EngineError> {
        let started = std::time::Instant::now();
        let mut cursor = self.cursor()?;
        let snapshot = cursor.snapshot().clone();
        let mut rows = Vec::new();
        while cursor.next_chunk(&mut rows)? {}
        let stats = cursor.stats();
        record_query_metrics(stats, started.elapsed());
        Ok(QueryResult::new(rows, snapshot, stats))
    }

    /// Executes the traversal with per-stage tracing enabled, returning the
    /// rows (row-for-row identical to [`Traversal::execute`]) together with a
    /// [`QueryTrace`]: one node per optimized-plan op joining the planner's
    /// cardinality estimate with measured actuals (rows in/out, pulls,
    /// chunks, wall time, expansions, arena appends). Tracing uses per-thread
    /// plain counters attached to each cursor stage — partitioned runs sum
    /// them at the partition boundary, and nothing here adds atomics to the
    /// execution hot path.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let profiled = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .match_("knows+·created")
    ///     .profile()
    ///     .unwrap();
    /// let root = &profiled.trace.root;
    /// assert_eq!(root.rows_out as usize, profiled.result.rows().len());
    /// assert!(profiled.trace.total_time_ns > 0);
    /// ```
    pub fn profile(&self) -> Result<ProfiledQuery, EngineError> {
        let started = std::time::Instant::now();
        let snapshot = self.graph.snapshot();
        let report = plan::report(&snapshot, &self.start, self.pipeline.steps())?;
        drop(snapshot);
        let mut cursor = self.cursor_with_profile(true)?;
        let snapshot = cursor.snapshot().clone();
        let mut rows = Vec::new();
        while cursor.next_chunk(&mut rows)? {}
        let stats = cursor.stats();
        let actuals = cursor.op_actuals().unwrap_or_default();
        let elapsed = started.elapsed();
        record_query_metrics(stats, elapsed);
        let trace = QueryTrace::assemble(
            &report,
            &actuals,
            self.strategy,
            stats,
            elapsed.as_nanos() as u64,
        );
        Ok(ProfiledQuery {
            result: QueryResult::new(rows, snapshot, stats),
            trace,
        })
    }

    /// Plans, optimizes, and compiles the traversal into a demand-driven
    /// [`RowCursor`] without executing anything: rows are produced one
    /// `next_row` pull at a time, and work stops as soon as you stop pulling
    /// — a dense `match_` walk is suspended mid-frontier between pulls.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let mut cursor = Traversal::over(&g).v(["marko"]).out_any().cursor().unwrap();
    /// let first = cursor.next_row().unwrap().unwrap();
    /// // only marko's adjacency has been touched so far
    /// assert!(cursor.stats().expansions <= 3);
    /// // RowCursor is also an Iterator over Result<ResultRow, _>
    /// assert_eq!(cursor.count(), 2);
    /// ```
    pub fn cursor(&self) -> Result<RowCursor, EngineError> {
        self.cursor_with_profile(false)
    }

    fn cursor_with_profile(&self, profile: bool) -> Result<RowCursor, EngineError> {
        let snapshot = self.graph.snapshot();
        let naive = plan::plan(&snapshot, &self.start, self.pipeline.steps())?;
        let optimized = plan::optimize(&snapshot, &naive);
        let mut cursor = RowCursor::compile_with_config(
            snapshot,
            optimized,
            self.strategy,
            self.max_intermediate,
            self.threads,
            crate::exec::ExecConfig {
                use_csr: self.vectorize,
                chunk: self.chunk,
                budget: self.budget,
                profile,
            },
        );
        if let Some(timeout) = self.timeout {
            cursor.set_deadline(std::time::Instant::now() + timeout);
        }
        if let Some(token) = &self.cancel {
            cursor.set_cancel_token(token.clone());
        }
        Ok(cursor)
    }

    /// The first result row, or `None` — without enumerating the rest.
    /// Equivalent to `limit(1)` + one cursor pull, so even a dense
    /// `match_("knows+")` on a cyclic graph performs a bounded number of
    /// expansions under every strategy.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let row = Traversal::over(&g)
    ///     .v(["marko"])
    ///     .match_("knows+·created")
    ///     .first()
    ///     .unwrap()
    ///     .expect("marko's friends created software");
    /// assert!(row.path.len() >= 2);
    /// ```
    pub fn first(&self) -> Result<Option<ResultRow>, EngineError> {
        Ok(self.first_with_stats()?.0)
    }

    /// [`Traversal::first`] plus the work counters the probe performed —
    /// lets a caller (e.g. the query server) attribute expansions to a
    /// single request even when no row set is materialised.
    pub fn first_with_stats(&self) -> Result<(Option<ResultRow>, ExecStats), EngineError> {
        let started = std::time::Instant::now();
        // the explicit limit(1) lets the optimizer's R7 rule annotate the
        // automaton, so the batch (materialized) strategy early-exits too
        let mut cursor = self.clone().limit(1).cursor()?;
        let row = cursor.next_row()?;
        let stats = cursor.stats();
        record_query_metrics(stats, started.elapsed());
        Ok((row, stats))
    }

    /// Whether the traversal produces at least one row — `first().is_some()`
    /// without materialising the row.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// assert!(Traversal::over(&g).v(["marko"]).match_("knows+").exists().unwrap());
    /// assert!(!Traversal::over(&g).v(["vadas"]).out(["created"]).exists().unwrap());
    /// ```
    pub fn exists(&self) -> Result<bool, EngineError> {
        Ok(self.exists_with_stats()?.0)
    }

    /// [`Traversal::exists`] plus the work counters the probe performed.
    pub fn exists_with_stats(&self) -> Result<(bool, ExecStats), EngineError> {
        let started = std::time::Instant::now();
        let mut cursor = self.clone().limit(1).cursor()?;
        let found = cursor.advance_row()?;
        let stats = cursor.stats();
        record_query_metrics(stats, started.elapsed());
        Ok((found, stats))
    }

    /// Number of result rows, counted off the cursor without materialising
    /// paths or collecting a row vector.
    ///
    /// ```
    /// use mrpa_engine::{classic_social_graph, Traversal};
    /// let g = classic_social_graph();
    /// let n = Traversal::over(&g).v(["marko"]).out_any().count().unwrap();
    /// assert_eq!(n, 3);
    /// ```
    pub fn count(&self) -> Result<usize, EngineError> {
        Ok(self.count_with_stats()?.0)
    }

    /// [`Traversal::count`] plus the work counters the count performed.
    pub fn count_with_stats(&self) -> Result<(usize, ExecStats), EngineError> {
        let started = std::time::Instant::now();
        let mut cursor = self.cursor()?;
        let mut n = 0usize;
        while cursor.advance_row()? {
            n += 1;
        }
        let stats = cursor.stats();
        record_query_metrics(stats, started.elapsed());
        Ok((n, stats))
    }

    /// Plans the traversal without executing it, returning a structured
    /// [`PlanReport`]: the naive (pre-rewrite) plan, the optimized
    /// (post-rewrite) plan, and per-op cardinality estimates derived from
    /// snapshot label frequencies.
    pub fn explain(&self) -> Result<PlanReport, EngineError> {
        let snapshot = self.graph.snapshot();
        plan::report(&snapshot, &self.start, self.pipeline.steps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::classic_social_graph;
    use crate::value::Value;

    #[test]
    fn builder_accumulates_steps() {
        let g = classic_social_graph();
        let t = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .has("age", Predicate::Gt(30.0))
            .dedup()
            .limit(10);
        assert_eq!(t.steps().len(), 4);
        assert_eq!(t.start_spec(), &StartSpec::Named(vec!["marko".to_owned()]));
    }

    #[test]
    fn pipeline_fragments_build_repeat_bodies() {
        let g = classic_social_graph();
        let t = Traversal::over(&g)
            .v(["marko"])
            .repeat(1..=3, |p| p.out(["knows"]).has("age", Predicate::Gt(0.0)));
        let Step::Repeat {
            body,
            min,
            max,
            until,
        } = &t.steps()[0]
        else {
            panic!("expected a repeat step");
        };
        assert_eq!(body.len(), 2);
        assert_eq!((*min, *max), (1, 3));
        assert!(until.is_none());
    }

    #[test]
    fn quickstart_pipeline_runs() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .out(["created"])
            .execute()
            .unwrap();
        assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
    }

    #[test]
    fn empty_label_list_means_any_label() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v(["marko"])
            .out(Vec::<String>::new())
            .execute()
            .unwrap();
        // marko's out-neighbours over all labels: vadas, josh, lop
        assert_eq!(result.head_names().len(), 3);
    }

    #[test]
    fn where_start_selects_by_property() {
        let g = classic_social_graph();
        let result = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .dedup()
            .execute()
            .unwrap();
        // creators of java software: marko, josh, peter
        assert_eq!(result.head_names_sorted(), vec!["josh", "marko", "peter"]);
    }

    #[test]
    fn explain_reports_pre_and_post_rewrite_plans() {
        let g = classic_social_graph();
        let report = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .has("age", Predicate::Gt(30.0))
            .explain()
            .unwrap();
        assert!(report.before().ops().len() >= 2);
        assert!(!report.before().describe().is_empty());
        assert!(!report.after().describe().is_empty());
        assert_eq!(report.estimates().len(), report.after().ops().len() + 1);
    }

    #[test]
    fn unknown_start_vertex_is_an_error() {
        let g = classic_social_graph();
        let err = Traversal::over(&g).v(["nobody"]).execute();
        assert!(matches!(err, Err(EngineError::UnknownVertex(_))));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let g = classic_social_graph();
        let err = Traversal::over(&g).v(["marko"]).out(["likes"]).execute();
        assert!(matches!(err, Err(EngineError::UnknownLabel(_))));
        let err = Traversal::over(&g).v(["marko"]).match_("likes+").execute();
        assert!(matches!(err, Err(EngineError::UnknownLabel(_))));
    }

    #[test]
    fn bad_patterns_error_at_plan_time() {
        let g = classic_social_graph();
        let err = Traversal::over(&g).v(["marko"]).match_("knows |").execute();
        assert!(matches!(err, Err(EngineError::InvalidPattern(_))));
    }
}
