//! Property values and predicates for the property-graph layer.
//!
//! The paper's algebra is property-free (it models only `V`, `Ω`, and `E`),
//! but the traversal engine it motivates (§I, §V — Gremlin/Neo4j-style
//! engines) operates on *property graphs*. This module supplies the value
//! model: a small dynamically-typed value enum plus predicates used by
//! `has(...)`-style pipeline steps.

use core::fmt;

/// A property value attached to a vertex or an edge.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Numeric view of the value (integers widen to floats); `None` for
    /// booleans and text.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view restricted to *finite* numbers: like
    /// [`Value::as_number`] but `None` for `NaN` and infinities. Weighted
    /// traversals use this so a stored non-finite weight surfaces as an
    /// explicit error instead of poisoning a best-first queue.
    pub fn as_finite_number(&self) -> Option<f64> {
        self.as_number().filter(|n| n.is_finite())
    }

    /// String view of the value; `None` unless it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value; `None` unless it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

/// A predicate over property values, used by `has(key, predicate)` steps.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// The property exists (any value).
    Exists,
    /// The property equals the value.
    Eq(Value),
    /// The property differs from the value.
    Ne(Value),
    /// Numeric comparison: strictly less than.
    Lt(f64),
    /// Numeric comparison: less than or equal.
    Le(f64),
    /// Numeric comparison: strictly greater than.
    Gt(f64),
    /// Numeric comparison: greater than or equal.
    Ge(f64),
    /// Text containment (substring).
    Contains(String),
    /// Value is one of the listed alternatives.
    Within(Vec<Value>),
}

impl Predicate {
    /// Evaluates the predicate against an optional property value (`None`
    /// means the property is absent, which only `Exists`' negation-free
    /// semantics treat as a failure for every predicate).
    pub fn eval(&self, value: Option<&Value>) -> bool {
        let Some(v) = value else {
            return false;
        };
        match self {
            Predicate::Exists => true,
            Predicate::Eq(x) => v == x,
            Predicate::Ne(x) => v != x,
            Predicate::Lt(x) => v.as_number().map(|n| n < *x).unwrap_or(false),
            Predicate::Le(x) => v.as_number().map(|n| n <= *x).unwrap_or(false),
            Predicate::Gt(x) => v.as_number().map(|n| n > *x).unwrap_or(false),
            Predicate::Ge(x) => v.as_number().map(|n| n >= *x).unwrap_or(false),
            Predicate::Contains(s) => v.as_text().map(|t| t.contains(s)).unwrap_or(false),
            Predicate::Within(vs) => vs.contains(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions_and_views() {
        assert_eq!(Value::from(3i64).as_number(), Some(3.0));
        assert_eq!(Value::from(2.5f64).as_number(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_number(), None);
        assert_eq!(Value::from(1i32), Value::Int(1));
        assert_eq!(Value::from(String::from("s")), Value::Text("s".into()));
    }

    #[test]
    fn display_renders_inner_value() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(false).to_string(), "false");
        assert_eq!(Value::from(1.5).to_string(), "1.5");
    }

    #[test]
    fn predicates_on_numbers() {
        let v = Value::from(30i64);
        assert!(Predicate::Eq(Value::Int(30)).eval(Some(&v)));
        assert!(Predicate::Ne(Value::Int(31)).eval(Some(&v)));
        assert!(Predicate::Lt(31.0).eval(Some(&v)));
        assert!(Predicate::Le(30.0).eval(Some(&v)));
        assert!(Predicate::Gt(29.0).eval(Some(&v)));
        assert!(Predicate::Ge(30.0).eval(Some(&v)));
        assert!(!Predicate::Gt(30.0).eval(Some(&v)));
    }

    #[test]
    fn predicates_on_text_and_sets() {
        let v = Value::from("ripple");
        assert!(Predicate::Contains("ipp".into()).eval(Some(&v)));
        assert!(!Predicate::Contains("xyz".into()).eval(Some(&v)));
        assert!(Predicate::Within(vec![Value::from("lop"), Value::from("ripple")]).eval(Some(&v)));
        assert!(!Predicate::Lt(1.0).eval(Some(&v)));
    }

    #[test]
    fn missing_property_fails_every_predicate() {
        assert!(!Predicate::Exists.eval(None));
        assert!(!Predicate::Eq(Value::Int(1)).eval(None));
        assert!(Predicate::Exists.eval(Some(&Value::Bool(false))));
    }
}
