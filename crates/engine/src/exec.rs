//! Executors: evaluating a [`LogicalPlan`] against a [`GraphSnapshot`].
//!
//! Three strategies are provided, all computing the same result set. Rows
//! come out in one canonical order — row-major: each input row's expansions
//! are contiguous, depth-/iteration-ordered within a row — which is what
//! makes `Limit` deterministic across strategies:
//!
//! * [`ExecutionStrategy::Materialized`] — level-at-a-time evaluation that
//!   materialises the full row set after every operation; this is the direct
//!   analogue of evaluating the algebra's join chain on path sets and is the
//!   reference implementation.
//! * [`ExecutionStrategy::Streaming`] — row-at-a-time depth-first evaluation
//!   that never materialises intermediate frontiers (constant memory per
//!   branch) and can stop early under `Limit`. Composite ops
//!   ([`PlanOp::ExpandAutomaton`], [`PlanOp::Repeat`]) are expanded per-row:
//!   a single row's full emission set is computed (these ops are stateless
//!   per row by construction), then streamed onward one at a time — so a
//!   downstream `Limit` cannot cut a composite op's walk short mid-row; use
//!   `max_intermediate` to bound dense automaton expansions.
//! * [`ExecutionStrategy::Parallel`] — partitions the start frontier across
//!   threads (crossbeam scoped threads), evaluates the plan's stateless
//!   prefix (everything before the first `Dedup`/`Limit`) per partition with
//!   the materialized strategy, concatenates the partial results in
//!   partition order, and evaluates the stateful suffix globally — so the
//!   output is row-for-row identical to the materialized strategy.
//!
//! Expansion is **frontier-driven**: each row's next edges come straight from
//! `graph.out_edges(head)` / `out_edges_labeled(head, α)` adjacency (the
//! reversed graph for `In` steps; both graphs for `Both`), and the row's path
//! is a [`PathId`] into a per-execution [`PathArena`] — extending a row is one
//! hash-consed arena append instead of cloning the whole edge vector.
//! [`PlanOp::ExpandAutomaton`] runs the product construction: the frontier
//! carries `(row, dfa-state)` pairs, each hop walks the adjacency index for
//! the labels with transitions out of the current state, and rows landing in
//! accepting states are emitted at every depth up to the spec's bound. Rows
//! are materialised into [`ResultRow`]s only once, at the end.
//!
//! Experiment E8 benchmarks the three against each other and against a
//! hand-written algebra evaluation; `exp_optimizer` benchmarks optimized
//! against naive plans.

use std::collections::HashSet;

use mrpa_core::{Edge, LabelId, PathArena, PathId, VertexId};

use crate::error::EngineError;
use crate::plan::{AutomatonSpec, Direction, LogicalPlan, PlanOp};
use crate::query::{QueryResult, ResultRow};
use crate::store::GraphSnapshot;
use crate::value::Predicate;

/// Which executor evaluates the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Level-at-a-time path-set evaluation (reference implementation).
    Materialized,
    /// Row-at-a-time depth-first evaluation.
    Streaming,
    /// Start-partitioned multi-threaded evaluation.
    Parallel,
}

/// Executes a plan with the chosen strategy.
pub fn execute(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
) -> Result<QueryResult, EngineError> {
    let rows = match strategy {
        ExecutionStrategy::Materialized => {
            materialized(snapshot, plan.start(), plan.ops(), max_intermediate)?
        }
        ExecutionStrategy::Streaming => streaming(snapshot, plan, max_intermediate)?,
        ExecutionStrategy::Parallel => parallel(snapshot, plan, max_intermediate)?,
    };
    Ok(QueryResult::new(rows, snapshot.clone()))
}

/// A result row during evaluation: the path lives in the execution's arena.
#[derive(Debug, Clone, Copy)]
struct ArenaRow {
    source: VertexId,
    path: PathId,
    head: VertexId,
}

fn initial_rows(start: &[VertexId]) -> Vec<ArenaRow> {
    start
        .iter()
        .map(|&v| ArenaRow {
            source: v,
            path: PathId::EPSILON,
            head: v,
        })
        .collect()
}

/// Materialises arena rows into public [`ResultRow`]s (done once, after
/// evaluation).
fn materialise_rows(arena: &PathArena, rows: Vec<ArenaRow>) -> Vec<ResultRow> {
    rows.into_iter()
        .map(|r| ResultRow {
            source: r.source,
            path: arena.to_path(r.path),
            head: r.head,
        })
        .collect()
}

/// Visits the edges leaving `v` in the step's direction, restricted to
/// `labels`. For `Direction::In` the edges come from the reversed graph, so a
/// result edge `(h, α, t)` represents walking the stored edge `(t, α, h)`
/// backwards; the produced paths are joint paths of the reversed graph.
/// `Direction::Both` visits the forward edges first, then the reversed ones.
fn for_each_expansion_edge(
    snapshot: &GraphSnapshot,
    direction: Direction,
    v: VertexId,
    labels: &Option<Vec<LabelId>>,
    mut visit: impl FnMut(&Edge),
) {
    let mut walk = |graph: &mrpa_core::MultiGraph| match labels {
        None => {
            for e in graph.out_edges(v) {
                visit(e);
            }
        }
        Some(ls) => {
            for l in ls {
                for e in graph.out_edges_labeled(v, *l) {
                    visit(e);
                }
            }
        }
    };
    match direction {
        Direction::Out => walk(snapshot.graph()),
        Direction::In => walk(snapshot.reversed()),
        Direction::Both => {
            walk(snapshot.graph());
            walk(snapshot.reversed());
        }
    }
}

fn check_cap(len: usize, cap: Option<usize>) -> Result<(), EngineError> {
    if let Some(cap) = cap {
        if len > cap {
            return Err(EngineError::BoundExceeded {
                bound: cap,
                what: "intermediate row count",
            });
        }
    }
    Ok(())
}

fn in_set(set: &Option<HashSet<VertexId>>, v: VertexId) -> bool {
    set.as_ref().map(|s| s.contains(&v)).unwrap_or(true)
}

fn eval_until(snapshot: &GraphSnapshot, until: &(String, Predicate), v: VertexId) -> bool {
    until.1.eval(snapshot.vertex_property(v, &until.0))
}

/// Applies one plan op to a materialised row set (level-at-a-time). Also used
/// by the streaming executor to expand composite ops for a single row.
fn apply_op(
    snapshot: &GraphSnapshot,
    arena: &PathArena,
    rows: Vec<ArenaRow>,
    op: &PlanOp,
    cap: Option<usize>,
) -> Result<Vec<ArenaRow>, EngineError> {
    Ok(match op {
        PlanOp::Expand {
            direction,
            labels,
            from,
            to,
        } => {
            let mut next = Vec::new();
            // one write-lock acquisition for the whole expansion level
            let mut writer = arena.writer();
            for row in &rows {
                if !in_set(from, row.head) {
                    continue;
                }
                for_each_expansion_edge(snapshot, *direction, row.head, labels, |e| {
                    if !in_set(to, e.head) {
                        return;
                    }
                    next.push(ArenaRow {
                        source: row.source,
                        path: writer.append(row.path, *e),
                        head: e.head,
                    });
                });
            }
            next
        }
        PlanOp::ExpandAutomaton { spec, from, to } => {
            expand_automaton(snapshot, arena, rows, spec, from, to, cap)?
        }
        PlanOp::Repeat {
            body,
            min,
            max,
            until,
        } => {
            // evaluated per input row so emissions are row-major (each input
            // row's emissions contiguous, iteration count ascending within a
            // row) — the canonical order all three strategies share
            let mut emitted: Vec<ArenaRow> = Vec::new();
            for row in rows {
                let mut frontier = vec![row];
                for k in 0..=*max {
                    match until {
                        Some(cond) if k >= *min => {
                            let mut stay = Vec::with_capacity(frontier.len());
                            for row in frontier {
                                if eval_until(snapshot, cond, row.head) {
                                    emitted.push(row);
                                } else {
                                    stay.push(row);
                                }
                            }
                            frontier = stay;
                        }
                        Some(_) => {}
                        None => {
                            if k >= *min {
                                emitted.extend(frontier.iter().copied());
                            }
                        }
                    }
                    if k == *max || frontier.is_empty() {
                        break;
                    }
                    frontier = apply_ops(snapshot, arena, frontier, body, cap)?;
                    check_cap(frontier.len() + emitted.len(), cap)?;
                }
            }
            emitted
        }
        PlanOp::RestrictVertices(vs) => rows.into_iter().filter(|r| vs.contains(&r.head)).collect(),
        PlanOp::RestrictProperty { key, predicate } => rows
            .into_iter()
            .filter(|r| predicate.eval(snapshot.vertex_property(r.head, key)))
            .collect(),
        PlanOp::DedupByVertex => {
            let mut seen = HashSet::new();
            rows.into_iter().filter(|r| seen.insert(r.head)).collect()
        }
        PlanOp::Limit(n) => {
            let mut rows = rows;
            rows.truncate(*n);
            rows
        }
    })
}

fn apply_ops(
    snapshot: &GraphSnapshot,
    arena: &PathArena,
    mut rows: Vec<ArenaRow>,
    ops: &[PlanOp],
    cap: Option<usize>,
) -> Result<Vec<ArenaRow>, EngineError> {
    for op in ops {
        rows = apply_op(snapshot, arena, rows, op, cap)?;
        check_cap(rows.len(), cap)?;
    }
    Ok(rows)
}

/// Product-automaton expansion: per input row, a breadth-first walk over
/// `(row, dfa-state)` pairs; every hop consumes one edge whose label has a
/// transition out of the row's current state, and rows in accepting states
/// are emitted at each depth (including depth 0 when the automaton is
/// nullable). Evaluated row by row so emissions are row-major (each input
/// row's emissions contiguous, depth-ordered within a row) — the canonical
/// order all three strategies share.
fn expand_automaton(
    snapshot: &GraphSnapshot,
    arena: &PathArena,
    rows: Vec<ArenaRow>,
    spec: &AutomatonSpec,
    from: &Option<HashSet<VertexId>>,
    to: &Option<HashSet<VertexId>>,
    cap: Option<usize>,
) -> Result<Vec<ArenaRow>, EngineError> {
    let mut emitted: Vec<ArenaRow> = Vec::new();
    let start = spec.start_state();
    let start_accepts = spec.is_accept(start);
    let graph = match spec.direction() {
        Direction::Out => snapshot.graph(),
        Direction::In => snapshot.reversed(),
        Direction::Both => unreachable!("automaton specs are compiled Out or In, never Both"),
    };
    let mut writer = arena.writer();
    for row in rows {
        if !in_set(from, row.head) {
            continue;
        }
        if start_accepts && in_set(to, row.head) {
            emitted.push(row);
        }
        let mut frontier: Vec<(ArenaRow, usize)> = vec![(row, start)];
        for hop in 1..=spec.max_hops() {
            if frontier.is_empty() {
                break;
            }
            let mut next: Vec<(ArenaRow, usize)> = Vec::new();
            for (row, state) in &frontier {
                for &(label, target) in spec.moves(*state) {
                    // a row only joins the next frontier if it can still make
                    // progress: there are hops left and the target state moves
                    let survives = hop < spec.max_hops() && !spec.moves(target).is_empty();
                    let accepts = spec.is_accept(target);
                    for e in graph.out_edges_labeled(row.head, label) {
                        let produced = ArenaRow {
                            source: row.source,
                            path: writer.append(row.path, *e),
                            head: e.head,
                        };
                        if accepts && in_set(to, e.head) {
                            emitted.push(produced);
                        }
                        if survives {
                            next.push((produced, target));
                        }
                    }
                }
            }
            frontier = next;
            check_cap(frontier.len() + emitted.len(), cap)?;
        }
    }
    drop(writer);
    Ok(emitted)
}

/// Level-at-a-time evaluation: frontier rows expand through the adjacency
/// indexes, and each produced row is one arena append.
fn materialized(
    snapshot: &GraphSnapshot,
    start: &[VertexId],
    ops: &[PlanOp],
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    let arena = PathArena::new();
    let rows = initial_rows(start);
    check_cap(rows.len(), cap)?;
    let rows = apply_ops(snapshot, &arena, rows, ops, cap)?;
    Ok(materialise_rows(&arena, rows))
}

/// Row-at-a-time depth-first evaluation.
///
/// `Dedup` and `Limit` are inherently global operations, so they are applied
/// as the rows stream out of the recursion (first-come order). Composite ops
/// (`ExpandAutomaton`, `Repeat`) are stateless per row; each row's emission
/// set is computed via the materialized helper and streamed onward.
fn streaming(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    struct Ctx<'a> {
        snapshot: &'a GraphSnapshot,
        arena: PathArena,
        ops: &'a [PlanOp],
        out: Vec<ArenaRow>,
        dedup_seen: Vec<HashSet<VertexId>>,
        limit_counts: Vec<usize>,
        cap: Option<usize>,
        produced: usize,
    }

    fn emit(ctx: &mut Ctx<'_>, row: ArenaRow, op_index: usize) -> Result<(), EngineError> {
        ctx.produced += 1;
        if let Some(cap) = ctx.cap {
            if ctx.produced > cap.saturating_mul(ctx.ops.len().max(1) * 4).max(cap) {
                // streaming produces rows one at a time; the cap guards
                // against runaway traversals rather than memory use
                return Err(EngineError::BoundExceeded {
                    bound: cap,
                    what: "streamed row count",
                });
            }
        }
        if op_index == ctx.ops.len() {
            ctx.out.push(row);
            return Ok(());
        }
        let op = &ctx.ops[op_index];
        match op {
            PlanOp::Expand {
                direction,
                labels,
                from,
                to,
            } => {
                if !in_set(from, row.head) {
                    return Ok(());
                }
                // collect this row's expansions under one lock acquisition,
                // then recurse depth-first with the lock released
                let mut expansions: Vec<ArenaRow> = Vec::new();
                {
                    let mut writer = ctx.arena.writer();
                    for_each_expansion_edge(ctx.snapshot, *direction, row.head, labels, |e| {
                        if !in_set(to, e.head) {
                            return;
                        }
                        expansions.push(ArenaRow {
                            source: row.source,
                            path: writer.append(row.path, *e),
                            head: e.head,
                        });
                    });
                }
                for next in expansions {
                    emit(ctx, next, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::ExpandAutomaton { .. } | PlanOp::Repeat { .. } => {
                // stateless per row: expand this row's emissions level-at-a-
                // time, then stream each produced row onward
                let produced = apply_op(ctx.snapshot, &ctx.arena, vec![row], op, ctx.cap)?;
                for next in produced {
                    emit(ctx, next, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::RestrictVertices(vs) => {
                if vs.contains(&row.head) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::RestrictProperty { key, predicate } => {
                if predicate.eval(ctx.snapshot.vertex_property(row.head, key)) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::DedupByVertex => {
                if ctx.dedup_seen[op_index].insert(row.head) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::Limit(n) => {
                if ctx.limit_counts[op_index] < *n {
                    ctx.limit_counts[op_index] += 1;
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
        }
    }

    let ops = plan.ops();
    let mut ctx = Ctx {
        snapshot,
        arena: PathArena::new(),
        ops,
        out: Vec::new(),
        dedup_seen: vec![HashSet::new(); ops.len()],
        limit_counts: vec![0; ops.len()],
        cap,
        produced: 0,
    };
    for row in initial_rows(plan.start()) {
        emit(&mut ctx, row, 0)?;
    }
    Ok(materialise_rows(&ctx.arena, ctx.out))
}

/// Start-partitioned parallel evaluation.
///
/// The plan is split at the first *stateful* op (`Dedup`/`Limit` — only ever
/// top-level; repeat bodies are validated stateless at plan time). The
/// stateless prefix distributes over rows, so each partition evaluates it
/// with the materialized strategy; the partial results are concatenated in
/// partition order (row-major order is preserved, because stateless ops map
/// each input row to a contiguous run of output rows) and the remaining
/// suffix is then evaluated globally, single-threaded. The result is
/// row-for-row identical to the materialized strategy. A plan that *starts*
/// with a stateful op has no parallelizable prefix and falls back to
/// materialized outright.
fn parallel(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    parallel_with_threads(snapshot, plan, cap, threads)
}

fn parallel_with_threads(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
    threads: usize,
) -> Result<Vec<ResultRow>, EngineError> {
    let start = plan.start();
    let ops = plan.ops();
    let split = ops
        .iter()
        .position(|op| matches!(op, PlanOp::DedupByVertex | PlanOp::Limit(_)))
        .unwrap_or(ops.len());
    let (prefix, suffix) = ops.split_at(split);
    let threads = threads.min(start.len().max(1));
    if threads <= 1 || start.len() <= 1 || prefix.is_empty() {
        return materialized(snapshot, start, ops, cap);
    }
    let chunk_size = start.len().div_ceil(threads);
    let chunks: Vec<&[VertexId]> = start.chunks(chunk_size).collect();

    let results: Vec<Result<Vec<ResultRow>, EngineError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move |_| materialized(snapshot, chunk, prefix, cap)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor thread panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut merged = Vec::new();
    for r in results {
        merged.extend(r?);
    }
    check_cap(merged.len(), cap)?;
    if suffix.is_empty() {
        return Ok(merged);
    }
    // evaluate the stateful suffix globally: re-intern the merged rows into a
    // fresh arena and continue level-at-a-time
    let arena = PathArena::new();
    let rows: Vec<ArenaRow> = merged
        .into_iter()
        .map(|r| ArenaRow {
            source: r.source,
            path: arena.intern(&r.path),
            head: r.head,
        })
        .collect();
    let rows = apply_ops(snapshot, &arena, rows, suffix, cap)?;
    Ok(materialise_rows(&arena, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Traversal;
    use crate::store::classic_social_graph;
    use crate::value::{Predicate, Value};

    fn head_set(result: &QueryResult) -> Vec<String> {
        result.head_names()
    }

    fn all_strategies(base: &Traversal) -> (QueryResult, QueryResult, QueryResult) {
        let m = base
            .clone()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let s = base
            .clone()
            .strategy(ExecutionStrategy::Streaming)
            .execute()
            .unwrap();
        let p = base
            .clone()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        (m, s, p)
    }

    #[test]
    fn strategies_agree_on_simple_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .out(["created"]);
        let (m, s, p) = all_strategies(&base);
        assert_eq!(head_set(&m), head_set(&s));
        assert_eq!(head_set(&m), head_set(&p));
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn strategies_agree_on_complex_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v_where("kind", Predicate::Eq(Value::from("software")))
            .in_(["created"])
            .has("age", Predicate::Ge(30.0))
            .out(["created"])
            .dedup();
        let (m, s, p) = all_strategies(&base);
        let mut mh = m.distinct_heads();
        let mut sh = s.distinct_heads();
        let mut ph = p.distinct_heads();
        mh.sort();
        sh.sort();
        ph.sort();
        assert_eq!(mh, sh);
        assert_eq!(mh, ph);
        assert!(!m.is_empty());
    }

    #[test]
    fn in_steps_walk_edges_backwards() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["lop"])
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names_sorted(), vec!["josh", "marko", "peter"]);
    }

    #[test]
    fn both_steps_union_out_and_in_edges() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).v(["josh"]).both(["created", "knows"]);
        let (m, s, p) = all_strategies(&base);
        // josh: created→{ripple, lop} (out), knows→{marko} (in)
        assert_eq!(m.head_names_sorted(), vec!["lop", "marko", "ripple"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn match_runs_the_product_automaton_under_all_strategies() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).v(["marko"]).match_("knows+·created");
        let (m, s, p) = all_strategies(&base);
        assert_eq!(m.head_names_sorted(), vec!["lop", "ripple"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
        // every matching path is knowsᵏ·created for some k ≥ 1
        for row in m.rows() {
            assert!(row.path.len() >= 2);
        }
    }

    #[test]
    fn match_with_nullable_pattern_emits_epsilon_rows() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .match_("knows*")
            .execute()
            .unwrap();
        // ε (marko itself) + knows-paths to vadas and josh
        assert_eq!(r.head_names_sorted(), vec!["josh", "marko", "vadas"]);
        assert!(r.rows().iter().any(|row| row.path.is_empty()));
    }

    #[test]
    fn repeat_emits_union_over_the_iteration_range() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v(["marko"])
            .repeat(1..=2, |p| p.out(["knows"]));
        let (m, s, p) = all_strategies(&base);
        // marko -knows-> {vadas, josh}; no second knows hop exists
        assert_eq!(m.head_names_sorted(), vec!["josh", "vadas"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
        // times(1..=1) and the plain step agree exactly
        let plain = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .execute()
            .unwrap();
        let once = Traversal::over(&g)
            .v(["marko"])
            .repeat(1..=1, |p| p.out(["knows"]))
            .execute()
            .unwrap();
        assert_eq!(plain.paths(), once.paths());
    }

    #[test]
    fn repeat_until_exits_rows_when_the_predicate_holds() {
        let g = classic_social_graph();
        // walk out-edges until reaching software, at most 3 hops
        let r = Traversal::over(&g)
            .v(["marko"])
            .repeat_until(3, "kind", Predicate::Eq(Value::from("software")), |p| {
                p.out_any()
            })
            .execute()
            .unwrap();
        // reachable software from marko: lop (direct), ripple & lop via josh
        assert_eq!(r.head_names_sorted(), vec!["lop", "lop", "ripple"]);
        // a start row that already satisfies the predicate exits at depth 0
        let r = Traversal::over(&g)
            .v(["lop"])
            .repeat_until(3, "kind", Predicate::Eq(Value::from("software")), |p| {
                p.out_any()
            })
            .execute()
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.rows()[0].path.is_empty());
    }

    #[test]
    fn limit_truncates_and_dedup_removes_duplicates() {
        let g = classic_social_graph();
        // every creator of java software, with duplicates (josh created two)
        let all = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(all.len(), 4);
        let deduped = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .dedup()
            .execute()
            .unwrap();
        assert_eq!(deduped.len(), 3);
        let limited = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .limit(2)
            .execute()
            .unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn max_intermediate_cap_aborts_materialized_and_parallel() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).out_any().out_any().max_intermediate(2);
        assert!(matches!(
            base.clone()
                .strategy(ExecutionStrategy::Materialized)
                .execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
        assert!(matches!(
            base.clone().strategy(ExecutionStrategy::Parallel).execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
    }

    #[test]
    fn is_step_restricts_to_named_vertices() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .is(["josh"])
            .out(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names_sorted(), vec!["lop", "ripple"]);
    }

    #[test]
    fn forced_multithread_parallel_matches_materialized_row_for_row() {
        // `available_parallelism` may report 1 core in CI sandboxes, hiding
        // the partitioned path — force it. Mid-plan stateful ops are the
        // regression of interest: a dedup *before* an expansion must not be
        // re-applied to the final rows.
        let g = classic_social_graph();
        let snap = g.snapshot();
        let pipelines: Vec<Traversal> = vec![
            // dedup before expand: 4 created-rows survive (lop ×3, ripple)
            Traversal::over(&g).dedup().out(["created"]),
            // stateful suffix after a parallel prefix
            Traversal::over(&g)
                .out_any()
                .out(["created"])
                .dedup()
                .limit(3),
            // limit sandwiched between expansions
            Traversal::over(&g).out_any().limit(4).out(["created"]),
            // stateless-only plan
            Traversal::over(&g).both_any(),
            // automaton + repeat prefix with stateful tail
            Traversal::over(&g).match_("knows*·created").dedup(),
        ];
        for (i, t) in pipelines.iter().enumerate() {
            let naive = crate::plan::plan(&snap, t.start_spec(), t.steps()).unwrap();
            let optimized = crate::plan::optimize(&snap, &naive);
            let reference = materialized(&snap, naive.start(), naive.ops(), None).unwrap();
            for plan in [&naive, &optimized] {
                for threads in [2, 3, 7] {
                    let rows = parallel_with_threads(&snap, plan, None, threads).unwrap();
                    assert_eq!(rows, reference, "pipeline {i}, {threads} threads");
                }
            }
        }
        // the dedup-before-expand case keeps duplicate final heads
        let r = materialized(
            &snap,
            &snap.graph().vertices().collect::<Vec<_>>(),
            crate::plan::plan(
                &snap,
                Traversal::over(&g).dedup().out(["created"]).start_spec(),
                Traversal::over(&g).dedup().out(["created"]).steps(),
            )
            .unwrap()
            .ops(),
            None,
        )
        .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn parallel_with_single_start_falls_back_to_materialized() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn whole_graph_start_with_parallel_strategy() {
        let g = classic_social_graph();
        let m = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let p = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        // one row per edge in both cases
        assert_eq!(m.len(), 6);
        assert_eq!(p.len(), 6);
        assert_eq!(m.paths(), p.paths());
    }
}
