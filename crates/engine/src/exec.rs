//! Executors: evaluating a [`LogicalPlan`] against a [`GraphSnapshot`].
//!
//! Three strategies are provided, all computing the same result set (row
//! *order* may differ for `Limit`-truncated traversals; everything else is
//! order-insensitive):
//!
//! * [`ExecutionStrategy::Materialized`] — level-at-a-time evaluation that
//!   materialises the full row set after every operation; this is the direct
//!   analogue of evaluating the algebra's join chain on path sets and is the
//!   reference implementation.
//! * [`ExecutionStrategy::Streaming`] — row-at-a-time depth-first evaluation
//!   that never materialises intermediate frontiers (constant memory per
//!   branch) and can stop early under `Limit`.
//! * [`ExecutionStrategy::Parallel`] — partitions the start frontier across
//!   threads (crossbeam scoped threads), evaluates each partition with the
//!   materialized strategy, and concatenates the partial results in partition
//!   order (so the output is deterministic).
//!
//! Expansion is **frontier-driven**: each row's next edges come straight from
//! `graph.out_edges(head)` / `out_edges_labeled(head, α)` adjacency (the
//! reversed graph for `In` steps), and the row's path is a [`PathId`] into a
//! per-execution [`PathArena`] — extending a row is one hash-consed arena
//! append instead of cloning the whole edge vector. Rows are materialised
//! into [`ResultRow`]s only once, at the end.
//!
//! Experiment E8 benchmarks the three against each other and against a
//! hand-written algebra evaluation.

use std::collections::HashSet;

use mrpa_core::{Edge, LabelId, MultiGraph, PathArena, PathId, VertexId};

use crate::error::EngineError;
use crate::plan::{Direction, LogicalPlan, PlanOp};
use crate::query::{QueryResult, ResultRow};
use crate::store::GraphSnapshot;

/// Which executor evaluates the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Level-at-a-time path-set evaluation (reference implementation).
    Materialized,
    /// Row-at-a-time depth-first evaluation.
    Streaming,
    /// Start-partitioned multi-threaded evaluation.
    Parallel,
}

/// Executes a plan with the chosen strategy.
pub fn execute(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
) -> Result<QueryResult, EngineError> {
    let rows = match strategy {
        ExecutionStrategy::Materialized => {
            materialized(snapshot, plan.start(), plan.ops(), max_intermediate)?
        }
        ExecutionStrategy::Streaming => streaming(snapshot, plan, max_intermediate)?,
        ExecutionStrategy::Parallel => parallel(snapshot, plan, max_intermediate)?,
    };
    Ok(QueryResult::new(rows, snapshot.clone()))
}

/// A result row during evaluation: the path lives in the execution's arena.
#[derive(Debug, Clone, Copy)]
struct ArenaRow {
    source: VertexId,
    path: PathId,
    head: VertexId,
}

fn initial_rows(start: &[VertexId]) -> Vec<ArenaRow> {
    start
        .iter()
        .map(|&v| ArenaRow {
            source: v,
            path: PathId::EPSILON,
            head: v,
        })
        .collect()
}

/// Materialises arena rows into public [`ResultRow`]s (done once, after
/// evaluation).
fn materialise_rows(arena: &PathArena, rows: Vec<ArenaRow>) -> Vec<ResultRow> {
    rows.into_iter()
        .map(|r| ResultRow {
            source: r.source,
            path: arena.to_path(r.path),
            head: r.head,
        })
        .collect()
}

/// The edges leaving `v` in the step's direction, restricted to `labels`.
/// For `Direction::In` the edges come from the reversed graph, so a result
/// edge `(h, α, t)` represents walking the stored edge `(t, α, h)` backwards;
/// the produced paths are joint paths of the reversed graph.
fn for_each_expansion_edge(
    graph: &MultiGraph,
    v: VertexId,
    labels: &Option<Vec<LabelId>>,
    mut visit: impl FnMut(&Edge),
) {
    match labels {
        None => {
            for e in graph.out_edges(v) {
                visit(e);
            }
        }
        Some(ls) => {
            for l in ls {
                for e in graph.out_edges_labeled(v, *l) {
                    visit(e);
                }
            }
        }
    }
}

fn direction_graph(snapshot: &GraphSnapshot, direction: Direction) -> &MultiGraph {
    match direction {
        Direction::Out => snapshot.graph(),
        Direction::In => snapshot.reversed(),
    }
}

fn check_cap(len: usize, cap: Option<usize>) -> Result<(), EngineError> {
    if let Some(cap) = cap {
        if len > cap {
            return Err(EngineError::BoundExceeded {
                bound: cap,
                what: "intermediate row count",
            });
        }
    }
    Ok(())
}

/// Level-at-a-time evaluation: frontier rows expand through the adjacency
/// indexes, and each produced row is one arena append.
fn materialized(
    snapshot: &GraphSnapshot,
    start: &[VertexId],
    ops: &[PlanOp],
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    let arena = PathArena::new();
    let mut rows = initial_rows(start);
    check_cap(rows.len(), cap)?;
    for op in ops {
        rows = match op {
            PlanOp::Expand { direction, labels } => {
                let graph = direction_graph(snapshot, *direction);
                let mut next = Vec::new();
                // one write-lock acquisition for the whole expansion level
                let mut writer = arena.writer();
                for row in &rows {
                    for_each_expansion_edge(graph, row.head, labels, |e| {
                        next.push(ArenaRow {
                            source: row.source,
                            path: writer.append(row.path, *e),
                            head: e.head,
                        });
                    });
                }
                drop(writer);
                next
            }
            PlanOp::RestrictVertices(vs) => {
                rows.into_iter().filter(|r| vs.contains(&r.head)).collect()
            }
            PlanOp::RestrictProperty { key, predicate } => rows
                .into_iter()
                .filter(|r| predicate.eval(snapshot.vertex_property(r.head, key)))
                .collect(),
            PlanOp::DedupByVertex => {
                let mut seen = HashSet::new();
                rows.into_iter().filter(|r| seen.insert(r.head)).collect()
            }
            PlanOp::Limit(n) => {
                let mut rows = rows;
                rows.truncate(*n);
                rows
            }
        };
        check_cap(rows.len(), cap)?;
    }
    Ok(materialise_rows(&arena, rows))
}

/// Row-at-a-time depth-first evaluation.
///
/// `Dedup` and `Limit` are inherently global operations, so they are applied
/// as the rows stream out of the recursion (first-come order).
fn streaming(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    struct Ctx<'a> {
        snapshot: &'a GraphSnapshot,
        arena: PathArena,
        ops: &'a [PlanOp],
        out: Vec<ArenaRow>,
        dedup_seen: Vec<HashSet<VertexId>>,
        limit_counts: Vec<usize>,
        cap: Option<usize>,
        produced: usize,
    }

    fn emit(ctx: &mut Ctx<'_>, row: ArenaRow, op_index: usize) -> Result<(), EngineError> {
        ctx.produced += 1;
        if let Some(cap) = ctx.cap {
            if ctx.produced > cap.saturating_mul(ctx.ops.len().max(1) * 4).max(cap) {
                // streaming produces rows one at a time; the cap guards
                // against runaway traversals rather than memory use
                return Err(EngineError::BoundExceeded {
                    bound: cap,
                    what: "streamed row count",
                });
            }
        }
        if op_index == ctx.ops.len() {
            ctx.out.push(row);
            return Ok(());
        }
        match &ctx.ops[op_index] {
            PlanOp::Expand { direction, labels } => {
                let graph = direction_graph(ctx.snapshot, *direction);
                // collect this row's expansions under one lock acquisition,
                // then recurse depth-first with the lock released
                let mut expansions: Vec<ArenaRow> = Vec::new();
                {
                    let mut writer = ctx.arena.writer();
                    for_each_expansion_edge(graph, row.head, labels, |e| {
                        expansions.push(ArenaRow {
                            source: row.source,
                            path: writer.append(row.path, *e),
                            head: e.head,
                        });
                    });
                }
                for next in expansions {
                    emit(ctx, next, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::RestrictVertices(vs) => {
                if vs.contains(&row.head) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::RestrictProperty { key, predicate } => {
                if predicate.eval(ctx.snapshot.vertex_property(row.head, key)) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::DedupByVertex => {
                if ctx.dedup_seen[op_index].insert(row.head) {
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
            PlanOp::Limit(n) => {
                if ctx.limit_counts[op_index] < *n {
                    ctx.limit_counts[op_index] += 1;
                    emit(ctx, row, op_index + 1)?;
                }
                Ok(())
            }
        }
    }

    let ops = plan.ops();
    let mut ctx = Ctx {
        snapshot,
        arena: PathArena::new(),
        ops,
        out: Vec::new(),
        dedup_seen: vec![HashSet::new(); ops.len()],
        limit_counts: vec![0; ops.len()],
        cap,
        produced: 0,
    };
    for row in initial_rows(plan.start()) {
        emit(&mut ctx, row, 0)?;
    }
    Ok(materialise_rows(&ctx.arena, ctx.out))
}

/// Start-partitioned parallel evaluation (materialized per partition).
///
/// Note: global operations (`Dedup`, `Limit`) are applied per partition and
/// then re-applied to the merged result, which preserves the semantics of
/// "the set of rows" (dedup) and "at most n rows" (limit) while keeping the
/// partitions independent.
fn parallel(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
) -> Result<Vec<ResultRow>, EngineError> {
    let start = plan.start();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(start.len().max(1));
    if threads <= 1 || start.len() <= 1 {
        return materialized(snapshot, start, plan.ops(), cap);
    }
    let chunk_size = start.len().div_ceil(threads);
    let chunks: Vec<&[VertexId]> = start.chunks(chunk_size).collect();

    let results: Vec<Result<Vec<ResultRow>, EngineError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move |_| materialized(snapshot, chunk, plan.ops(), cap)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor thread panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut merged = Vec::new();
    for r in results {
        merged.extend(r?);
    }
    // re-apply global operations to the merged rows in plan order
    for op in plan.ops() {
        match op {
            PlanOp::DedupByVertex => {
                let mut seen = HashSet::new();
                merged.retain(|r| seen.insert(r.head));
            }
            PlanOp::Limit(n) => merged.truncate(*n),
            _ => {}
        }
    }
    check_cap(merged.len(), cap)?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Traversal;
    use crate::store::classic_social_graph;
    use crate::value::{Predicate, Value};

    fn head_set(result: &QueryResult) -> Vec<String> {
        result.head_names()
    }

    #[test]
    fn strategies_agree_on_simple_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .out(["created"]);
        let m = base
            .clone()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let s = base
            .clone()
            .strategy(ExecutionStrategy::Streaming)
            .execute()
            .unwrap();
        let p = base
            .clone()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        assert_eq!(head_set(&m), head_set(&s));
        assert_eq!(head_set(&m), head_set(&p));
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn strategies_agree_on_complex_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v_where("kind", Predicate::Eq(Value::from("software")))
            .in_(["created"])
            .has("age", Predicate::Ge(30.0))
            .out(["created"])
            .dedup();
        let m = base
            .clone()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let s = base
            .clone()
            .strategy(ExecutionStrategy::Streaming)
            .execute()
            .unwrap();
        let p = base
            .clone()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        let mut mh = m.distinct_heads();
        let mut sh = s.distinct_heads();
        let mut ph = p.distinct_heads();
        mh.sort();
        sh.sort();
        ph.sort();
        assert_eq!(mh, sh);
        assert_eq!(mh, ph);
        assert!(!m.is_empty());
    }

    #[test]
    fn in_steps_walk_edges_backwards() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["lop"])
            .in_(["created"])
            .execute()
            .unwrap();
        let mut names = r.head_names();
        names.sort();
        assert_eq!(names, vec!["josh", "marko", "peter"]);
    }

    #[test]
    fn limit_truncates_and_dedup_removes_duplicates() {
        let g = classic_social_graph();
        // every creator of java software, with duplicates (josh created two)
        let all = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(all.len(), 4);
        let deduped = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .dedup()
            .execute()
            .unwrap();
        assert_eq!(deduped.len(), 3);
        let limited = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .limit(2)
            .execute()
            .unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn max_intermediate_cap_aborts_materialized_and_parallel() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).out_any().out_any().max_intermediate(2);
        assert!(matches!(
            base.clone()
                .strategy(ExecutionStrategy::Materialized)
                .execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
        assert!(matches!(
            base.clone().strategy(ExecutionStrategy::Parallel).execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
    }

    #[test]
    fn is_step_restricts_to_named_vertices() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .is(["josh"])
            .out(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names(), vec!["lop", "ripple"]);
    }

    #[test]
    fn parallel_with_single_start_falls_back_to_materialized() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn whole_graph_start_with_parallel_strategy() {
        let g = classic_social_graph();
        let m = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let p = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        // one row per edge in both cases
        assert_eq!(m.len(), 6);
        assert_eq!(p.len(), 6);
        assert_eq!(m.paths(), p.paths());
    }
}
