//! Executors: evaluating a [`LogicalPlan`] against a [`GraphSnapshot`].
//!
//! Three strategies are provided, all computing the same result set. Rows
//! come out in one canonical order — row-major: each input row's expansions
//! are contiguous, depth-/iteration-ordered within a row — which is what
//! makes `Limit` deterministic across strategies:
//!
//! * [`ExecutionStrategy::Materialized`] — level-at-a-time evaluation that
//!   materialises the full row set after every operation; this is the direct
//!   analogue of evaluating the algebra's join chain on path sets and is the
//!   reference implementation. Under `limit(k)` it early-exits only through
//!   the optimizer's R7 annotation (the automaton emission cap).
//! * [`ExecutionStrategy::Streaming`] — the demand-driven cursor: every plan
//!   op compiles to a pull-based stage ([`crate::cursor`]), rows flow one at
//!   a time, and a downstream `Limit`/`first()` propagates
//!   `ControlFlow::Break` upstream — including suspending an in-flight
//!   `(vertex, dfa-state)` product-automaton frontier mid-layer and dropping
//!   it without finishing the walk.
//! * [`ExecutionStrategy::Parallel`] — partitions the start frontier across
//!   threads; each partition evaluates the plan's stateless prefix
//!   (everything before the first `Dedup`/`Limit`) through its own cursor,
//!   pulled in growing batches by scoped threads, and the stateful suffix
//!   consumes the batches globally *in partition order* — so the output is
//!   row-for-row identical to the materialized strategy, and an early
//!   `ControlFlow::Break` from the suffix stops all partition cursors with
//!   only their last speculative batch wasted.
//!
//! Expansion is **frontier-driven**: each row's next edges come straight from
//! `graph.out_edges(head)` / `out_edges_labeled(head, α)` adjacency (the
//! reversed graph for `In` steps; both graphs for `Both`), and the row's path
//! is a [`PathId`] into a per-execution [`PathArena`] — extending a row is one
//! hash-consed arena append instead of cloning the whole edge vector.
//! [`PlanOp::ExpandAutomaton`] runs the product construction: the frontier
//! carries `(row, dfa-state)` pairs, each hop walks the adjacency index for
//! the labels with transitions out of the current state, and rows landing in
//! accepting states are emitted at every depth up to the spec's bound
//! (deduplicated by `(vertex, state)` under [`Semantics::Reachable`]). Rows
//! are materialised into [`ResultRow`]s only once, at the cursor boundary.
//!
//! Every execution shares one [`ExecStats`] counter set (exposed through
//! [`QueryResult::stats`] and `RowCursor::stats`), so early-exit claims are
//! assertable: `expansions` counts adjacency entries visited, not wall time.
//!
//! Experiment E8 benchmarks the three against each other and against a
//! hand-written algebra evaluation; `exp_optimizer` benchmarks optimized
//! against naive plans; `exp_streaming` measures time-to-first-row and
//! `limit(1)` early-exit against full materialization.

use std::cell::Cell;
use std::collections::HashSet;

use mrpa_core::{Edge, LabelId, PathArena, PathId, VertexId};

use crate::cancel::Liveness;
use crate::csr::CsrTopology;
use crate::cursor::{AutoWalk, RepeatWalk, RowCursor, SeenSet, WeightedWalk};
use crate::error::EngineError;
use crate::plan::{Direction, LogicalPlan, PlanOp, Semantics};
use crate::query::{QueryResult, ResultRow};
use crate::store::GraphSnapshot;
use crate::trace::OpActuals;
use crate::value::Predicate;

/// Which executor evaluates the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Level-at-a-time path-set evaluation (reference implementation).
    Materialized,
    /// Demand-driven pull-cursor evaluation (row-at-a-time).
    Streaming,
    /// Start-partitioned multi-threaded evaluation over partition cursors.
    Parallel,
}

/// Counters describing how much work an execution (or a cursor so far) did.
///
/// `expansions` counts adjacency entries visited by expansion ops — every
/// edge considered by an `out`/`in_`/`both` step, a product-automaton hop, or
/// a repeat body. It is the measure early-exit guarantees are stated in:
/// `first()` after a dense `match_` performs a *bounded* number of
/// expansions, asserted by counter rather than wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Adjacency entries visited by expansion operations.
    pub expansions: u64,
    /// Arena nodes appended while forwarding rows across the parallel
    /// strategy's partition → suffix boundary. The id-forwarding boundary
    /// appends each distinct partition-arena node at most once, so this is
    /// O(new nodes) for the whole execution — the materialise-and-re-intern
    /// boundary it replaced appended O(path length) nodes *per row*.
    pub interned_nodes: u64,
    /// Bytes charged against the traversal's
    /// [`memory_budget`](crate::Traversal::memory_budget): arena node growth
    /// plus buffered-row growth, accumulated monotonically at the same
    /// layer/pull/batch boundaries cancellation is checked at. Always `0`
    /// when no budget is set — accounting is skipped entirely so the
    /// unbudgeted hot path pays nothing.
    pub bytes_charged: u64,
}

/// Calibrated per-node cost of one hash-consed [`PathArena`] append:
/// the `PathNode` itself (~32 B), its intern-map entry (key + id + load-factor
/// overhead, ~40 B), and its share of transient frontier state (~16 B). Arena
/// nodes are never freed before the execution ends, so node growth is the
/// dominant, monotone component of a query's working set.
pub(crate) const ARENA_NODE_BYTES: u64 = 88;

/// Per-row cost of buffering an [`ArenaRow`] in a frontier, chunk, or
/// materialized level. Row buffers are transient; charging them cumulatively
/// keeps the counter monotone and upper-bounds the true peak.
pub(crate) const ROW_BYTES: u64 = std::mem::size_of::<ArenaRow>() as u64;

/// Mutable work counters. Deliberately *not* atomic: counting happens on
/// every visited edge, so it must be a plain increment. Each `Counters`
/// instance is only ever touched by one thread — the parallel strategy gives
/// every partition its own instance (moved into the worker via
/// `&mut Partition`) and sums them in `RowCursor::stats`.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) expansions: Cell<u64>,
    pub(crate) interned_nodes: Cell<u64>,
    /// Bytes charged against the memory budget (see
    /// [`ExecStats::bytes_charged`]). Plain cells like the other counters:
    /// each instance is single-threaded, partitions own their own.
    pub(crate) bytes: Cell<u64>,
    /// High-water arena node count already charged, so each charge site pays
    /// only the delta since the last one (all sites touching the same arena
    /// share this mark through the shared `Counters`).
    pub(crate) arena_mark: Cell<usize>,
}

impl Counters {
    pub(crate) fn stats(&self) -> ExecStats {
        ExecStats {
            expansions: self.expansions.get(),
            interned_nodes: self.interned_nodes.get(),
            bytes_charged: self.bytes.get(),
        }
    }
}

/// Compile-time execution knobs threaded from the traversal surface
/// (`Traversal::vectorize` / `Traversal::chunk_size`) into the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExecConfig {
    /// Read per-label adjacency from the per-generation CSR (default: on).
    pub(crate) use_csr: bool,
    /// Target rows per chunked pull on full drains (default:
    /// [`crate::chunk::DEFAULT_CHUNK_SIZE`]).
    pub(crate) chunk: usize,
    /// Record per-stage execution traces (`Traversal::profile`; default:
    /// off). When off, the per-pull residual cost is one branch.
    pub(crate) profile: bool,
    /// Per-query memory budget in bytes (`Traversal::memory_budget`;
    /// default: none). The parallel strategy splits it evenly across its
    /// accounting domains (each partition plus the suffix/consumer).
    pub(crate) budget: Option<u64>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            use_csr: true,
            chunk: crate::chunk::DEFAULT_CHUNK_SIZE,
            profile: false,
            budget: None,
        }
    }
}

/// Per-execution context threaded through batch evaluation and cursor pulls.
#[derive(Clone, Copy)]
pub(crate) struct ExecCtx<'a> {
    pub(crate) snapshot: &'a GraphSnapshot,
    pub(crate) cap: Option<usize>,
    pub(crate) counters: &'a Counters,
    /// Cancellation/deadline bounds; `None` when the execution is unbounded,
    /// so the hot path pays a single branch.
    pub(crate) alive: Option<&'a Liveness>,
    /// Whether per-label expansion reads the per-generation CSR instead of
    /// the hashmap adjacency (the `Traversal::vectorize` knob; on by
    /// default). Wildcard expansion always stays on the hashmap — the CSR's
    /// label-sorted layout would reorder interleaved insertion order.
    pub(crate) use_csr: bool,
    /// Byte budget for this accounting domain; `None` disables all memory
    /// accounting (the unbudgeted hot path pays one branch per charge site).
    pub(crate) budget: Option<u64>,
}

/// One direction's adjacency source, resolved once per walker invocation so
/// the per-edge loop dispatches on a two-variant enum instead of re-deciding
/// CSR-vs-hashmap (and re-matching the direction) per frontier entry.
#[derive(Clone, Copy)]
pub(crate) enum Adjacency<'a> {
    /// The mutation-friendly hashmap adjacency (forward or reversed graph).
    Map(&'a mrpa_core::MultiGraph),
    /// The frozen per-generation CSR for the same direction.
    Csr(&'a CsrTopology),
}

impl<'a> Adjacency<'a> {
    /// The edges leaving `v` with `label`, in identical order from either
    /// backing store (the CSR build preserves bucket order verbatim).
    #[inline]
    pub(crate) fn labeled(&self, v: VertexId, label: LabelId) -> LabeledEdges<'a> {
        match self {
            Adjacency::Map(graph) => LabeledEdges::Slice(graph.out_edges_labeled(v, label).iter()),
            Adjacency::Csr(csr) => LabeledEdges::Csr {
                tail: v,
                label,
                heads: csr.labeled(v, label).iter(),
            },
        }
    }
}

/// Iterator over one `(vertex, label)` adjacency bucket, yielding [`Edge`]s
/// by value; the CSR variant materializes them from the head array.
pub(crate) enum LabeledEdges<'a> {
    /// Hashmap-bucket slice.
    Slice(std::slice::Iter<'a, Edge>),
    /// CSR label segment: a contiguous head scan plus the fixed tail/label.
    Csr {
        tail: VertexId,
        label: LabelId,
        heads: std::slice::Iter<'a, VertexId>,
    },
}

impl Iterator for LabeledEdges<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        match self {
            LabeledEdges::Slice(it) => it.next().copied(),
            LabeledEdges::Csr { tail, label, heads } => {
                heads.next().map(|&head| Edge::new(*tail, *label, head))
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            LabeledEdges::Slice(it) => it.size_hint(),
            LabeledEdges::Csr { heads, .. } => heads.size_hint(),
        }
    }
}

impl<'a> ExecCtx<'a> {
    /// Resolves the adjacency source for `direction` (never `Both`; the
    /// automaton walkers are compiled `Out` or `In`): the CSR when
    /// vectorization is on, the hashmap graph otherwise.
    #[inline]
    pub(crate) fn adjacency(&self, direction: Direction) -> Adjacency<'a> {
        match (direction, self.use_csr) {
            (Direction::Out, true) => Adjacency::Csr(self.snapshot.csr_out()),
            (Direction::Out, false) => Adjacency::Map(self.snapshot.graph()),
            (Direction::In, true) => Adjacency::Csr(self.snapshot.csr_in()),
            (Direction::In, false) => Adjacency::Map(self.snapshot.reversed()),
            (Direction::Both, _) => {
                unreachable!("adjacency sources are resolved per single direction")
            }
        }
    }
}

impl ExecCtx<'_> {
    #[inline]
    pub(crate) fn count_expansion(&self) {
        self.counters
            .expansions
            .set(self.counters.expansions.get() + 1);
    }

    #[inline]
    pub(crate) fn count_interned(&self, n: usize) {
        self.counters
            .interned_nodes
            .set(self.counters.interned_nodes.get() + n as u64);
    }

    /// Errors with [`EngineError::Cancelled`] if this execution's token fired
    /// or its deadline passed. Checked on every cursor pull and every walker
    /// advance, so dense frontiers die mid-layer.
    #[inline]
    pub(crate) fn ensure_alive(&self) -> Result<(), EngineError> {
        match self.alive {
            Some(alive) => alive.check(),
            None => Ok(()),
        }
    }

    /// Whether memory accounting is active. Charge sites guard on this so an
    /// unbudgeted execution pays exactly one predictable branch and never
    /// reads arena node counts.
    #[inline]
    pub(crate) fn budgeted(&self) -> bool {
        self.budget.is_some()
    }

    /// Charges `bytes` against the budget, erroring with
    /// [`EngineError::MemoryBudget`] once the cumulative charge crosses the
    /// limit. Like cancellation, the error propagates out of whatever
    /// layer/pull/batch was in flight, fusing the cursor without poisoning
    /// the store.
    #[inline]
    pub(crate) fn charge_bytes(&self, bytes: u64) -> Result<(), EngineError> {
        let Some(limit) = self.budget else {
            return Ok(());
        };
        let charged = self.counters.bytes.get() + bytes;
        self.counters.bytes.set(charged);
        if charged > limit {
            return Err(EngineError::MemoryBudget { limit, charged });
        }
        Ok(())
    }

    /// Charges arena growth since the last call: `now_nodes` is the arena's
    /// current node count (read through [`ArenaWriter::node_count`] while a
    /// writer is held — `PathArena::node_count` would deadlock). The
    /// high-water mark lives in the shared [`Counters`], so every site
    /// touching the same arena charges each node exactly once. Callers must
    /// guard with [`ExecCtx::budgeted`].
    ///
    /// [`ArenaWriter::node_count`]: mrpa_core::ArenaWriter::node_count
    #[inline]
    pub(crate) fn charge_arena_growth(&self, now_nodes: usize) -> Result<(), EngineError> {
        let grown = now_nodes.saturating_sub(self.counters.arena_mark.get());
        if grown == 0 {
            return Ok(());
        }
        self.counters.arena_mark.set(now_nodes);
        self.charge_bytes(grown as u64 * ARENA_NODE_BYTES)
    }

    /// Charges buffered-row growth since the caller's local mark (`now_len`
    /// is the buffer's current length; `mark` is per-buffer and owned by the
    /// call site). Callers must guard with [`ExecCtx::budgeted`].
    #[inline]
    pub(crate) fn charge_row_growth(
        &self,
        now_len: usize,
        mark: &mut usize,
    ) -> Result<(), EngineError> {
        let grown = now_len.saturating_sub(*mark);
        if grown == 0 {
            return Ok(());
        }
        *mark = now_len;
        self.charge_bytes(grown as u64 * ROW_BYTES)
    }
}

/// Executes a plan with the chosen strategy.
pub fn execute(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
) -> Result<QueryResult, EngineError> {
    execute_with_threads(snapshot, plan, strategy, max_intermediate, None)
}

/// Executes a plan, optionally forcing the parallel strategy's worker thread
/// count (`None` = `available_parallelism`; ignored by the other
/// strategies). Tests and benchmarks use this to exercise the partitioned
/// path on machines whose `available_parallelism` reports a single core —
/// the snapshot-isolation suite runs it against frozen snapshots while
/// writers churn the live graph.
pub fn execute_with_threads(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    strategy: ExecutionStrategy,
    max_intermediate: Option<usize>,
    threads: Option<usize>,
) -> Result<QueryResult, EngineError> {
    let mut cursor = RowCursor::compile_with_threads(
        snapshot.clone(),
        plan.clone(),
        strategy,
        max_intermediate,
        threads,
    );
    // full drain: move whole chunks per call (scalar fallback where the
    // strategy or plan shape doesn't batch — see `RowCursor::next_chunk`)
    let mut rows = Vec::new();
    while cursor.next_chunk(&mut rows)? {}
    Ok(QueryResult::new(rows, snapshot.clone(), cursor.stats()))
}

/// A result row during evaluation: the path lives in the execution's arena.
/// `weight` is the semiring cost assigned by the most recent weighted op
/// (`None` until one runs); unweighted ops propagate it unchanged.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaRow {
    pub(crate) source: VertexId,
    pub(crate) path: PathId,
    pub(crate) head: VertexId,
    pub(crate) weight: Option<f64>,
}

pub(crate) fn initial_rows(start: &[VertexId]) -> Vec<ArenaRow> {
    start
        .iter()
        .map(|&v| ArenaRow {
            source: v,
            path: PathId::EPSILON,
            head: v,
            weight: None,
        })
        .collect()
}

/// Materialises arena rows into public [`ResultRow`]s (done once, after
/// evaluation).
pub(crate) fn materialise_rows(arena: &PathArena, rows: Vec<ArenaRow>) -> Vec<ResultRow> {
    rows.into_iter()
        .map(|r| ResultRow {
            source: r.source,
            path: arena.to_path(r.path),
            head: r.head,
            weight: r.weight,
        })
        .collect()
}

/// Visits the edges leaving `v` in the step's direction, restricted to
/// `labels`. For `Direction::In` the edges come from the reversed graph, so a
/// result edge `(h, α, t)` represents walking the stored edge `(t, α, h)`
/// backwards; the produced paths are joint paths of the reversed graph.
/// `Direction::Both` visits the forward edges first, then the reversed ones.
pub(crate) fn for_each_expansion_edge(
    ctx: &ExecCtx<'_>,
    direction: Direction,
    v: VertexId,
    labels: &Option<Vec<LabelId>>,
    mut visit: impl FnMut(Edge),
) {
    let mut walk = |dir: Direction| match labels {
        None => {
            // wildcard expansion iterates the whole bucket in insertion
            // order, which interleaves labels — only the hashmap has it
            let graph = match dir {
                Direction::In => ctx.snapshot.reversed(),
                _ => ctx.snapshot.graph(),
            };
            for e in graph.out_edges(v) {
                visit(*e);
            }
        }
        Some(ls) => {
            let adj = ctx.adjacency(dir);
            for &l in ls {
                for e in adj.labeled(v, l) {
                    visit(e);
                }
            }
        }
    };
    match direction {
        Direction::Out => walk(Direction::Out),
        Direction::In => walk(Direction::In),
        Direction::Both => {
            walk(Direction::Out);
            walk(Direction::In);
        }
    }
}

pub(crate) fn check_cap(len: usize, cap: Option<usize>) -> Result<(), EngineError> {
    if let Some(cap) = cap {
        if len > cap {
            return Err(EngineError::BoundExceeded {
                bound: cap,
                what: "intermediate row count",
            });
        }
    }
    Ok(())
}

pub(crate) fn in_set(set: &Option<HashSet<VertexId>>, v: VertexId) -> bool {
    set.as_ref().map(|s| s.contains(&v)).unwrap_or(true)
}

pub(crate) fn eval_until(
    snapshot: &GraphSnapshot,
    until: &(String, Predicate),
    v: VertexId,
) -> bool {
    until.1.eval(snapshot.vertex_property(v, &until.0))
}

/// Applies one plan op to a materialised row set (level-at-a-time). The
/// composite ops drive the same resumable walkers ([`AutoWalk`],
/// [`RepeatWalk`]) the cursor stages use, drained to exhaustion — one
/// implementation, two consumption granularities.
pub(crate) fn apply_op(
    ctx: &ExecCtx<'_>,
    arena: &PathArena,
    rows: Vec<ArenaRow>,
    op: &PlanOp,
) -> Result<Vec<ArenaRow>, EngineError> {
    Ok(match op {
        PlanOp::Expand {
            direction,
            labels,
            from,
            to,
        } => {
            let mut next = Vec::new();
            let mut row_mark = 0usize;
            // one write-lock acquisition for the whole expansion level
            let mut writer = arena.writer();
            for row in &rows {
                ctx.ensure_alive()?;
                if !in_set(from, row.head) {
                    continue;
                }
                for_each_expansion_edge(ctx, *direction, row.head, labels, |e| {
                    ctx.count_expansion();
                    if !in_set(to, e.head) {
                        return;
                    }
                    next.push(ArenaRow {
                        source: row.source,
                        path: writer.append(row.path, e),
                        head: e.head,
                        weight: row.weight,
                    });
                });
                if ctx.budgeted() {
                    ctx.charge_arena_growth(writer.node_count())?;
                    ctx.charge_row_growth(next.len(), &mut row_mark)?;
                }
            }
            next
        }
        PlanOp::ExpandAutomaton {
            spec,
            from,
            to,
            limit,
        } => {
            // product-automaton expansion, row by row so emissions are
            // row-major; `remaining` is the R7 emission cap shared across
            // input rows. One write-lock acquisition for the whole op —
            // dropped around layer rollovers, which hold no writer. Each
            // layer runs through the batch-stepping fast path
            // (`AutoWalk::run_layer`) instead of per-entry dispatch.
            let mut emitted: Vec<ArenaRow> = Vec::new();
            let mut row_mark = 0usize;
            let mut remaining = *limit;
            let mut seen: Option<SeenSet> = match spec.semantics() {
                Semantics::GlobalReachable => Some(SeenSet::default()),
                Semantics::Walks | Semantics::Reachable => None,
            };
            let mut writer = arena.writer();
            for row in rows {
                if matches!(remaining, Some(0)) {
                    break;
                }
                if !in_set(from, row.head) {
                    continue;
                }
                if spec.semantics() == Semantics::Reachable {
                    seen = Some(SeenSet::default());
                }
                let mut walk = AutoWalk::start(spec, to, row, &mut remaining, seen.as_mut());
                walk.drain_pending_into(&mut emitted);
                loop {
                    ctx.ensure_alive()?;
                    if walk.finished() {
                        break;
                    }
                    if walk.needs_roll() {
                        walk.roll(ctx, spec, emitted.len())?;
                    } else {
                        walk.run_layer(
                            ctx,
                            &mut writer,
                            spec,
                            to,
                            &mut remaining,
                            seen.as_mut(),
                            &mut emitted,
                        );
                    }
                    // per-layer budget check: a dense product-automaton
                    // frontier dies mid-walk, exactly like cancellation
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(writer.node_count())?;
                        ctx.charge_row_growth(emitted.len(), &mut row_mark)?;
                    }
                }
            }
            drop(writer);
            emitted
        }
        PlanOp::ExpandWeighted {
            spec,
            semiring,
            weight,
            from,
            to,
            k,
        } => {
            // best-first weighted expansion, row by row (row-major emission
            // order); `remaining` is the R9 top-k cap shared across rows.
            // The walker acquires a short-lived writer per settle, so no
            // lock is held across heap operations.
            let mut emitted: Vec<ArenaRow> = Vec::new();
            let mut row_mark = 0usize;
            let mut remaining = *k;
            for row in rows {
                if matches!(remaining, Some(0)) {
                    break;
                }
                if !in_set(from, row.head) {
                    continue;
                }
                let mut walk = WeightedWalk::start(spec, *semiring, row);
                loop {
                    ctx.ensure_alive()?;
                    walk.drain_pending_into(&mut emitted);
                    if walk.finished() {
                        break;
                    }
                    walk.advance(
                        ctx,
                        arena,
                        spec,
                        *semiring,
                        weight,
                        to,
                        emitted.len(),
                        &mut remaining,
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                        ctx.charge_row_growth(emitted.len(), &mut row_mark)?;
                    }
                }
            }
            emitted
        }
        PlanOp::Repeat {
            body,
            min,
            max,
            until,
        } => {
            // evaluated per input row so emissions are row-major (each input
            // row's emissions contiguous, iteration count ascending within a
            // row) — the canonical order all three strategies share
            let mut emitted: Vec<ArenaRow> = Vec::new();
            let mut row_mark = 0usize;
            for row in rows {
                let mut walk = RepeatWalk::new(row);
                loop {
                    ctx.ensure_alive()?;
                    walk.drain_pending_into(&mut emitted);
                    if walk.finished() {
                        break;
                    }
                    walk.advance(
                        ctx,
                        arena,
                        crate::cursor::RepeatSpec {
                            body,
                            min: *min,
                            max: *max,
                            until: until.as_ref(),
                        },
                        emitted.len(),
                    )?;
                    if ctx.budgeted() {
                        ctx.charge_arena_growth(arena.node_count())?;
                        ctx.charge_row_growth(emitted.len(), &mut row_mark)?;
                    }
                }
            }
            emitted
        }
        PlanOp::RestrictVertices(vs) => rows.into_iter().filter(|r| vs.contains(&r.head)).collect(),
        PlanOp::RestrictProperty { key, predicate } => rows
            .into_iter()
            .filter(|r| predicate.eval(ctx.snapshot.vertex_property(r.head, key)))
            .collect(),
        PlanOp::DedupByVertex => {
            let mut seen = HashSet::new();
            rows.into_iter().filter(|r| seen.insert(r.head)).collect()
        }
        PlanOp::Limit(n) => {
            let mut rows = rows;
            rows.truncate(*n);
            rows
        }
    })
}

pub(crate) fn apply_ops(
    ctx: &ExecCtx<'_>,
    arena: &PathArena,
    mut rows: Vec<ArenaRow>,
    ops: &[PlanOp],
) -> Result<Vec<ArenaRow>, EngineError> {
    let mut row_mark = 0usize;
    for op in ops {
        ctx.ensure_alive()?;
        rows = apply_op(ctx, arena, rows, op)?;
        check_cap(rows.len(), ctx.cap)?;
        if ctx.budgeted() {
            // per-op backstop: filters and any growth the op-internal
            // per-layer checks have not charged yet (no writer is held here)
            ctx.charge_arena_growth(arena.node_count())?;
            ctx.charge_row_growth(rows.len(), &mut row_mark)?;
        }
    }
    Ok(rows)
}

/// Level-at-a-time evaluation: frontier rows expand through the adjacency
/// indexes, and each produced row is one arena append.
pub(crate) fn materialized(
    ctx: &ExecCtx<'_>,
    start: &[VertexId],
    ops: &[PlanOp],
) -> Result<Vec<ResultRow>, EngineError> {
    let arena = PathArena::new();
    let rows = initial_rows(start);
    check_cap(rows.len(), ctx.cap)?;
    let rows = apply_ops(ctx, &arena, rows, ops)?;
    Ok(materialise_rows(&arena, rows))
}

/// [`materialized`], recording per-op actuals for `Traversal::profile`: each
/// op's batch application is timed and its counter deltas captured, so the
/// trace reports `pulls == 1` per op with exclusive (self-only) values. Row
/// results are bit-identical to [`materialized`] — the instrumentation only
/// brackets the existing calls.
pub(crate) fn materialized_traced(
    ctx: &ExecCtx<'_>,
    start: &[VertexId],
    ops: &[PlanOp],
) -> Result<(Vec<ResultRow>, Vec<OpActuals>), EngineError> {
    let arena = PathArena::new();
    let mut rows = initial_rows(start);
    check_cap(rows.len(), ctx.cap)?;
    let mut actuals = Vec::with_capacity(ops.len() + 1);
    actuals.push(OpActuals {
        rows_out: rows.len() as u64,
        pulls: 1,
        ..OpActuals::default()
    });
    for op in ops {
        ctx.ensure_alive()?;
        let before = ctx.counters.stats();
        let started = std::time::Instant::now();
        rows = apply_op(ctx, &arena, rows, op)?;
        let elapsed = started.elapsed().as_nanos() as u64;
        let after = ctx.counters.stats();
        check_cap(rows.len(), ctx.cap)?;
        actuals.push(OpActuals {
            rows_out: rows.len() as u64,
            pulls: 1,
            chunks: 0,
            nanos: elapsed,
            expansions: after.expansions - before.expansions,
            interned: after.interned_nodes - before.interned_nodes,
        });
    }
    Ok((materialise_rows(&arena, rows), actuals))
}

/// Evaluates a plan with the parallel strategy and an explicit thread count
/// (tests force multi-threading because `available_parallelism` may report a
/// single core in CI sandboxes).
#[cfg(test)]
pub(crate) fn parallel_with_threads(
    snapshot: &GraphSnapshot,
    plan: &LogicalPlan,
    cap: Option<usize>,
    threads: usize,
) -> Result<Vec<ResultRow>, EngineError> {
    let mut cursor = RowCursor::compile_parallel(
        snapshot.clone(),
        plan.clone(),
        cap,
        Some(threads),
        ExecConfig::default(),
    );
    let mut rows = Vec::new();
    while let Some(row) = cursor.next_row()? {
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Traversal;
    use crate::store::classic_social_graph;
    use crate::value::{Predicate, Value};

    fn head_set(result: &QueryResult) -> Vec<String> {
        result.head_names()
    }

    fn all_strategies(base: &Traversal) -> (QueryResult, QueryResult, QueryResult) {
        let m = base
            .clone()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let s = base
            .clone()
            .strategy(ExecutionStrategy::Streaming)
            .execute()
            .unwrap();
        let p = base
            .clone()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        (m, s, p)
    }

    #[test]
    fn strategies_agree_on_simple_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .out(["created"]);
        let (m, s, p) = all_strategies(&base);
        assert_eq!(head_set(&m), head_set(&s));
        assert_eq!(head_set(&m), head_set(&p));
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn strategies_agree_on_complex_pipeline() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v_where("kind", Predicate::Eq(Value::from("software")))
            .in_(["created"])
            .has("age", Predicate::Ge(30.0))
            .out(["created"])
            .dedup();
        let (m, s, p) = all_strategies(&base);
        let mut mh = m.distinct_heads();
        let mut sh = s.distinct_heads();
        let mut ph = p.distinct_heads();
        mh.sort();
        sh.sort();
        ph.sort();
        assert_eq!(mh, sh);
        assert_eq!(mh, ph);
        assert!(!m.is_empty());
    }

    #[test]
    fn in_steps_walk_edges_backwards() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["lop"])
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names_sorted(), vec!["josh", "marko", "peter"]);
    }

    #[test]
    fn both_steps_union_out_and_in_edges() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).v(["josh"]).both(["created", "knows"]);
        let (m, s, p) = all_strategies(&base);
        // josh: created→{ripple, lop} (out), knows→{marko} (in)
        assert_eq!(m.head_names_sorted(), vec!["lop", "marko", "ripple"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn match_runs_the_product_automaton_under_all_strategies() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).v(["marko"]).match_("knows+·created");
        let (m, s, p) = all_strategies(&base);
        assert_eq!(m.head_names_sorted(), vec!["lop", "ripple"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
        // every matching path is knowsᵏ·created for some k ≥ 1
        for row in m.rows() {
            assert!(row.path.len() >= 2);
        }
    }

    #[test]
    fn match_with_nullable_pattern_emits_epsilon_rows() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .match_("knows*")
            .execute()
            .unwrap();
        // ε (marko itself) + knows-paths to vadas and josh
        assert_eq!(r.head_names_sorted(), vec!["josh", "marko", "vadas"]);
        assert!(r.rows().iter().any(|row| row.path.is_empty()));
    }

    #[test]
    fn repeat_emits_union_over_the_iteration_range() {
        let g = classic_social_graph();
        let base = Traversal::over(&g)
            .v(["marko"])
            .repeat(1..=2, |p| p.out(["knows"]));
        let (m, s, p) = all_strategies(&base);
        // marko -knows-> {vadas, josh}; no second knows hop exists
        assert_eq!(m.head_names_sorted(), vec!["josh", "vadas"]);
        assert_eq!(m.paths(), s.paths());
        assert_eq!(m.paths(), p.paths());
        // times(1..=1) and the plain step agree exactly
        let plain = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .execute()
            .unwrap();
        let once = Traversal::over(&g)
            .v(["marko"])
            .repeat(1..=1, |p| p.out(["knows"]))
            .execute()
            .unwrap();
        assert_eq!(plain.paths(), once.paths());
    }

    #[test]
    fn repeat_until_exits_rows_when_the_predicate_holds() {
        let g = classic_social_graph();
        // walk out-edges until reaching software, at most 3 hops
        let r = Traversal::over(&g)
            .v(["marko"])
            .repeat_until(3, "kind", Predicate::Eq(Value::from("software")), |p| {
                p.out_any()
            })
            .execute()
            .unwrap();
        // reachable software from marko: lop (direct), ripple & lop via josh
        assert_eq!(r.head_names_sorted(), vec!["lop", "lop", "ripple"]);
        // a start row that already satisfies the predicate exits at depth 0
        let r = Traversal::over(&g)
            .v(["lop"])
            .repeat_until(3, "kind", Predicate::Eq(Value::from("software")), |p| {
                p.out_any()
            })
            .execute()
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.rows()[0].path.is_empty());
    }

    #[test]
    fn limit_truncates_and_dedup_removes_duplicates() {
        let g = classic_social_graph();
        // every creator of java software, with duplicates (josh created two)
        let all = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(all.len(), 4);
        let deduped = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .dedup()
            .execute()
            .unwrap();
        assert_eq!(deduped.len(), 3);
        let limited = Traversal::over(&g)
            .v_where("lang", Predicate::Eq(Value::from("java")))
            .in_(["created"])
            .limit(2)
            .execute()
            .unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn max_intermediate_cap_aborts_materialized_and_parallel() {
        let g = classic_social_graph();
        let base = Traversal::over(&g).out_any().out_any().max_intermediate(2);
        assert!(matches!(
            base.clone()
                .strategy(ExecutionStrategy::Materialized)
                .execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
        assert!(matches!(
            base.clone().strategy(ExecutionStrategy::Parallel).execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
        // the cursor counts per-stage output against the same cap
        assert!(matches!(
            base.clone()
                .strategy(ExecutionStrategy::Streaming)
                .execute(),
            Err(EngineError::BoundExceeded { .. })
        ));
    }

    #[test]
    fn is_step_restricts_to_named_vertices() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .is(["josh"])
            .out(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names_sorted(), vec!["lop", "ripple"]);
    }

    #[test]
    fn forced_multithread_parallel_matches_materialized_row_for_row() {
        // `available_parallelism` may report 1 core in CI sandboxes, hiding
        // the partitioned path — force it. Mid-plan stateful ops are the
        // regression of interest: a dedup *before* an expansion must not be
        // re-applied to the final rows.
        let g = classic_social_graph();
        let snap = g.snapshot();
        let pipelines: Vec<Traversal> = vec![
            // dedup before expand: 4 created-rows survive (lop ×3, ripple)
            Traversal::over(&g).dedup().out(["created"]),
            // stateful suffix after a parallel prefix
            Traversal::over(&g)
                .out_any()
                .out(["created"])
                .dedup()
                .limit(3),
            // limit sandwiched between expansions
            Traversal::over(&g).out_any().limit(4).out(["created"]),
            // stateless-only plan
            Traversal::over(&g).both_any(),
            // automaton + repeat prefix with stateful tail
            Traversal::over(&g).match_("knows*·created").dedup(),
            // a GlobalReachable automaton is stateful across rows: it must
            // land in the global suffix, not the partitioned prefix
            Traversal::over(&g)
                .out_any()
                .match_reachable_global("knows+"),
            // weighted ops are parallel-safe in the prefix (per-row search);
            // the R9 cap is a sound per-partition over-approximation
            Traversal::over(&g)
                .cheapest_("(knows|created)+")
                .weight_by("weight")
                .top_k(3),
        ];
        for (i, t) in pipelines.iter().enumerate() {
            let naive = crate::plan::plan(&snap, t.start_spec(), t.steps()).unwrap();
            let optimized = crate::plan::optimize(&snap, &naive);
            let counters = Counters::default();
            let ctx = ExecCtx {
                snapshot: &snap,
                cap: None,
                counters: &counters,
                alive: None,
                use_csr: true,
                budget: None,
            };
            let reference = materialized(&ctx, naive.start(), naive.ops()).unwrap();
            for plan in [&naive, &optimized] {
                for threads in [2, 3, 7] {
                    let rows = parallel_with_threads(&snap, plan, None, threads).unwrap();
                    assert_eq!(rows, reference, "pipeline {i}, {threads} threads");
                }
            }
        }
        // the dedup-before-expand case keeps duplicate final heads
        let t = Traversal::over(&g).dedup().out(["created"]);
        let plan = crate::plan::plan(&snap, t.start_spec(), t.steps()).unwrap();
        let counters = Counters::default();
        let ctx = ExecCtx {
            snapshot: &snap,
            cap: None,
            counters: &counters,
            alive: None,
            use_csr: true,
            budget: None,
        };
        let r = materialized(&ctx, plan.start(), plan.ops()).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn parallel_with_single_start_falls_back_to_materialized() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn whole_graph_start_with_parallel_strategy() {
        let g = classic_social_graph();
        let m = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Materialized)
            .execute()
            .unwrap();
        let p = Traversal::over(&g)
            .out_any()
            .strategy(ExecutionStrategy::Parallel)
            .execute()
            .unwrap();
        // one row per edge in both cases
        assert_eq!(m.len(), 6);
        assert_eq!(p.len(), 6);
        assert_eq!(m.paths(), p.paths());
    }

    #[test]
    fn execute_reports_expansion_stats() {
        let g = classic_social_graph();
        for strategy in [
            ExecutionStrategy::Materialized,
            ExecutionStrategy::Streaming,
            ExecutionStrategy::Parallel,
        ] {
            let r = Traversal::over(&g)
                .v(["marko"])
                .out_any()
                .strategy(strategy)
                .execute()
                .unwrap();
            // marko has exactly 3 out-edges
            assert_eq!(r.stats().expansions, 3, "{strategy:?}");
        }
    }
}
