//! # mrpa-engine — a multi-relational graph traversal engine
//!
//! The paper's stated purpose is to provide "a set of core operations for
//! constructing a multi-relational graph traversal engine" (§I, §V). This
//! crate is that engine:
//!
//! * [`PropertyGraph`] — a thread-safe multi-relational *property* graph whose
//!   edge structure is exactly the ternary relation `E ⊆ V × Ω × V` of the
//!   algebra, with string-keyed [`Value`] properties on vertices and edges.
//! * [`Traversal`] — a Gremlin-style fluent pipeline DSL
//!   (`.v(["marko"]).out(["knows"]).has("age", Gt(30)).out(["created"])`),
//!   including regular path patterns (`.match_("knows+·created")`), bounded
//!   iteration (`.repeat(1..=3, |p| p.out(["knows"]))`), and bidirectional
//!   steps (`.both([...])`).
//! * [`plan`] — a planner that lowers every pipeline into one algebraic IR
//!   (restricted edge sets combined with concatenative joins, §III; label
//!   regexes become minimized product automata, §IV) and then rewrites it
//!   with an explicit optimizer pass. `Traversal::explain` returns the
//!   pre-/post-rewrite plans plus cardinality estimates.
//! * [`exec`] — three executors over the same logical plan: materialized
//!   (path-set, the reference), streaming (row-at-a-time), and parallel
//!   (start-partitioned, crossbeam scoped threads).
//!
//! ```
//! use mrpa_engine::{classic_social_graph, Predicate, Traversal};
//!
//! let g = classic_social_graph();
//! // "software created by the over-30 people marko knows"
//! let result = Traversal::over(&g)
//!     .v(["marko"])
//!     .out(["knows"])
//!     .has("age", Predicate::Gt(30.0))
//!     .out(["created"])
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
//!
//! // the same reachability, phrased as a regular path query
//! let result = Traversal::over(&g)
//!     .v(["marko"])
//!     .match_("knows+·created")
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod checkpoint;
pub mod chunk;
pub mod csr;
pub mod cursor;
pub mod error;
pub mod exec;
pub mod metrics;
pub mod pipeline;
pub mod plan;
pub mod query;
pub mod recovery;
pub mod store;
pub mod trace;
pub mod value;
pub mod wal;

pub use cancel::CancelToken;
pub use chunk::{RowChunk, DEFAULT_CHUNK_SIZE};
pub use csr::CsrTopology;
pub use cursor::RowCursor;
pub use error::{EngineError, StoreError};
pub use exec::{ExecStats, ExecutionStrategy};
pub use pipeline::{Pipeline, StartSpec, Step, Traversal, WeightSpec};
pub use plan::{
    AutoMove, AutomatonSpec, Direction, LogicalPlan, OpEstimate, PlanOp, PlanReport, Semantics,
    SemiringKind, WeightSource, DEFAULT_MATCH_MAX_HOPS, UNBOUNDED_MATCH_HOPS,
};
pub use query::{QueryResult, ResultRow};
pub use recovery::{RecoveryError, RecoveryReport};
pub use store::{classic_social_graph, GraphSnapshot, PropertyGraph, StoreStats};
pub use trace::{ProfiledQuery, QueryTrace, TraceNode};
pub use value::{Predicate, Value};
pub use wal::{FailPoint, WalOp, WalTail};

/// Convenient glob import: `use mrpa_engine::prelude::*;`.
pub mod prelude {
    pub use crate::cursor::RowCursor;
    pub use crate::exec::{ExecStats, ExecutionStrategy};
    pub use crate::pipeline::{Pipeline, Traversal, WeightSpec};
    pub use crate::plan::{PlanReport, Semantics, SemiringKind};
    pub use crate::query::QueryResult;
    pub use crate::store::{classic_social_graph, GraphSnapshot, PropertyGraph};
    pub use crate::value::{Predicate, Value};
}
