//! The property-graph store underlying the traversal engine.
//!
//! [`PropertyGraph`] is a thread-safe multi-relational property graph: the
//! edge structure is exactly the paper's ternary relation `E ⊆ V × Ω × V`
//! (held in an [`mrpa_core::MultiGraph`]), while vertices and edges may carry
//! string-keyed [`Value`] properties. Reads take a consistent
//! [`GraphSnapshot`] so long-running traversals are not affected by concurrent
//! mutation.
//!
//! # Epochs and copy-on-write snapshots
//!
//! The store holds its state as an `Arc`-shared **generation**
//! ([`GraphSnapshot`] pins one). Taking a snapshot is O(1) — an `Arc` clone
//! and an epoch read, never a copy of the graph, the property maps, or the
//! interner. Mutators go through [`Arc::make_mut`]: while no snapshot of the
//! current generation is alive they mutate in place (zero copies on any
//! build-then-query workload); the first mutation *after* a snapshot was
//! taken pays one O(V+E) deep clone to start a new generation, leaving every
//! outstanding snapshot frozen on the old one. Each mutation bumps the
//! store's epoch, so `snapshot().generation()` identifies the pinned state.
//!
//! The reversed graph (used by `in_`/`both` steps) is a **lazily-built,
//! per-generation cache**: it is constructed at most once per generation, on
//! first use, and never for pure-`Out` workloads. [`PropertyGraph::stats`]
//! exposes counters (`deep_clones`, `reversed_builds`) that make both cost
//! claims assertable in tests and benchmarks.
//!
//! # Durability
//!
//! A store opened with [`PropertyGraph::open`] (or
//! [`PropertyGraph::open_recover`]) is **durable**: every mutation is encoded
//! as a [`WalOp`] and appended to a CRC-checksummed write-ahead log *before*
//! it touches the in-memory generation, [`PropertyGraph::persist`] fsyncs the
//! log, and [`PropertyGraph::checkpoint`] serializes the whole generation to
//! an atomically-installed checkpoint file and truncates the log. Reopening
//! the directory restores the checkpoint and replays the log through the same
//! apply path live mutators use, reconstructing a store structurally
//! identical to the last acknowledged state — down to interner id assignment
//! and adjacency order. See the [`wal`](crate::wal),
//! [`checkpoint`](crate::checkpoint), and [`recovery`](crate::recovery)
//! module docs for formats and crash semantics.
//!
//! Durable mutations can fail (disk, or an armed test
//! [`FailPoint`]), so every mutator has a `try_` form returning
//! `Result<_, StoreError>`. The classic infallible methods delegate to those
//! and are the right choice for in-memory stores, where mutation cannot fail.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use mrpa_core::{Edge, GraphInterner, LabelId, MultiGraph, VertexId};

use crate::checkpoint::{write_checkpoint, CheckpointData};
use crate::csr::CsrTopology;
use crate::error::{EngineError, StoreError};
use crate::recovery::{recover, RecoveryReport};
use crate::value::Value;
use crate::wal::{encode_frame, FailPoint, Wal, WalOp, WAL_FILE};

/// Monotonic counters shared by every generation of one store (cloning a
/// generation keeps the same handle, so the counts are per-`PropertyGraph`).
#[derive(Debug, Default)]
pub(crate) struct StoreMetrics {
    /// Generation deep clones performed by copy-on-write mutators.
    deep_clones: AtomicU64,
    /// Reversed-graph builds (at most one per generation, only on demand).
    reversed_builds: AtomicU64,
    /// CSR topology builds (at most one per generation *per direction*, only
    /// on demand; the In-direction build sits on top of the reversed graph).
    csr_builds: AtomicU64,
    /// WAL records appended (durable stores only).
    wal_records: AtomicU64,
    /// Checkpoints successfully installed.
    checkpoints: AtomicU64,
    /// Bytes written into checkpoint files (summed over installs).
    checkpoint_bytes: AtomicU64,
    /// WAL records replayed by recovery when this store was opened.
    pub(crate) replayed_records: AtomicU64,
    /// Snapshots currently alive (taken or cloned, not yet dropped). Unlike
    /// the monotonic counters above, this is a live gauge.
    live_snapshots: AtomicU64,
}

/// Counters of a [`PropertyGraph`], for asserting the snapshot cost model and
/// the durability behaviour: `deep_clones` counts the O(V+E) generation
/// copies (zero on the unchanged-graph snapshot path), `reversed_builds`
/// counts reversed-graph constructions (at most one per generation, zero for
/// pure-`Out` workloads), and the durability counters (`wal_records`,
/// `checkpoints`, `replayed_records`) let tests and benches assert WAL /
/// checkpoint / recovery activity without inspecting files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The current epoch (bumped by every mutation). On a durable store this
    /// equals the sequence number of the newest WAL-covered mutation.
    pub generation: u64,
    /// O(V+E) copy-on-write generation clones performed so far.
    pub deep_clones: u64,
    /// Reversed-graph builds performed so far.
    pub reversed_builds: u64,
    /// CSR topology builds performed so far (at most one per generation per
    /// direction, zero until a vectorized traversal asks for one).
    pub csr_builds: u64,
    /// Resident bytes of the **current** generation's built CSR caches — a
    /// live gauge recomputed from whichever of the Out/In CSRs exist right
    /// now, so it drops back when a mutation starts a fresh generation.
    pub csr_bytes: u64,
    /// WAL records appended so far (0 for in-memory stores).
    pub wal_records: u64,
    /// WAL fsync (`sync_data`) calls so far — every `persist()` barrier plus
    /// the syncs checkpointing performs internally (0 for in-memory stores).
    pub wal_fsyncs: u64,
    /// Checkpoints successfully installed so far.
    pub checkpoints: u64,
    /// Bytes written into checkpoint files so far (each checkpoint's on-disk
    /// size at install time, summed; 0 until the first checkpoint).
    pub checkpoint_bytes: u64,
    /// WAL records replayed by recovery when this store was opened.
    pub replayed_records: u64,
    /// Snapshots of this store currently alive — every [`GraphSnapshot`]
    /// taken or cloned and not yet dropped pins a generation and counts
    /// here. A live gauge, not a monotonic counter: it falls back to zero
    /// when readers finish. Lets servers report how many readers are pinning
    /// generations right now.
    pub live_snapshots: u64,
}

/// One immutable generation of the store. `Clone` is the copy-on-write deep
/// clone (counted in [`StoreMetrics::deep_clones`]); the lazily-built
/// reversed graph is *not* carried over — a fresh generation rebuilds it on
/// first demand.
#[derive(Debug, Default)]
pub(crate) struct GraphState {
    pub(crate) graph: MultiGraph,
    pub(crate) interner: GraphInterner,
    pub(crate) vertex_props: HashMap<VertexId, HashMap<String, Value>>,
    pub(crate) edge_props: HashMap<Edge, HashMap<String, Value>>,
    /// Per-generation cache of `graph.reversed()`, built at most once. An
    /// `Arc` so that a property-only copy-on-write (which cannot change edge
    /// structure) can carry the built cache into the new generation.
    pub(crate) reversed: OnceLock<Arc<MultiGraph>>,
    /// Per-generation cache of the Out-direction [`CsrTopology`], built at
    /// most once per generation on first vectorized use; same carry/invalidate
    /// discipline as `reversed`.
    pub(crate) csr_out: OnceLock<Arc<CsrTopology>>,
    /// Per-generation cache of the In-direction [`CsrTopology`] — built over
    /// the cached reversed graph, so its segment order matches what scalar
    /// In-walks iterate.
    pub(crate) csr_in: OnceLock<Arc<CsrTopology>>,
    /// Shared across generations of one store (a handle, not data).
    pub(crate) metrics: Arc<StoreMetrics>,
}

impl Clone for GraphState {
    fn clone(&self) -> Self {
        self.metrics.deep_clones.fetch_add(1, Ordering::Relaxed);
        crate::metrics::deep_clones_total().inc();
        GraphState {
            graph: self.graph.clone(),
            interner: self.interner.clone(),
            vertex_props: self.vertex_props.clone(),
            edge_props: self.edge_props.clone(),
            reversed: OnceLock::new(),
            csr_out: OnceLock::new(),
            csr_in: OnceLock::new(),
            metrics: Arc::clone(&self.metrics),
        }
    }
}

impl GraphState {
    /// An empty generation wired to an existing metrics handle.
    pub(crate) fn with_metrics(metrics: Arc<StoreMetrics>) -> Self {
        GraphState {
            metrics,
            ..Default::default()
        }
    }

    /// The reversed graph of this generation, built on first use.
    fn reversed(&self) -> &MultiGraph {
        self.reversed
            .get_or_init(|| {
                self.metrics.reversed_builds.fetch_add(1, Ordering::Relaxed);
                crate::metrics::reversed_builds_total().inc();
                Arc::new(self.graph.reversed())
            })
            .as_ref()
    }

    /// The Out-direction CSR of this generation, built on first use.
    fn csr_out(&self) -> &CsrTopology {
        self.csr_out
            .get_or_init(|| {
                self.metrics.csr_builds.fetch_add(1, Ordering::Relaxed);
                crate::metrics::csr_builds_total().inc();
                Arc::new(CsrTopology::build(&self.graph))
            })
            .as_ref()
    }

    /// The In-direction CSR of this generation, built on first use over the
    /// (likewise lazily cached) reversed graph: the reversed graph's bucket
    /// order is exactly what scalar In-walks iterate, so freezing *it* — and
    /// not the forward `in_label_index`, whose order can diverge after
    /// `swap_remove` deletions — preserves row order bit-for-bit.
    fn csr_in(&self) -> &CsrTopology {
        self.csr_in
            .get_or_init(|| {
                self.metrics.csr_builds.fetch_add(1, Ordering::Relaxed);
                crate::metrics::csr_builds_total().inc();
                Arc::new(CsrTopology::build(self.reversed()))
            })
            .as_ref()
    }

    /// Resident bytes of whichever CSR caches this generation has built —
    /// the live `csr_bytes` gauge.
    fn csr_bytes(&self) -> u64 {
        let out = self.csr_out.get().map_or(0, |c| c.bytes());
        let inn = self.csr_in.get().map_or(0, |c| c.bytes());
        (out + inn) as u64
    }

    /// Applies one logged operation to this generation. This is the **single
    /// mutation path** shared by live mutators and WAL replay: a store
    /// rebuilt by replaying its log is structurally identical to the live
    /// store the log was written by — including interner id assignment
    /// (names re-intern in logged order) and adjacency-bucket order.
    pub(crate) fn apply(&mut self, op: &WalOp) {
        match op {
            WalOp::AddVertex { name } => {
                let v = self.interner.vertex(name);
                self.graph.add_vertex(v);
            }
            WalOp::AddEdge { tail, label, head } => {
                let t = self.interner.vertex(tail);
                let l = self.interner.label(label);
                let h = self.interner.vertex(head);
                self.graph.add_vertex(t);
                self.graph.add_vertex(h);
                self.graph.add_edge(Edge::new(t, l, h));
            }
            WalOp::RemoveEdge { tail, label, head } => {
                let e = Edge::new(*tail, *label, *head);
                self.edge_props.remove(&e);
                self.graph.remove_edge(&e);
            }
            WalOp::RemoveVertex { vertex } => {
                if let Some(removed) = self.graph.remove_vertex(*vertex) {
                    for e in &removed {
                        self.edge_props.remove(e);
                    }
                }
                self.vertex_props.remove(vertex);
            }
            WalOp::SetVertexProp { vertex, key, value } => {
                self.vertex_props
                    .entry(*vertex)
                    .or_default()
                    .insert(key.clone(), value.clone());
            }
            WalOp::SetEdgeProp {
                tail,
                label,
                head,
                key,
                value,
            } => {
                self.edge_props
                    .entry(Edge::new(*tail, *label, *head))
                    .or_default()
                    .insert(key.clone(), value.clone());
            }
        }
    }
}

/// The durability backend of an opened store: the WAL writer, the directory
/// checkpoints go to, and the poison latch a failed append trips.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: Wal,
    /// Set when a WAL append failed: the in-memory generation may be ahead
    /// of (or diverged from) the log, so further mutations are refused until
    /// the store is reopened. Reads and snapshots keep working.
    poisoned: bool,
}

#[derive(Debug, Default)]
struct Inner {
    state: Arc<GraphState>,
    epoch: u64,
    dur: Option<Durability>,
}

impl Inner {
    /// Prepares the current generation for a **structural** mutation: bumps
    /// the epoch and returns exclusive access to the state. If a snapshot
    /// pins the current generation this performs the one copy-on-write deep
    /// clone; otherwise it mutates in place. Either way the reversed-graph
    /// cache is dropped — the edge structure is about to change, so the next
    /// generation rebuilds it on demand.
    fn mutate(&mut self) -> &mut GraphState {
        self.epoch += 1;
        let state = Arc::make_mut(&mut self.state);
        state.reversed.take();
        state.csr_out.take();
        state.csr_in.take();
        state
    }

    /// Prepares the current generation for a **property-only** mutation:
    /// like [`Inner::mutate`], but keeps the reversed-graph cache — property
    /// values cannot change edge structure, so even the copy-on-write path
    /// carries the built cache (an `Arc` clone) into the new generation.
    fn mutate_props(&mut self) -> &mut GraphState {
        self.epoch += 1;
        let carried = self.state.reversed.get().cloned();
        let carried_out = self.state.csr_out.get().cloned();
        let carried_in = self.state.csr_in.get().cloned();
        let state = Arc::make_mut(&mut self.state);
        if let Some(reversed) = carried {
            // no-op on the in-place path (the cache is still set there)
            let _ = state.reversed.set(reversed);
        }
        if let Some(csr) = carried_out {
            let _ = state.csr_out.set(csr);
        }
        if let Some(csr) = carried_in {
            let _ = state.csr_in.set(csr);
        }
        state
    }

    /// Commits one mutation that the caller has already established as
    /// *effective* (it will change state, so the epoch must bump). On a
    /// durable store the op is WAL-appended **first** — its sequence number
    /// is the post-mutation epoch — and only then applied in memory; an
    /// append failure poisons the store and the op is never applied, so
    /// memory never acknowledges what the log did not accept.
    fn commit(&mut self, op: WalOp) -> Result<(), StoreError> {
        if let Some(dur) = self.dur.as_mut() {
            if dur.poisoned {
                return Err(StoreError::Poisoned);
            }
            let mut frame = Vec::new();
            encode_frame(self.epoch + 1, &op, &mut frame);
            if let Err(e) = dur.wal.append_frames(&frame) {
                dur.poisoned = true;
                return Err(e);
            }
            self.state
                .metrics
                .wal_records
                .fetch_add(1, Ordering::Relaxed);
            crate::metrics::wal_records_total().inc();
        }
        let state = if op.is_props_only() {
            self.mutate_props()
        } else {
            self.mutate()
        };
        state.apply(&op);
        Ok(())
    }

    fn durability(&mut self) -> Result<&mut Durability, StoreError> {
        let dur = self.dur.as_mut().ok_or(StoreError::NotDurable)?;
        if dur.poisoned {
            return Err(StoreError::Poisoned);
        }
        Ok(dur)
    }
}

/// A thread-safe multi-relational property graph.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    inner: Arc<RwLock<Inner>>,
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or fetches) a vertex by name. Fetching an existing vertex is a
    /// pure read — it neither bumps the epoch nor triggers a copy-on-write.
    ///
    /// Infallible convenience over [`PropertyGraph::try_add_vertex`]; on a
    /// durable store a WAL failure panics here, so durable writers should
    /// prefer the `try_` form.
    pub fn add_vertex(&self, name: &str) -> VertexId {
        self.try_add_vertex(name).expect("WAL append failed")
    }

    /// Adds (or fetches) a vertex by name, surfacing durability failures.
    pub fn try_add_vertex(&self, name: &str) -> Result<VertexId, StoreError> {
        let mut inner = self.inner.write();
        if let Some(v) = inner.state.interner.get_vertex(name) {
            if inner.state.graph.contains_vertex(v) {
                return Ok(v);
            }
        }
        inner.commit(WalOp::AddVertex {
            name: name.to_owned(),
        })?;
        Ok(inner
            .state
            .interner
            .get_vertex(name)
            .expect("vertex was just applied"))
    }

    /// Adds a vertex with properties.
    pub fn add_vertex_with(
        &self,
        name: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> VertexId {
        self.try_add_vertex_with(name, props)
            .expect("WAL append failed")
    }

    /// Adds a vertex with properties, surfacing durability failures.
    pub fn try_add_vertex_with(
        &self,
        name: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Result<VertexId, StoreError> {
        let v = self.try_add_vertex(name)?;
        for (k, value) in props {
            self.try_set_vertex_property(v, k, value)?;
        }
        Ok(v)
    }

    /// Adds the edge `(tail, label, head)` by names, creating vertices as
    /// needed. Returns the edge.
    ///
    /// Infallible convenience over [`PropertyGraph::try_add_edge`] (panics on
    /// a durable store's WAL failure).
    pub fn add_edge(&self, tail: &str, label: &str, head: &str) -> Edge {
        self.try_add_edge(tail, label, head)
            .expect("WAL append failed")
    }

    /// Adds the edge `(tail, label, head)` by names, surfacing durability
    /// failures.
    pub fn try_add_edge(&self, tail: &str, label: &str, head: &str) -> Result<Edge, StoreError> {
        let mut inner = self.inner.write();
        // re-adding an existing edge is a pure read: no epoch bump, no COW
        if let (Some(t), Some(l), Some(h)) = (
            inner.state.interner.get_vertex(tail),
            inner.state.interner.get_label(label),
            inner.state.interner.get_vertex(head),
        ) {
            let e = Edge::new(t, l, h);
            if inner.state.graph.contains_edge(&e) {
                return Ok(e);
            }
        }
        inner.commit(WalOp::AddEdge {
            tail: tail.to_owned(),
            label: label.to_owned(),
            head: head.to_owned(),
        })?;
        let interner = &inner.state.interner;
        Ok(Edge::new(
            interner.get_vertex(tail).expect("edge was just applied"),
            interner.get_label(label).expect("edge was just applied"),
            interner.get_vertex(head).expect("edge was just applied"),
        ))
    }

    /// Removes the edge `(tail, label, head)` by names. Returns whether the
    /// edge was present (unknown names simply report `false`).
    pub fn remove_edge(&self, tail: &str, label: &str, head: &str) -> bool {
        self.try_remove_edge(tail, label, head)
            .expect("WAL append failed")
    }

    /// Removes the edge `(tail, label, head)` by names, surfacing durability
    /// failures. `Ok(false)` means the edge (or one of the names) did not
    /// exist — a pure read.
    pub fn try_remove_edge(&self, tail: &str, label: &str, head: &str) -> Result<bool, StoreError> {
        let mut inner = self.inner.write();
        let (Some(t), Some(l), Some(h)) = (
            inner.state.interner.get_vertex(tail),
            inner.state.interner.get_label(label),
            inner.state.interner.get_vertex(head),
        ) else {
            return Ok(false);
        };
        if !inner.state.graph.contains_edge(&Edge::new(t, l, h)) {
            return Ok(false);
        }
        inner.commit(WalOp::RemoveEdge {
            tail: t,
            label: l,
            head: h,
        })?;
        Ok(true)
    }

    /// Removes the vertex `name` together with every incident edge (and all
    /// their properties), in `O(deg)` via the adjacency position maps.
    /// Returns whether the vertex was present. The name stays interned —
    /// re-adding it later reuses the same [`VertexId`].
    pub fn remove_vertex(&self, name: &str) -> bool {
        self.try_remove_vertex(name).expect("WAL append failed")
    }

    /// Removes the vertex `name` and its incident edges, surfacing durability
    /// failures. `Ok(false)` means the vertex did not exist — a pure read.
    pub fn try_remove_vertex(&self, name: &str) -> Result<bool, StoreError> {
        let mut inner = self.inner.write();
        let Some(v) = inner.state.interner.get_vertex(name) else {
            return Ok(false);
        };
        if !inner.state.graph.contains_vertex(v) {
            return Ok(false);
        }
        inner.commit(WalOp::RemoveVertex { vertex: v })?;
        Ok(true)
    }

    /// Adds an edge with properties.
    pub fn add_edge_with(
        &self,
        tail: &str,
        label: &str,
        head: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Edge {
        self.try_add_edge_with(tail, label, head, props)
            .expect("WAL append failed")
    }

    /// Adds an edge with properties, surfacing durability failures.
    pub fn try_add_edge_with(
        &self,
        tail: &str,
        label: &str,
        head: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Result<Edge, StoreError> {
        let e = self.try_add_edge(tail, label, head)?;
        for (k, value) in props {
            self.try_set_edge_property(e, k, value)?;
        }
        Ok(e)
    }

    /// Sets a vertex property. Property writes are copy-on-write like every
    /// mutation, but — since properties cannot change edge structure — they
    /// always keep the generation's reversed-graph cache, on both the
    /// in-place and the COW path.
    pub fn set_vertex_property(&self, v: VertexId, key: &str, value: Value) {
        self.try_set_vertex_property(v, key, value)
            .expect("WAL append failed")
    }

    /// Sets a vertex property, surfacing durability failures.
    pub fn try_set_vertex_property(
        &self,
        v: VertexId,
        key: &str,
        value: Value,
    ) -> Result<(), StoreError> {
        self.inner.write().commit(WalOp::SetVertexProp {
            vertex: v,
            key: key.to_owned(),
            value,
        })
    }

    /// Sets an edge property (see [`PropertyGraph::set_vertex_property`] for
    /// the copy-on-write behaviour).
    pub fn set_edge_property(&self, e: Edge, key: &str, value: Value) {
        self.try_set_edge_property(e, key, value)
            .expect("WAL append failed")
    }

    /// Sets an edge property, surfacing durability failures.
    pub fn try_set_edge_property(
        &self,
        e: Edge,
        key: &str,
        value: Value,
    ) -> Result<(), StoreError> {
        self.inner.write().commit(WalOp::SetEdgeProp {
            tail: e.tail,
            label: e.label,
            head: e.head,
            key: key.to_owned(),
            value,
        })
    }

    /// Reads a vertex property.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<Value> {
        self.inner
            .read()
            .state
            .vertex_props
            .get(&v)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Reads an edge property.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<Value> {
        self.inner
            .read()
            .state
            .edge_props
            .get(e)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.inner
            .read()
            .state
            .interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.inner
            .read()
            .state
            .interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// The name of a vertex, if it was added by name.
    pub fn vertex_name(&self, v: VertexId) -> Option<String> {
        self.inner
            .read()
            .state
            .interner
            .vertex_name(v)
            .map(str::to_owned)
    }

    /// The name of a label.
    pub fn label_name(&self, l: LabelId) -> Option<String> {
        self.inner
            .read()
            .state
            .interner
            .label_name(l)
            .map(str::to_owned)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.inner.read().state.graph.vertex_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().state.graph.edge_count()
    }

    /// Takes a consistent snapshot of the graph structure and properties for
    /// traversal evaluation.
    ///
    /// This is **O(1)**: the snapshot pins the current generation by cloning
    /// an `Arc` — no graph, property-map, or interner copy happens here (or
    /// later, unless the graph is mutated while the snapshot is alive; see
    /// the module docs for the copy-on-write cost model). The snapshot is
    /// immutable, cheap to share across threads, and isolated from every
    /// subsequent mutation.
    pub fn snapshot(&self) -> GraphSnapshot {
        let inner = self.inner.read();
        inner
            .state
            .metrics
            .live_snapshots
            .fetch_add(1, Ordering::Relaxed);
        crate::metrics::snapshots_total().inc();
        crate::metrics::live_snapshots_gauge().add(1);
        GraphSnapshot {
            state: Arc::clone(&inner.state),
            epoch: inner.epoch,
        }
    }

    /// Copy-on-write and durability counters: generation deep clones,
    /// reversed-graph builds, WAL appends, checkpoints, and recovery replays
    /// performed by this store so far, plus the current epoch. The counters
    /// make the snapshot cost model and the durability behaviour assertable —
    /// see the module docs and `tests/snapshot_concurrency.rs` /
    /// `tests/durability_recovery.rs`.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.read();
        let m = &inner.state.metrics;
        StoreStats {
            generation: inner.epoch,
            deep_clones: m.deep_clones.load(Ordering::Relaxed),
            reversed_builds: m.reversed_builds.load(Ordering::Relaxed),
            csr_builds: m.csr_builds.load(Ordering::Relaxed),
            csr_bytes: inner.state.csr_bytes(),
            wal_records: m.wal_records.load(Ordering::Relaxed),
            wal_fsyncs: inner.dur.as_ref().map_or(0, |d| d.wal.fsyncs()),
            checkpoints: m.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: m.checkpoint_bytes.load(Ordering::Relaxed),
            replayed_records: m.replayed_records.load(Ordering::Relaxed),
            live_snapshots: m.live_snapshots.load(Ordering::Relaxed),
        }
    }

    // -- durability ---------------------------------------------------------

    /// Opens (creating if needed) a **durable** store rooted at `dir`:
    /// recovery restores the checkpoint (if any) and replays the WAL past it,
    /// and every subsequent mutation is write-ahead logged. This is the
    /// *strict* open — a corrupt WAL tail (acknowledged bytes failing their
    /// checksum or sequence check) is refused with
    /// [`StoreError::Recovery`]; use [`PropertyGraph::open_recover`] to
    /// degrade to clean-prefix replay instead. A *torn* tail (a crash
    /// mid-append) is recovered silently by both.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_impl(dir.as_ref(), true).map(|(store, _)| store)
    }

    /// Opens a durable store rooted at `dir`, recovering as much as possible:
    /// a corrupt WAL tail degrades to clean-prefix replay, with the damage
    /// described in the returned [`RecoveryReport`].
    pub fn open_recover(dir: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_impl(dir.as_ref(), false)
    }

    fn open_impl(dir: &Path, strict: bool) -> Result<(Self, RecoveryReport), StoreError> {
        let started = std::time::Instant::now();
        let metrics = Arc::new(StoreMetrics::default());
        let recovered = recover(dir, strict, Arc::clone(&metrics))?;
        let wal = Wal::open(
            dir.join(WAL_FILE),
            recovered.wal_clean_end,
            crate::wal::FailPlan::new(),
        )?;
        crate::metrics::recovery_latency().observe(started.elapsed());
        let inner = Inner {
            state: Arc::new(recovered.state),
            epoch: recovered.epoch,
            dur: Some(Durability {
                dir: dir.to_owned(),
                wal,
                poisoned: false,
            }),
        };
        Ok((
            PropertyGraph {
                inner: Arc::new(RwLock::new(inner)),
            },
            recovered.report,
        ))
    }

    /// Whether this store write-ahead logs its mutations.
    pub fn is_durable(&self) -> bool {
        self.inner.read().dur.is_some()
    }

    /// The durability directory, if this store has one.
    pub fn directory(&self) -> Option<PathBuf> {
        self.inner.read().dur.as_ref().map(|d| d.dir.clone())
    }

    /// Durability barrier: fsyncs the WAL, making every acknowledged mutation
    /// crash-proof. Errors with [`StoreError::NotDurable`] on an in-memory
    /// store.
    pub fn persist(&self) -> Result<(), StoreError> {
        self.inner.write().durability()?.wal.sync()
    }

    /// Serializes the current generation to an atomically-installed
    /// checkpoint file and truncates the WAL.
    ///
    /// The rebuilt (canonically-ordered) generation is installed as the live
    /// state the moment the checkpoint rename lands — so the live store and
    /// a recovery of its directory stay structurally identical, always.
    /// Failures on this path never poison the store: at every crash boundary
    /// the directory still recovers to the current state (the old
    /// checkpoint + full WAL before the rename; the new checkpoint + a WAL
    /// whose records are skipped by sequence number after it).
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let started = std::time::Instant::now();
        let mut inner = self.inner.write();
        // make sure the log never trails the checkpoint we are about to cut
        inner.durability()?.wal.sync()?;
        let data = CheckpointData::capture(&inner.state, inner.epoch);
        let (dir, fail) = {
            let dur = inner.dur.as_ref().expect("durability checked above");
            (dur.dir.clone(), dur.wal.fail_plan())
        };
        let bytes = write_checkpoint(&dir, &data, &fail)?;
        // the checkpoint is installed on disk; install its canonical
        // restoration in memory too (see the method docs)
        let restored = data
            .restore(Arc::clone(&inner.state.metrics))
            .map_err(StoreError::Recovery)?;
        inner.state = Arc::new(restored);
        inner
            .state
            .metrics
            .checkpoints
            .fetch_add(1, Ordering::Relaxed);
        inner
            .state
            .metrics
            .checkpoint_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        crate::metrics::checkpoints_total().inc();
        crate::metrics::checkpoint_bytes_total().add(bytes);
        let result = inner
            .dur
            .as_mut()
            .expect("durability checked above")
            .wal
            .truncate();
        crate::metrics::checkpoint_latency().observe(started.elapsed());
        result
    }

    /// Arms the store's deterministic fault-injection plan: the `after`-th
    /// subsequent hit of `point` (0 = the very next one) fails with
    /// [`StoreError::Injected`], simulating a crash at that boundary. Testing
    /// hook; a no-op on in-memory stores.
    pub fn arm_failpoint(&self, point: FailPoint, after: u64) {
        if let Some(dur) = self.inner.read().dur.as_ref() {
            dur.wal.fail_plan().arm(point, after);
        }
    }

    /// Bulk-ingests edge triples through the WAL fast path: one write lock,
    /// one WAL write per ~4096-record chunk, no per-edge frame flush.
    /// Existing edges are skipped as pure reads. Returns the number of edges
    /// actually added.
    ///
    /// Unlike single mutators, the in-memory state runs *ahead* of the WAL
    /// within a chunk; a WAL failure therefore poisons the store (nothing was
    /// acknowledged — reopen the directory to return to the logged prefix).
    /// Works on in-memory stores too (it just skips the logging).
    pub fn ingest_edges<'a>(
        &self,
        edges: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> Result<usize, StoreError> {
        const CHUNK: u64 = 4096;
        let mut inner = self.inner.write();
        let durable = match inner.dur.as_ref() {
            Some(d) if d.poisoned => return Err(StoreError::Poisoned),
            Some(_) => true,
            None => false,
        };
        let mut frames: Vec<u8> = Vec::new();
        let mut buffered = 0u64;
        let mut added = 0usize;
        for (tail, label, head) in edges {
            if let (Some(t), Some(l), Some(h)) = (
                inner.state.interner.get_vertex(tail),
                inner.state.interner.get_label(label),
                inner.state.interner.get_vertex(head),
            ) {
                if inner.state.graph.contains_edge(&Edge::new(t, l, h)) {
                    continue;
                }
            }
            let op = WalOp::AddEdge {
                tail: tail.to_owned(),
                label: label.to_owned(),
                head: head.to_owned(),
            };
            if durable {
                encode_frame(inner.epoch + 1, &op, &mut frames);
                buffered += 1;
            }
            inner.mutate().apply(&op);
            added += 1;
            if buffered >= CHUNK {
                Self::flush_ingest_chunk(&mut inner, &mut frames, &mut buffered)?;
            }
        }
        if buffered > 0 {
            Self::flush_ingest_chunk(&mut inner, &mut frames, &mut buffered)?;
        }
        Ok(added)
    }

    fn flush_ingest_chunk(
        inner: &mut Inner,
        frames: &mut Vec<u8>,
        buffered: &mut u64,
    ) -> Result<(), StoreError> {
        let dur = inner.dur.as_mut().expect("ingest chunks only when durable");
        if let Err(e) = dur.wal.append_frames(frames) {
            dur.poisoned = true;
            return Err(e);
        }
        inner
            .state
            .metrics
            .wal_records
            .fetch_add(*buffered, Ordering::Relaxed);
        crate::metrics::wal_records_total().add(*buffered);
        frames.clear();
        *buffered = 0;
        Ok(())
    }

    /// Runs `f` over the current generation and epoch under the read lock
    /// (internal hook for unit tests).
    #[cfg(test)]
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&GraphState, u64) -> R) -> R {
        let inner = self.inner.read();
        f(&inner.state, inner.epoch)
    }
}

/// An immutable snapshot of a [`PropertyGraph`], shared by executors
/// (including across threads in the parallel executor).
///
/// A snapshot pins one *generation* of the store: cloning it (or taking it in
/// the first place) is an `Arc` clone. The reversed graph is a per-generation
/// lazy cache — built at most once per generation, on the first
/// [`GraphSnapshot::reversed`] call, and never built at all for pure-`Out`
/// traversals.
#[derive(Debug)]
pub struct GraphSnapshot {
    state: Arc<GraphState>,
    epoch: u64,
}

impl Clone for GraphSnapshot {
    /// `Arc` clone of the pinned generation; the clone counts as one more
    /// live snapshot (see [`StoreStats::live_snapshots`]).
    fn clone(&self) -> Self {
        self.state
            .metrics
            .live_snapshots
            .fetch_add(1, Ordering::Relaxed);
        crate::metrics::snapshots_total().inc();
        crate::metrics::live_snapshots_gauge().add(1);
        GraphSnapshot {
            state: Arc::clone(&self.state),
            epoch: self.epoch,
        }
    }
}

impl Drop for GraphSnapshot {
    fn drop(&mut self) {
        self.state
            .metrics
            .live_snapshots
            .fetch_sub(1, Ordering::Relaxed);
        crate::metrics::live_snapshots_gauge().add(-1);
    }
}

impl GraphSnapshot {
    /// The forward multi-relational graph.
    pub fn graph(&self) -> &MultiGraph {
        &self.state.graph
    }

    /// The reversed graph (used by `in_`/incoming steps). Built lazily on
    /// first use and cached for the generation this snapshot pins; pure-`Out`
    /// traversals never trigger the build.
    pub fn reversed(&self) -> &MultiGraph {
        self.state.reversed()
    }

    /// Forces the reversed-graph cache to be built now (a no-op if it already
    /// is). The parallel executor calls this for plans that traverse
    /// `In`/`Both` edges, so worker threads never stall on the first-touch
    /// build mid-traversal.
    pub fn prewarm_reversed(&self) {
        let _ = self.state.reversed();
    }

    /// The Out-direction [`CsrTopology`] of the pinned generation. Built
    /// lazily on the first call and cached for the generation (see
    /// [`StoreStats::csr_builds`]); scalar-only traversals never trigger the
    /// build.
    pub fn csr_out(&self) -> &CsrTopology {
        self.state.csr_out()
    }

    /// The In-direction [`CsrTopology`] of the pinned generation, built over
    /// the cached reversed graph so segment order matches scalar In-walks.
    /// Pure-`Out` traversals never trigger this build (nor the reversed
    /// graph's).
    pub fn csr_in(&self) -> &CsrTopology {
        self.state.csr_in()
    }

    /// Forces the CSR caches a plan will need to be built now (a no-op per
    /// direction if already built). The parallel executor calls this so
    /// worker threads never stall on a first-touch build mid-traversal.
    pub fn prewarm_csr(&self, out: bool, in_: bool) {
        if out {
            let _ = self.state.csr_out();
        }
        if in_ {
            let _ = self.state.csr_in();
        }
    }

    /// The epoch of the generation this snapshot pins (see
    /// [`PropertyGraph::stats`]).
    pub fn generation(&self) -> u64 {
        self.epoch
    }

    /// The interner mapping names to ids.
    pub fn interner(&self) -> &GraphInterner {
        &self.state.interner
    }

    /// A vertex property value.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<&Value> {
        self.state.vertex_props.get(&v).and_then(|m| m.get(key))
    }

    /// An edge property value.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<&Value> {
        self.state.edge_props.get(e).and_then(|m| m.get(key))
    }

    /// All properties of a vertex, sorted by key (empty if none). The sorted
    /// order makes cross-store equality checks deterministic.
    pub fn vertex_properties(&self, v: VertexId) -> Vec<(String, Value)> {
        let mut props: Vec<(String, Value)> = self
            .state
            .vertex_props
            .get(&v)
            .map(|m| m.iter().map(|(k, val)| (k.clone(), val.clone())).collect())
            .unwrap_or_default();
        props.sort_by(|a, b| a.0.cmp(&b.0));
        props
    }

    /// All properties of an edge, sorted by key (empty if none).
    pub fn edge_properties(&self, e: &Edge) -> Vec<(String, Value)> {
        let mut props: Vec<(String, Value)> = self
            .state
            .edge_props
            .get(e)
            .map(|m| m.iter().map(|(k, val)| (k.clone(), val.clone())).collect())
            .unwrap_or_default();
        props.sort_by(|a, b| a.0.cmp(&b.0));
        props
    }

    /// An edge property read as a finite number — the convenience behind
    /// brute-force weight folds in tests and benchmarks (the engine's own
    /// weighted search goes through `WeightSource`, which distinguishes the
    /// missing and non-numeric cases as errors).
    pub fn edge_weight(&self, e: &Edge, key: &str) -> Option<f64> {
        self.edge_property(e, key).and_then(Value::as_finite_number)
    }

    /// All vertices whose property `key` satisfies the predicate.
    pub fn vertices_where(&self, key: &str, pred: &crate::value::Predicate) -> Vec<VertexId> {
        self.state
            .graph
            .vertices()
            .filter(|&v| pred.eval(self.vertex_property(v, key)))
            .collect()
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.state
            .interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.state
            .interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Renders a vertex as its name (falling back to the id).
    pub fn render_vertex(&self, v: VertexId) -> String {
        self.state
            .interner
            .vertex_name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string())
    }
}

/// Builds the 6-vertex "TinkerPop classic"-style social/software graph used by
/// examples, tests, and the engine benchmarks: people `know` each other and
/// `created` software, with `age` and `lang` properties.
pub fn classic_social_graph() -> PropertyGraph {
    let g = PropertyGraph::new();
    g.add_vertex_with(
        "marko",
        [("age", Value::from(29i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "vadas",
        [("age", Value::from(27i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "josh",
        [("age", Value::from(32i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "peter",
        [("age", Value::from(35i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "lop",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_vertex_with(
        "ripple",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_edge_with("marko", "knows", "vadas", [("weight", Value::from(0.5f64))]);
    g.add_edge_with("marko", "knows", "josh", [("weight", Value::from(1.0f64))]);
    g.add_edge_with("marko", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with(
        "josh",
        "created",
        "ripple",
        [("weight", Value::from(1.0f64))],
    );
    g.add_edge_with("josh", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with("peter", "created", "lop", [("weight", Value::from(0.2f64))]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Predicate;

    #[test]
    fn building_the_classic_graph() {
        let g = classic_social_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
        let marko = g.vertex("marko").unwrap();
        assert_eq!(g.vertex_property(marko, "age"), Some(Value::Int(29)));
        assert!(g.vertex("nobody").is_err());
        assert!(g.label("knows").is_ok());
        assert!(g.label("likes").is_err());
    }

    #[test]
    fn edge_properties_roundtrip() {
        let g = classic_social_graph();
        let marko = g.vertex("marko").unwrap();
        let josh = g.vertex("josh").unwrap();
        let knows = g.label("knows").unwrap();
        let e = Edge::new(marko, knows, josh);
        assert_eq!(g.edge_property(&e, "weight"), Some(Value::Float(1.0)));
        assert_eq!(g.edge_property(&e, "missing"), None);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let before = snap.graph().edge_count();
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(snap.graph().edge_count(), before);
        assert_eq!(g.edge_count(), before + 1);
    }

    #[test]
    fn snapshot_reversed_graph_mirrors_edges() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert_eq!(snap.reversed().edge_count(), snap.graph().edge_count());
        let marko = snap.vertex("marko").unwrap();
        // in the reversed graph, marko has incoming edges from his out-neighbours
        assert_eq!(
            snap.reversed().in_edges(marko).len(),
            snap.graph().out_edges(marko).len()
        );
    }

    #[test]
    fn vertices_where_filters_on_properties() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let adults = snap.vertices_where("age", &Predicate::Ge(30.0));
        assert_eq!(adults.len(), 2); // josh (32), peter (35)
        let java = snap.vertices_where("lang", &Predicate::Eq(Value::from("java")));
        assert_eq!(java.len(), 2);
        let nobody = snap.vertices_where("nope", &Predicate::Exists);
        assert!(nobody.is_empty());
    }

    #[test]
    fn rendering_and_name_lookups() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let marko = snap.vertex("marko").unwrap();
        assert_eq!(snap.render_vertex(marko), "marko");
        assert_eq!(g.vertex_name(marko), Some("marko".into()));
        let knows = g.label("knows").unwrap();
        assert_eq!(g.label_name(knows), Some("knows".into()));
    }

    #[test]
    fn snapshots_are_o1_until_a_mutation_starts_a_new_generation() {
        let g = classic_social_graph();
        // building never deep-clones: no snapshot pinned any generation
        assert_eq!(g.stats().deep_clones, 0);
        // snapshots are Arc clones — any number of them copy nothing
        let snaps: Vec<GraphSnapshot> = (0..100).map(|_| g.snapshot()).collect();
        assert_eq!(g.stats().deep_clones, 0);
        assert!(snaps
            .windows(2)
            .all(|w| w[0].generation() == w[1].generation()));
        // the first mutation after a snapshot pays the one COW clone…
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(g.stats().deep_clones, 1);
        // …and further mutations are in place (no snapshot pins the new gen)
        g.add_edge("vadas", "knows", "josh");
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(28i64));
        assert_eq!(g.stats().deep_clones, 1);
        // the held snapshots still see the frozen generation
        assert!(snaps.iter().all(|s| s.graph().edge_count() == 6));
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn live_snapshot_gauge_tracks_pins_across_generations() {
        let g = classic_social_graph();
        assert_eq!(g.stats().live_snapshots, 0);
        let a = g.snapshot();
        let b = g.snapshot();
        assert_eq!(g.stats().live_snapshots, 2);
        // clones pin too
        let c = a.clone();
        assert_eq!(g.stats().live_snapshots, 3);
        // snapshots of different generations share the one per-store gauge
        g.add_edge("vadas", "knows", "peter");
        let d = g.snapshot();
        assert_eq!(g.stats().live_snapshots, 4);
        drop(a);
        drop(d);
        assert_eq!(g.stats().live_snapshots, 2);
        drop(b);
        drop(c);
        assert_eq!(g.stats().live_snapshots, 0);
    }

    #[test]
    fn reversed_graph_builds_once_per_generation_and_only_on_demand() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert_eq!(g.stats().reversed_builds, 0);
        // two snapshots of one generation share one build
        let snap2 = g.snapshot();
        snap.prewarm_reversed();
        assert_eq!(snap2.reversed().edge_count(), 6);
        assert_eq!(g.stats().reversed_builds, 1);
        // a structural mutation starts a generation whose cache is cold…
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(g.snapshot().reversed().edge_count(), 7);
        assert_eq!(g.stats().reversed_builds, 2);
        // …but a property write that mutates in place keeps the cache
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(28i64));
        let _ = g.snapshot().reversed();
        assert_eq!(g.stats().reversed_builds, 2);
        // even a property write that pays the COW clone carries the cache
        // into the new generation (properties cannot change edge structure)
        let pinned = g.snapshot();
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(29i64));
        assert!(g.stats().deep_clones > 0);
        let _ = g.snapshot().reversed();
        assert_eq!(g.stats().reversed_builds, 2, "cache carried across COW");
        drop(pinned);
    }

    #[test]
    fn noop_adds_are_reads_not_mutations() {
        let g = classic_social_graph();
        let gen = g.stats().generation;
        let snap = g.snapshot();
        // re-adding an existing vertex or edge must not bump the epoch, pay
        // a COW clone, or invalidate the reversed cache
        let marko = g.add_vertex("marko");
        let e = g.add_edge("marko", "knows", "vadas");
        assert_eq!(g.stats().generation, gen);
        assert_eq!(g.stats().deep_clones, 0);
        assert_eq!(g.vertex("marko").unwrap(), marko);
        assert_eq!(snap.graph().edge_count(), 6);
        assert!(snap.graph().contains_edge(&e));
    }

    #[test]
    fn remove_edge_by_names_updates_the_store() {
        let g = classic_social_graph();
        assert!(g.remove_edge("marko", "knows", "vadas"));
        assert!(!g.remove_edge("marko", "knows", "vadas"));
        assert!(!g.remove_edge("marko", "likes", "vadas"));
        assert_eq!(g.edge_count(), 5);
        let marko = g.vertex("marko").unwrap();
        let vadas = g.vertex("vadas").unwrap();
        let knows = g.label("knows").unwrap();
        // the edge's properties were dropped with it
        assert_eq!(
            g.edge_property(&Edge::new(marko, knows, vadas), "weight"),
            None
        );
    }

    #[test]
    fn remove_vertex_detaches_edges_and_keeps_snapshots_isolated() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let marko = g.vertex("marko").unwrap();
        assert!(g.remove_vertex("marko"));
        assert!(!g.remove_vertex("marko")); // already gone: a pure read
        assert!(!g.remove_vertex("nobody"));
        // marko had 3 out-edges and no in-edges
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertex_count(), 5);
        // properties of the vertex and its incident edges went with it
        assert_eq!(g.vertex_property(marko, "age"), None);
        let vadas = g.vertex("vadas").unwrap();
        let knows = g.label("knows").unwrap();
        assert_eq!(
            g.edge_property(&Edge::new(marko, knows, vadas), "weight"),
            None
        );
        // the pre-removal snapshot still sees everything
        assert_eq!(snap.graph().edge_count(), 6);
        assert!(snap.graph().contains_vertex(marko));
        assert_eq!(snap.vertex_property(marko, "age"), Some(&Value::Int(29)));
        // the name stays interned: re-adding reuses the id
        assert_eq!(g.add_vertex("marko"), marko);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 3); // edges do not come back
    }

    fn temp_store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mrpa-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_store_replays_its_wal_on_reopen() {
        let dir = temp_store_dir("replay");
        {
            let g = PropertyGraph::open(&dir).unwrap();
            assert!(g.is_durable());
            assert_eq!(g.directory().as_deref(), Some(dir.as_path()));
            g.add_edge_with("marko", "knows", "vadas", [("weight", Value::from(0.5f64))]);
            g.add_edge("marko", "knows", "josh");
            g.add_vertex("loner");
            g.remove_edge("marko", "knows", "josh");
            let stats = g.stats();
            assert_eq!(stats.wal_records, 5); // 2 adds + 1 prop + 1 vertex + 1 remove
            assert_eq!(stats.generation, 5);
            assert_eq!(stats.replayed_records, 0);
            g.persist().unwrap();
        }
        let (g, report) = PropertyGraph::open_recover(&dir).unwrap();
        assert_eq!(report.replayed_records, 5);
        assert_eq!(report.checkpoint_epoch, 0);
        assert_eq!(report.epoch, 5);
        assert_eq!(g.stats().replayed_records, 5);
        assert_eq!(g.stats().generation, 5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.vertex_count(), 4);
        let marko = g.vertex("marko").unwrap();
        let vadas = g.vertex("vadas").unwrap();
        let knows = g.label("knows").unwrap();
        assert_eq!(
            g.edge_property(&Edge::new(marko, knows, vadas), "weight"),
            Some(Value::Float(0.5))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_survives_reopen() {
        let dir = temp_store_dir("checkpoint");
        {
            let g = PropertyGraph::open(&dir).unwrap();
            for i in 0..10 {
                g.add_edge(&format!("a{i}"), "r", &format!("b{i}"));
            }
            g.checkpoint().unwrap();
            assert_eq!(g.stats().checkpoints, 1);
            // post-checkpoint mutations land in the (now short) WAL
            g.add_edge("a0", "r", "b5");
        }
        let (g, report) = PropertyGraph::open_recover(&dir).unwrap();
        assert_eq!(report.checkpoint_epoch, 10);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.skipped_records, 0);
        assert_eq!(g.edge_count(), 11);
        assert_eq!(g.stats().generation, 11);
        // checkpointing a second time with nothing new is fine
        g.checkpoint().unwrap();
        let g2 = PropertyGraph::open(&dir).unwrap();
        assert_eq!(g2.stats().replayed_records, 0);
        assert_eq!(g2.edge_count(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_failure_poisons_mutations_but_not_reads() {
        let dir = temp_store_dir("poison");
        let g = PropertyGraph::open(&dir).unwrap();
        g.add_edge("a", "r", "b");
        g.arm_failpoint(FailPoint::WalAppend, 0);
        assert_eq!(
            g.try_add_edge("a", "r", "c"),
            Err(StoreError::Injected(FailPoint::WalAppend))
        );
        // the op was not applied, and further mutations are refused…
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.try_add_vertex("x"), Err(StoreError::Poisoned));
        assert_eq!(g.checkpoint(), Err(StoreError::Poisoned));
        assert_eq!(g.persist(), Err(StoreError::Poisoned));
        // …but reads and snapshots keep working
        assert_eq!(g.snapshot().graph().edge_count(), 1);
        // reopening the directory recovers the acknowledged prefix
        let g = PropertyGraph::open(&dir).unwrap();
        assert_eq!(g.edge_count(), 1);
        g.add_edge("a", "r", "c"); // healthy again
        assert_eq!(g.edge_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_store_refuses_durability_calls() {
        let g = classic_social_graph();
        assert!(!g.is_durable());
        assert_eq!(g.directory(), None);
        assert_eq!(g.persist(), Err(StoreError::NotDurable));
        assert_eq!(g.checkpoint(), Err(StoreError::NotDurable));
        assert_eq!(g.stats().wal_records, 0);
        g.arm_failpoint(FailPoint::WalAppend, 0); // no-op, not a panic
        g.add_edge("a", "r", "b");
    }

    #[test]
    fn ingest_edges_batches_through_the_wal() {
        let dir = temp_store_dir("ingest");
        let triples: Vec<(String, String, String)> = (0..100)
            .map(|i| {
                (
                    format!("v{}", i % 20),
                    "r".to_owned(),
                    format!("v{}", (i * 7) % 20),
                )
            })
            .collect();
        let g = PropertyGraph::open(&dir).unwrap();
        let added = g
            .ingest_edges(triples.iter().map(|(t, l, h)| (&**t, &**l, &**h)))
            .unwrap();
        assert!(added <= 100);
        assert_eq!(g.edge_count(), added);
        assert_eq!(g.stats().wal_records, added as u64);
        // duplicates in a second pass are pure reads
        assert_eq!(
            g.ingest_edges(triples.iter().map(|(t, l, h)| (&**t, &**l, &**h)))
                .unwrap(),
            0
        );
        drop(g);
        let g = PropertyGraph::open(&dir).unwrap();
        assert_eq!(g.edge_count(), added);
        assert_eq!(g.stats().replayed_records, added as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_reads_and_writes_do_not_deadlock() {
        let g = classic_social_graph();
        let g2 = g.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                g2.add_edge(&format!("p{i}"), "knows", &format!("p{}", i + 1));
            }
            g2.edge_count()
        });
        for _ in 0..100 {
            let _ = g.snapshot().graph().edge_count();
        }
        let count = handle.join().unwrap();
        assert!(count >= 106);
    }
}
