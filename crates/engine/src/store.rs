//! The property-graph store underlying the traversal engine.
//!
//! [`PropertyGraph`] is a thread-safe multi-relational property graph: the
//! edge structure is exactly the paper's ternary relation `E ⊆ V × Ω × V`
//! (held in an [`mrpa_core::MultiGraph`]), while vertices and edges may carry
//! string-keyed [`Value`] properties. Reads take a consistent
//! [`GraphSnapshot`] so long-running traversals are not affected by concurrent
//! mutation.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mrpa_core::{Edge, GraphInterner, LabelId, MultiGraph, VertexId};

use crate::error::EngineError;
use crate::value::Value;

#[derive(Debug, Default)]
struct Inner {
    graph: MultiGraph,
    interner: GraphInterner,
    vertex_props: HashMap<VertexId, HashMap<String, Value>>,
    edge_props: HashMap<Edge, HashMap<String, Value>>,
}

/// A thread-safe multi-relational property graph.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    inner: Arc<RwLock<Inner>>,
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or fetches) a vertex by name.
    pub fn add_vertex(&self, name: &str) -> VertexId {
        let mut inner = self.inner.write();
        let v = inner.interner.vertex(name);
        inner.graph.add_vertex(v);
        v
    }

    /// Adds a vertex with properties.
    pub fn add_vertex_with(
        &self,
        name: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> VertexId {
        let v = self.add_vertex(name);
        for (k, value) in props {
            self.set_vertex_property(v, k, value);
        }
        v
    }

    /// Adds the edge `(tail, label, head)` by names, creating vertices as
    /// needed. Returns the edge.
    pub fn add_edge(&self, tail: &str, label: &str, head: &str) -> Edge {
        let mut inner = self.inner.write();
        let t = inner.interner.vertex(tail);
        let l = inner.interner.label(label);
        let h = inner.interner.vertex(head);
        inner.graph.add_vertex(t);
        inner.graph.add_vertex(h);
        let e = Edge::new(t, l, h);
        inner.graph.add_edge(e);
        e
    }

    /// Adds an edge with properties.
    pub fn add_edge_with(
        &self,
        tail: &str,
        label: &str,
        head: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Edge {
        let e = self.add_edge(tail, label, head);
        for (k, value) in props {
            self.set_edge_property(e, k, value);
        }
        e
    }

    /// Sets a vertex property.
    pub fn set_vertex_property(&self, v: VertexId, key: &str, value: Value) {
        let mut inner = self.inner.write();
        inner
            .vertex_props
            .entry(v)
            .or_default()
            .insert(key.to_owned(), value);
    }

    /// Sets an edge property.
    pub fn set_edge_property(&self, e: Edge, key: &str, value: Value) {
        let mut inner = self.inner.write();
        inner
            .edge_props
            .entry(e)
            .or_default()
            .insert(key.to_owned(), value);
    }

    /// Reads a vertex property.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<Value> {
        self.inner
            .read()
            .vertex_props
            .get(&v)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Reads an edge property.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<Value> {
        self.inner
            .read()
            .edge_props
            .get(e)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.inner
            .read()
            .interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.inner
            .read()
            .interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// The name of a vertex, if it was added by name.
    pub fn vertex_name(&self, v: VertexId) -> Option<String> {
        self.inner.read().interner.vertex_name(v).map(str::to_owned)
    }

    /// The name of a label.
    pub fn label_name(&self, l: LabelId) -> Option<String> {
        self.inner.read().interner.label_name(l).map(str::to_owned)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.inner.read().graph.vertex_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().graph.edge_count()
    }

    /// Takes a consistent snapshot of the graph structure and properties for
    /// traversal evaluation. The snapshot is immutable and cheap to share.
    pub fn snapshot(&self) -> GraphSnapshot {
        let inner = self.inner.read();
        GraphSnapshot {
            graph: Arc::new(inner.graph.clone()),
            reversed: Arc::new(inner.graph.reversed()),
            vertex_props: Arc::new(inner.vertex_props.clone()),
            edge_props: Arc::new(inner.edge_props.clone()),
            interner: Arc::new(inner.interner.clone()),
        }
    }
}

/// An immutable snapshot of a [`PropertyGraph`], shared by executors
/// (including across threads in the parallel executor).
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph: Arc<MultiGraph>,
    reversed: Arc<MultiGraph>,
    vertex_props: Arc<HashMap<VertexId, HashMap<String, Value>>>,
    edge_props: Arc<HashMap<Edge, HashMap<String, Value>>>,
    interner: Arc<GraphInterner>,
}

impl GraphSnapshot {
    /// The forward multi-relational graph.
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The reversed graph (used by `in_`/incoming steps).
    pub fn reversed(&self) -> &MultiGraph {
        &self.reversed
    }

    /// The interner mapping names to ids.
    pub fn interner(&self) -> &GraphInterner {
        &self.interner
    }

    /// A vertex property value.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<&Value> {
        self.vertex_props.get(&v).and_then(|m| m.get(key))
    }

    /// An edge property value.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<&Value> {
        self.edge_props.get(e).and_then(|m| m.get(key))
    }

    /// An edge property read as a finite number — the convenience behind
    /// brute-force weight folds in tests and benchmarks (the engine's own
    /// weighted search goes through `WeightSource`, which distinguishes the
    /// missing and non-numeric cases as errors).
    pub fn edge_weight(&self, e: &Edge, key: &str) -> Option<f64> {
        self.edge_property(e, key).and_then(Value::as_finite_number)
    }

    /// All vertices whose property `key` satisfies the predicate.
    pub fn vertices_where(&self, key: &str, pred: &crate::value::Predicate) -> Vec<VertexId> {
        self.graph
            .vertices()
            .filter(|&v| pred.eval(self.vertex_property(v, key)))
            .collect()
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Renders a vertex as its name (falling back to the id).
    pub fn render_vertex(&self, v: VertexId) -> String {
        self.interner
            .vertex_name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string())
    }
}

/// Builds the 6-vertex "TinkerPop classic"-style social/software graph used by
/// examples, tests, and the engine benchmarks: people `know` each other and
/// `created` software, with `age` and `lang` properties.
pub fn classic_social_graph() -> PropertyGraph {
    let g = PropertyGraph::new();
    g.add_vertex_with(
        "marko",
        [("age", Value::from(29i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "vadas",
        [("age", Value::from(27i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "josh",
        [("age", Value::from(32i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "peter",
        [("age", Value::from(35i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "lop",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_vertex_with(
        "ripple",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_edge_with("marko", "knows", "vadas", [("weight", Value::from(0.5f64))]);
    g.add_edge_with("marko", "knows", "josh", [("weight", Value::from(1.0f64))]);
    g.add_edge_with("marko", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with(
        "josh",
        "created",
        "ripple",
        [("weight", Value::from(1.0f64))],
    );
    g.add_edge_with("josh", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with("peter", "created", "lop", [("weight", Value::from(0.2f64))]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Predicate;

    #[test]
    fn building_the_classic_graph() {
        let g = classic_social_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
        let marko = g.vertex("marko").unwrap();
        assert_eq!(g.vertex_property(marko, "age"), Some(Value::Int(29)));
        assert!(g.vertex("nobody").is_err());
        assert!(g.label("knows").is_ok());
        assert!(g.label("likes").is_err());
    }

    #[test]
    fn edge_properties_roundtrip() {
        let g = classic_social_graph();
        let marko = g.vertex("marko").unwrap();
        let josh = g.vertex("josh").unwrap();
        let knows = g.label("knows").unwrap();
        let e = Edge::new(marko, knows, josh);
        assert_eq!(g.edge_property(&e, "weight"), Some(Value::Float(1.0)));
        assert_eq!(g.edge_property(&e, "missing"), None);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let before = snap.graph().edge_count();
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(snap.graph().edge_count(), before);
        assert_eq!(g.edge_count(), before + 1);
    }

    #[test]
    fn snapshot_reversed_graph_mirrors_edges() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert_eq!(snap.reversed().edge_count(), snap.graph().edge_count());
        let marko = snap.vertex("marko").unwrap();
        // in the reversed graph, marko has incoming edges from his out-neighbours
        assert_eq!(
            snap.reversed().in_edges(marko).len(),
            snap.graph().out_edges(marko).len()
        );
    }

    #[test]
    fn vertices_where_filters_on_properties() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let adults = snap.vertices_where("age", &Predicate::Ge(30.0));
        assert_eq!(adults.len(), 2); // josh (32), peter (35)
        let java = snap.vertices_where("lang", &Predicate::Eq(Value::from("java")));
        assert_eq!(java.len(), 2);
        let nobody = snap.vertices_where("nope", &Predicate::Exists);
        assert!(nobody.is_empty());
    }

    #[test]
    fn rendering_and_name_lookups() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let marko = snap.vertex("marko").unwrap();
        assert_eq!(snap.render_vertex(marko), "marko");
        assert_eq!(g.vertex_name(marko), Some("marko".into()));
        let knows = g.label("knows").unwrap();
        assert_eq!(g.label_name(knows), Some("knows".into()));
    }

    #[test]
    fn concurrent_reads_and_writes_do_not_deadlock() {
        let g = classic_social_graph();
        let g2 = g.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                g2.add_edge(&format!("p{i}"), "knows", &format!("p{}", i + 1));
            }
            g2.edge_count()
        });
        for _ in 0..100 {
            let _ = g.snapshot().graph().edge_count();
        }
        let count = handle.join().unwrap();
        assert!(count >= 106);
    }
}
