//! The property-graph store underlying the traversal engine.
//!
//! [`PropertyGraph`] is a thread-safe multi-relational property graph: the
//! edge structure is exactly the paper's ternary relation `E ⊆ V × Ω × V`
//! (held in an [`mrpa_core::MultiGraph`]), while vertices and edges may carry
//! string-keyed [`Value`] properties. Reads take a consistent
//! [`GraphSnapshot`] so long-running traversals are not affected by concurrent
//! mutation.
//!
//! # Epochs and copy-on-write snapshots
//!
//! The store holds its state as an `Arc`-shared **generation**
//! ([`GraphSnapshot`] pins one). Taking a snapshot is O(1) — an `Arc` clone
//! and an epoch read, never a copy of the graph, the property maps, or the
//! interner. Mutators go through [`Arc::make_mut`]: while no snapshot of the
//! current generation is alive they mutate in place (zero copies on any
//! build-then-query workload); the first mutation *after* a snapshot was
//! taken pays one O(V+E) deep clone to start a new generation, leaving every
//! outstanding snapshot frozen on the old one. Each mutation bumps the
//! store's epoch, so `snapshot().generation()` identifies the pinned state.
//!
//! The reversed graph (used by `in_`/`both` steps) is a **lazily-built,
//! per-generation cache**: it is constructed at most once per generation, on
//! first use, and never for pure-`Out` workloads. [`PropertyGraph::stats`]
//! exposes counters (`deep_clones`, `reversed_builds`) that make both cost
//! claims assertable in tests and benchmarks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use mrpa_core::{Edge, GraphInterner, LabelId, MultiGraph, VertexId};

use crate::error::EngineError;
use crate::value::Value;

/// Monotonic counters shared by every generation of one store (cloning a
/// generation keeps the same handle, so the counts are per-`PropertyGraph`).
#[derive(Debug, Default)]
struct StoreMetrics {
    /// Generation deep clones performed by copy-on-write mutators.
    deep_clones: AtomicU64,
    /// Reversed-graph builds (at most one per generation, only on demand).
    reversed_builds: AtomicU64,
}

/// Copy-on-write counters of a [`PropertyGraph`], for asserting the snapshot
/// cost model: `deep_clones` counts the O(V+E) generation copies (zero on the
/// unchanged-graph snapshot path), `reversed_builds` counts reversed-graph
/// constructions (at most one per generation, zero for pure-`Out` workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The current epoch (bumped by every mutation).
    pub generation: u64,
    /// O(V+E) copy-on-write generation clones performed so far.
    pub deep_clones: u64,
    /// Reversed-graph builds performed so far.
    pub reversed_builds: u64,
}

/// One immutable generation of the store. `Clone` is the copy-on-write deep
/// clone (counted in [`StoreMetrics::deep_clones`]); the lazily-built
/// reversed graph is *not* carried over — a fresh generation rebuilds it on
/// first demand.
#[derive(Debug, Default)]
struct GraphState {
    graph: MultiGraph,
    interner: GraphInterner,
    vertex_props: HashMap<VertexId, HashMap<String, Value>>,
    edge_props: HashMap<Edge, HashMap<String, Value>>,
    /// Per-generation cache of `graph.reversed()`, built at most once. An
    /// `Arc` so that a property-only copy-on-write (which cannot change edge
    /// structure) can carry the built cache into the new generation.
    reversed: OnceLock<Arc<MultiGraph>>,
    /// Shared across generations of one store (a handle, not data).
    metrics: Arc<StoreMetrics>,
}

impl Clone for GraphState {
    fn clone(&self) -> Self {
        self.metrics.deep_clones.fetch_add(1, Ordering::Relaxed);
        GraphState {
            graph: self.graph.clone(),
            interner: self.interner.clone(),
            vertex_props: self.vertex_props.clone(),
            edge_props: self.edge_props.clone(),
            reversed: OnceLock::new(),
            metrics: Arc::clone(&self.metrics),
        }
    }
}

impl GraphState {
    /// The reversed graph of this generation, built on first use.
    fn reversed(&self) -> &MultiGraph {
        self.reversed
            .get_or_init(|| {
                self.metrics.reversed_builds.fetch_add(1, Ordering::Relaxed);
                Arc::new(self.graph.reversed())
            })
            .as_ref()
    }
}

#[derive(Debug, Default)]
struct Inner {
    state: Arc<GraphState>,
    epoch: u64,
}

impl Inner {
    /// Prepares the current generation for a **structural** mutation: bumps
    /// the epoch and returns exclusive access to the state. If a snapshot
    /// pins the current generation this performs the one copy-on-write deep
    /// clone; otherwise it mutates in place. Either way the reversed-graph
    /// cache is dropped — the edge structure is about to change, so the next
    /// generation rebuilds it on demand.
    fn mutate(&mut self) -> &mut GraphState {
        self.epoch += 1;
        let state = Arc::make_mut(&mut self.state);
        state.reversed.take();
        state
    }

    /// Prepares the current generation for a **property-only** mutation:
    /// like [`Inner::mutate`], but keeps the reversed-graph cache — property
    /// values cannot change edge structure, so even the copy-on-write path
    /// carries the built cache (an `Arc` clone) into the new generation.
    fn mutate_props(&mut self) -> &mut GraphState {
        self.epoch += 1;
        let carried = self.state.reversed.get().cloned();
        let state = Arc::make_mut(&mut self.state);
        if let Some(reversed) = carried {
            // no-op on the in-place path (the cache is still set there)
            let _ = state.reversed.set(reversed);
        }
        state
    }
}

/// A thread-safe multi-relational property graph.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    inner: Arc<RwLock<Inner>>,
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or fetches) a vertex by name. Fetching an existing vertex is a
    /// pure read — it neither bumps the epoch nor triggers a copy-on-write.
    pub fn add_vertex(&self, name: &str) -> VertexId {
        let mut inner = self.inner.write();
        if let Some(v) = inner.state.interner.get_vertex(name) {
            if inner.state.graph.contains_vertex(v) {
                return v;
            }
        }
        let state = inner.mutate();
        let v = state.interner.vertex(name);
        state.graph.add_vertex(v);
        v
    }

    /// Adds a vertex with properties.
    pub fn add_vertex_with(
        &self,
        name: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> VertexId {
        let v = self.add_vertex(name);
        for (k, value) in props {
            self.set_vertex_property(v, k, value);
        }
        v
    }

    /// Adds the edge `(tail, label, head)` by names, creating vertices as
    /// needed. Returns the edge.
    pub fn add_edge(&self, tail: &str, label: &str, head: &str) -> Edge {
        let mut inner = self.inner.write();
        // re-adding an existing edge is a pure read: no epoch bump, no COW
        if let (Some(t), Some(l), Some(h)) = (
            inner.state.interner.get_vertex(tail),
            inner.state.interner.get_label(label),
            inner.state.interner.get_vertex(head),
        ) {
            let e = Edge::new(t, l, h);
            if inner.state.graph.contains_edge(&e) {
                return e;
            }
        }
        let state = inner.mutate();
        let t = state.interner.vertex(tail);
        let l = state.interner.label(label);
        let h = state.interner.vertex(head);
        state.graph.add_vertex(t);
        state.graph.add_vertex(h);
        let e = Edge::new(t, l, h);
        state.graph.add_edge(e);
        e
    }

    /// Removes the edge `(tail, label, head)` by names. Returns whether the
    /// edge was present (unknown names simply report `false`).
    pub fn remove_edge(&self, tail: &str, label: &str, head: &str) -> bool {
        let mut inner = self.inner.write();
        let (Some(t), Some(l), Some(h)) = (
            inner.state.interner.get_vertex(tail),
            inner.state.interner.get_label(label),
            inner.state.interner.get_vertex(head),
        ) else {
            return false;
        };
        let e = Edge::new(t, l, h);
        if !inner.state.graph.contains_edge(&e) {
            return false;
        }
        let state = inner.mutate();
        state.edge_props.remove(&e);
        state.graph.remove_edge(&e)
    }

    /// Adds an edge with properties.
    pub fn add_edge_with(
        &self,
        tail: &str,
        label: &str,
        head: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Edge {
        let e = self.add_edge(tail, label, head);
        for (k, value) in props {
            self.set_edge_property(e, k, value);
        }
        e
    }

    /// Sets a vertex property. Property writes are copy-on-write like every
    /// mutation, but — since properties cannot change edge structure — they
    /// always keep the generation's reversed-graph cache, on both the
    /// in-place and the COW path.
    pub fn set_vertex_property(&self, v: VertexId, key: &str, value: Value) {
        let mut inner = self.inner.write();
        inner
            .mutate_props()
            .vertex_props
            .entry(v)
            .or_default()
            .insert(key.to_owned(), value);
    }

    /// Sets an edge property (see [`PropertyGraph::set_vertex_property`] for
    /// the copy-on-write behaviour).
    pub fn set_edge_property(&self, e: Edge, key: &str, value: Value) {
        let mut inner = self.inner.write();
        inner
            .mutate_props()
            .edge_props
            .entry(e)
            .or_default()
            .insert(key.to_owned(), value);
    }

    /// Reads a vertex property.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<Value> {
        self.inner
            .read()
            .state
            .vertex_props
            .get(&v)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Reads an edge property.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<Value> {
        self.inner
            .read()
            .state
            .edge_props
            .get(e)
            .and_then(|m| m.get(key))
            .cloned()
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.inner
            .read()
            .state
            .interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.inner
            .read()
            .state
            .interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// The name of a vertex, if it was added by name.
    pub fn vertex_name(&self, v: VertexId) -> Option<String> {
        self.inner
            .read()
            .state
            .interner
            .vertex_name(v)
            .map(str::to_owned)
    }

    /// The name of a label.
    pub fn label_name(&self, l: LabelId) -> Option<String> {
        self.inner
            .read()
            .state
            .interner
            .label_name(l)
            .map(str::to_owned)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.inner.read().state.graph.vertex_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().state.graph.edge_count()
    }

    /// Takes a consistent snapshot of the graph structure and properties for
    /// traversal evaluation.
    ///
    /// This is **O(1)**: the snapshot pins the current generation by cloning
    /// an `Arc` — no graph, property-map, or interner copy happens here (or
    /// later, unless the graph is mutated while the snapshot is alive; see
    /// the module docs for the copy-on-write cost model). The snapshot is
    /// immutable, cheap to share across threads, and isolated from every
    /// subsequent mutation.
    pub fn snapshot(&self) -> GraphSnapshot {
        let inner = self.inner.read();
        GraphSnapshot {
            state: Arc::clone(&inner.state),
            epoch: inner.epoch,
        }
    }

    /// Copy-on-write counters: generation deep clones and reversed-graph
    /// builds performed by this store so far, plus the current epoch. The
    /// counters make the snapshot cost model assertable — see the module
    /// docs and `tests/snapshot_concurrency.rs`.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.read();
        StoreStats {
            generation: inner.epoch,
            deep_clones: inner.state.metrics.deep_clones.load(Ordering::Relaxed),
            reversed_builds: inner.state.metrics.reversed_builds.load(Ordering::Relaxed),
        }
    }
}

/// An immutable snapshot of a [`PropertyGraph`], shared by executors
/// (including across threads in the parallel executor).
///
/// A snapshot pins one *generation* of the store: cloning it (or taking it in
/// the first place) is an `Arc` clone. The reversed graph is a per-generation
/// lazy cache — built at most once per generation, on the first
/// [`GraphSnapshot::reversed`] call, and never built at all for pure-`Out`
/// traversals.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    state: Arc<GraphState>,
    epoch: u64,
}

impl GraphSnapshot {
    /// The forward multi-relational graph.
    pub fn graph(&self) -> &MultiGraph {
        &self.state.graph
    }

    /// The reversed graph (used by `in_`/incoming steps). Built lazily on
    /// first use and cached for the generation this snapshot pins; pure-`Out`
    /// traversals never trigger the build.
    pub fn reversed(&self) -> &MultiGraph {
        self.state.reversed()
    }

    /// Forces the reversed-graph cache to be built now (a no-op if it already
    /// is). The parallel executor calls this for plans that traverse
    /// `In`/`Both` edges, so worker threads never stall on the first-touch
    /// build mid-traversal.
    pub fn prewarm_reversed(&self) {
        let _ = self.state.reversed();
    }

    /// The epoch of the generation this snapshot pins (see
    /// [`PropertyGraph::stats`]).
    pub fn generation(&self) -> u64 {
        self.epoch
    }

    /// The interner mapping names to ids.
    pub fn interner(&self) -> &GraphInterner {
        &self.state.interner
    }

    /// A vertex property value.
    pub fn vertex_property(&self, v: VertexId, key: &str) -> Option<&Value> {
        self.state.vertex_props.get(&v).and_then(|m| m.get(key))
    }

    /// An edge property value.
    pub fn edge_property(&self, e: &Edge, key: &str) -> Option<&Value> {
        self.state.edge_props.get(e).and_then(|m| m.get(key))
    }

    /// An edge property read as a finite number — the convenience behind
    /// brute-force weight folds in tests and benchmarks (the engine's own
    /// weighted search goes through `WeightSource`, which distinguishes the
    /// missing and non-numeric cases as errors).
    pub fn edge_weight(&self, e: &Edge, key: &str) -> Option<f64> {
        self.edge_property(e, key).and_then(Value::as_finite_number)
    }

    /// All vertices whose property `key` satisfies the predicate.
    pub fn vertices_where(&self, key: &str, pred: &crate::value::Predicate) -> Vec<VertexId> {
        self.state
            .graph
            .vertices()
            .filter(|&v| pred.eval(self.vertex_property(v, key)))
            .collect()
    }

    /// Resolves a label name.
    pub fn label(&self, name: &str) -> Result<LabelId, EngineError> {
        self.state
            .interner
            .get_label(name)
            .ok_or_else(|| EngineError::UnknownLabel(name.to_owned()))
    }

    /// Resolves a vertex name.
    pub fn vertex(&self, name: &str) -> Result<VertexId, EngineError> {
        self.state
            .interner
            .get_vertex(name)
            .ok_or_else(|| EngineError::UnknownVertex(name.to_owned()))
    }

    /// Renders a vertex as its name (falling back to the id).
    pub fn render_vertex(&self, v: VertexId) -> String {
        self.state
            .interner
            .vertex_name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string())
    }
}

/// Builds the 6-vertex "TinkerPop classic"-style social/software graph used by
/// examples, tests, and the engine benchmarks: people `know` each other and
/// `created` software, with `age` and `lang` properties.
pub fn classic_social_graph() -> PropertyGraph {
    let g = PropertyGraph::new();
    g.add_vertex_with(
        "marko",
        [("age", Value::from(29i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "vadas",
        [("age", Value::from(27i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "josh",
        [("age", Value::from(32i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "peter",
        [("age", Value::from(35i64)), ("kind", Value::from("person"))],
    );
    g.add_vertex_with(
        "lop",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_vertex_with(
        "ripple",
        [
            ("lang", Value::from("java")),
            ("kind", Value::from("software")),
        ],
    );
    g.add_edge_with("marko", "knows", "vadas", [("weight", Value::from(0.5f64))]);
    g.add_edge_with("marko", "knows", "josh", [("weight", Value::from(1.0f64))]);
    g.add_edge_with("marko", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with(
        "josh",
        "created",
        "ripple",
        [("weight", Value::from(1.0f64))],
    );
    g.add_edge_with("josh", "created", "lop", [("weight", Value::from(0.4f64))]);
    g.add_edge_with("peter", "created", "lop", [("weight", Value::from(0.2f64))]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Predicate;

    #[test]
    fn building_the_classic_graph() {
        let g = classic_social_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
        let marko = g.vertex("marko").unwrap();
        assert_eq!(g.vertex_property(marko, "age"), Some(Value::Int(29)));
        assert!(g.vertex("nobody").is_err());
        assert!(g.label("knows").is_ok());
        assert!(g.label("likes").is_err());
    }

    #[test]
    fn edge_properties_roundtrip() {
        let g = classic_social_graph();
        let marko = g.vertex("marko").unwrap();
        let josh = g.vertex("josh").unwrap();
        let knows = g.label("knows").unwrap();
        let e = Edge::new(marko, knows, josh);
        assert_eq!(g.edge_property(&e, "weight"), Some(Value::Float(1.0)));
        assert_eq!(g.edge_property(&e, "missing"), None);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let before = snap.graph().edge_count();
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(snap.graph().edge_count(), before);
        assert_eq!(g.edge_count(), before + 1);
    }

    #[test]
    fn snapshot_reversed_graph_mirrors_edges() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert_eq!(snap.reversed().edge_count(), snap.graph().edge_count());
        let marko = snap.vertex("marko").unwrap();
        // in the reversed graph, marko has incoming edges from his out-neighbours
        assert_eq!(
            snap.reversed().in_edges(marko).len(),
            snap.graph().out_edges(marko).len()
        );
    }

    #[test]
    fn vertices_where_filters_on_properties() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let adults = snap.vertices_where("age", &Predicate::Ge(30.0));
        assert_eq!(adults.len(), 2); // josh (32), peter (35)
        let java = snap.vertices_where("lang", &Predicate::Eq(Value::from("java")));
        assert_eq!(java.len(), 2);
        let nobody = snap.vertices_where("nope", &Predicate::Exists);
        assert!(nobody.is_empty());
    }

    #[test]
    fn rendering_and_name_lookups() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        let marko = snap.vertex("marko").unwrap();
        assert_eq!(snap.render_vertex(marko), "marko");
        assert_eq!(g.vertex_name(marko), Some("marko".into()));
        let knows = g.label("knows").unwrap();
        assert_eq!(g.label_name(knows), Some("knows".into()));
    }

    #[test]
    fn snapshots_are_o1_until_a_mutation_starts_a_new_generation() {
        let g = classic_social_graph();
        // building never deep-clones: no snapshot pinned any generation
        assert_eq!(g.stats().deep_clones, 0);
        // snapshots are Arc clones — any number of them copy nothing
        let snaps: Vec<GraphSnapshot> = (0..100).map(|_| g.snapshot()).collect();
        assert_eq!(g.stats().deep_clones, 0);
        assert!(snaps
            .windows(2)
            .all(|w| w[0].generation() == w[1].generation()));
        // the first mutation after a snapshot pays the one COW clone…
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(g.stats().deep_clones, 1);
        // …and further mutations are in place (no snapshot pins the new gen)
        g.add_edge("vadas", "knows", "josh");
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(28i64));
        assert_eq!(g.stats().deep_clones, 1);
        // the held snapshots still see the frozen generation
        assert!(snaps.iter().all(|s| s.graph().edge_count() == 6));
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn reversed_graph_builds_once_per_generation_and_only_on_demand() {
        let g = classic_social_graph();
        let snap = g.snapshot();
        assert_eq!(g.stats().reversed_builds, 0);
        // two snapshots of one generation share one build
        let snap2 = g.snapshot();
        snap.prewarm_reversed();
        assert_eq!(snap2.reversed().edge_count(), 6);
        assert_eq!(g.stats().reversed_builds, 1);
        // a structural mutation starts a generation whose cache is cold…
        g.add_edge("vadas", "knows", "peter");
        assert_eq!(g.snapshot().reversed().edge_count(), 7);
        assert_eq!(g.stats().reversed_builds, 2);
        // …but a property write that mutates in place keeps the cache
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(28i64));
        let _ = g.snapshot().reversed();
        assert_eq!(g.stats().reversed_builds, 2);
        // even a property write that pays the COW clone carries the cache
        // into the new generation (properties cannot change edge structure)
        let pinned = g.snapshot();
        g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(29i64));
        assert!(g.stats().deep_clones > 0);
        let _ = g.snapshot().reversed();
        assert_eq!(g.stats().reversed_builds, 2, "cache carried across COW");
        drop(pinned);
    }

    #[test]
    fn noop_adds_are_reads_not_mutations() {
        let g = classic_social_graph();
        let gen = g.stats().generation;
        let snap = g.snapshot();
        // re-adding an existing vertex or edge must not bump the epoch, pay
        // a COW clone, or invalidate the reversed cache
        let marko = g.add_vertex("marko");
        let e = g.add_edge("marko", "knows", "vadas");
        assert_eq!(g.stats().generation, gen);
        assert_eq!(g.stats().deep_clones, 0);
        assert_eq!(g.vertex("marko").unwrap(), marko);
        assert_eq!(snap.graph().edge_count(), 6);
        assert!(snap.graph().contains_edge(&e));
    }

    #[test]
    fn remove_edge_by_names_updates_the_store() {
        let g = classic_social_graph();
        assert!(g.remove_edge("marko", "knows", "vadas"));
        assert!(!g.remove_edge("marko", "knows", "vadas"));
        assert!(!g.remove_edge("marko", "likes", "vadas"));
        assert_eq!(g.edge_count(), 5);
        let marko = g.vertex("marko").unwrap();
        let vadas = g.vertex("vadas").unwrap();
        let knows = g.label("knows").unwrap();
        // the edge's properties were dropped with it
        assert_eq!(
            g.edge_property(&Edge::new(marko, knows, vadas), "weight"),
            None
        );
    }

    #[test]
    fn concurrent_reads_and_writes_do_not_deadlock() {
        let g = classic_social_graph();
        let g2 = g.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                g2.add_edge(&format!("p{i}"), "knows", &format!("p{}", i + 1));
            }
            g2.edge_count()
        });
        for _ in 0..100 {
            let _ = g.snapshot().graph().edge_count();
        }
        let count = handle.join().unwrap();
        assert!(count >= 106);
    }
}
