//! Per-stage execution traces: the output of [`crate::Traversal::profile`].
//!
//! A [`QueryTrace`] mirrors the optimized [`crate::LogicalPlan`]: one
//! [`TraceNode`] per plan op plus one for the start frontier, linked
//! downstream-op-as-parent (the root is the last op; the sole leaf is the
//! start). Each node joins the planner's cardinality *estimate* (from
//! [`crate::PlanReport`]) with the executor's *actuals* — rows in/out, pull
//! and chunk counts, monotonic wall time, expansions, and arena appends — so
//! estimate-vs-actual drift is visible per operation.
//!
//! Actuals are recorded by per-thread plain counters (`Cell`, like
//! [`crate::exec::ExecStats`]'s `Counters`) attached to each cursor stage
//! when profiling is enabled; partitioned (parallel-strategy) runs sum their
//! per-partition counters at the partition boundary. There are **no atomics
//! on the hot path**, and with profiling disabled the only residual cost is
//! one branch per pull.
//!
//! Semantics by strategy:
//!
//! * **Streaming / Parallel** — `pulls`/`chunks` count protocol traffic per
//!   stage; times are measured around each pull and reported *exclusive*
//!   (self time, upstream stages subtracted).
//! * **Materialized** — the batch executor applies each op once over the
//!   whole row set, so every node reports `pulls == 1`, `chunks == 0`, and
//!   its wall time is the op's batch application time.

use crate::exec::{ExecStats, ExecutionStrategy};
use crate::plan::PlanReport;
use crate::query::QueryResult;

/// Per-op actuals accumulated during a profiled run, in source-first plan
/// order (index 0 = start frontier, index `i + 1` = plan op `i`). All
/// values are *exclusive* (the op's own work, upstream subtracted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct OpActuals {
    /// Rows the op emitted downstream.
    pub(crate) rows_out: u64,
    /// Scalar pulls answered by the op.
    pub(crate) pulls: u64,
    /// Chunks answered by the op.
    pub(crate) chunks: u64,
    /// Wall time spent in the op itself, nanoseconds.
    pub(crate) nanos: u64,
    /// Edge expansions performed by the op itself.
    pub(crate) expansions: u64,
    /// Arena rows interned by the op itself.
    pub(crate) interned: u64,
}

impl OpActuals {
    pub(crate) fn merge(&mut self, other: &OpActuals) {
        self.rows_out += other.rows_out;
        self.pulls += other.pulls;
        self.chunks += other.chunks;
        self.nanos += other.nanos;
        self.expansions += other.expansions;
        self.interned += other.interned;
    }
}

/// One node of a [`QueryTrace`]: a plan op (or the start frontier, at the
/// leaf) with its estimate and measured actuals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// The op's human-readable description (same text as
    /// [`crate::PlanReport::estimates`]).
    pub op: String,
    /// The planner's estimated row count after this op.
    pub estimated_rows: f64,
    /// Rows this op consumed from its input (0 for the start frontier).
    /// Always equals the child node's `rows_out`.
    pub rows_in: u64,
    /// Rows this op emitted.
    pub rows_out: u64,
    /// Scalar pulls answered by this op.
    pub pulls: u64,
    /// Chunks answered by this op.
    pub chunks: u64,
    /// Wall time in this op alone (upstream excluded), nanoseconds.
    pub self_time_ns: u64,
    /// Wall time in this op and everything upstream of it, nanoseconds.
    pub total_time_ns: u64,
    /// Edge expansions performed by this op alone.
    pub expansions: u64,
    /// Arena rows interned by this op alone.
    pub arena_appends: u64,
    /// Upstream input (empty for the start frontier; at most one element —
    /// plans are chains, but the tree shape is kept general).
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// This subtree flattened source-first (leaf/start before downstream
    /// ops) — the same order as [`crate::PlanReport::estimates`].
    pub fn flatten(&self) -> Vec<&TraceNode> {
        let mut out = Vec::new();
        fn walk<'a>(node: &'a TraceNode, out: &mut Vec<&'a TraceNode>) {
            for child in &node.children {
                walk(child, out);
            }
            out.push(node);
        }
        walk(self, &mut out);
        out
    }
}

/// The full execution trace of one profiled query: the optimized plan's
/// estimate-vs-actual tree plus run-wide totals.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The strategy the run executed under.
    pub strategy: ExecutionStrategy,
    /// End-to-end wall time (plan + compile + drain), nanoseconds.
    pub total_time_ns: u64,
    /// Run-wide counters (same numbers as [`QueryResult::stats`]).
    pub stats: ExecStats,
    /// Root of the trace tree: the plan's final op.
    pub root: TraceNode,
}

impl QueryTrace {
    /// Joins planner estimates with executor actuals into the trace tree.
    /// `actuals` is source-first and aligned with `report.estimates()`.
    pub(crate) fn assemble(
        report: &PlanReport,
        actuals: &[OpActuals],
        strategy: ExecutionStrategy,
        stats: ExecStats,
        total_time_ns: u64,
    ) -> QueryTrace {
        let estimates = report.estimates();
        let mut node: Option<TraceNode> = None;
        let mut upstream_ns = 0u64;
        let mut upstream_rows = 0u64;
        for (i, est) in estimates.iter().enumerate() {
            let a = actuals.get(i).cloned().unwrap_or_default();
            let total_ns = upstream_ns + a.nanos;
            node = Some(TraceNode {
                op: est.op.clone(),
                estimated_rows: est.rows,
                rows_in: if i == 0 { 0 } else { upstream_rows },
                rows_out: a.rows_out,
                pulls: a.pulls,
                chunks: a.chunks,
                self_time_ns: a.nanos,
                total_time_ns: total_ns,
                expansions: a.expansions,
                arena_appends: a.interned,
                children: node.take().into_iter().collect(),
            });
            upstream_ns = total_ns;
            upstream_rows = a.rows_out;
        }
        QueryTrace {
            strategy,
            total_time_ns,
            stats,
            root: node.unwrap_or(TraceNode {
                op: "start(0 vertices)".to_string(),
                estimated_rows: 0.0,
                rows_in: 0,
                rows_out: 0,
                pulls: 0,
                chunks: 0,
                self_time_ns: 0,
                total_time_ns: 0,
                expansions: 0,
                arena_appends: 0,
                children: Vec::new(),
            }),
        }
    }

    /// The trace nodes flattened source-first (start frontier first, final
    /// op last) — aligned with [`crate::PlanReport::estimates`].
    pub fn nodes_source_first(&self) -> Vec<&TraceNode> {
        self.root.flatten()
    }

    /// A multi-line rendering: one row per op, estimate next to actuals.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "strategy: {:?}  total: {:.3}ms  expansions: {}  interned: {}",
            self.strategy,
            self.total_time_ns as f64 / 1e6,
            self.stats.expansions,
            self.stats.interned_nodes,
        );
        let _ = writeln!(
            s,
            "{:>10}  {:>10}  {:>10}  {:>10}  op",
            "est rows", "rows", "self ms", "expand"
        );
        for node in self.nodes_source_first() {
            let _ = writeln!(
                s,
                "{:>10.1}  {:>10}  {:>10.3}  {:>10}  {}",
                node.estimated_rows,
                node.rows_out,
                node.self_time_ns as f64 / 1e6,
                node.expansions,
                node.op
            );
        }
        s
    }
}

/// The result of [`crate::Traversal::profile`]: the query's rows (identical
/// to an unprofiled [`crate::Traversal::execute`]) plus its [`QueryTrace`].
#[derive(Debug, Clone)]
pub struct ProfiledQuery {
    /// The query result, row-for-row identical to an unprofiled run.
    pub result: QueryResult,
    /// The per-stage execution trace.
    pub trace: QueryTrace,
}
