//! Crash recovery: rebuilding a store from its durability directory.
//!
//! Opening a durable store runs one recovery pass:
//!
//! 1. a stale `checkpoint.tmp` (a checkpoint that crashed before its atomic
//!    rename) is deleted — the installed `checkpoint.bin`, if any, is still
//!    the previous complete image;
//! 2. `checkpoint.bin` is read, CRC-validated, and restored into the
//!    canonical base generation (or an empty one if no checkpoint exists);
//! 3. the WAL is scanned and every record with `seqno` greater than the
//!    checkpoint epoch is replayed through the same
//!    [`GraphState::apply`](crate::store) path live mutators use — replayed
//!    and live stores are therefore structurally identical, down to interner
//!    id assignment and adjacency-bucket order.
//!
//! A *torn* WAL tail (truncated final record) is the normal signature of a
//! crash mid-append: the record was never acknowledged, so both open modes
//! silently recover the clean prefix. A *corrupt* tail (checksum or sequence
//! failure on bytes that were once acknowledged) distinguishes the modes:
//! [`PropertyGraph::open`] refuses with [`RecoveryError::CorruptWal`], while
//! [`PropertyGraph::open_recover`] recovers the clean prefix and reports the
//! damage in its [`RecoveryReport`].
//!
//! [`PropertyGraph::open`]: crate::store::PropertyGraph::open
//! [`PropertyGraph::open_recover`]: crate::store::PropertyGraph::open_recover

use std::fmt;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::checkpoint::{read_checkpoint, CHECKPOINT_FILE, CHECKPOINT_TMP};
use crate::error::StoreError;
use crate::store::{GraphState, StoreMetrics};
use crate::wal::{scan_wal, WalTail, WAL_FILE};

/// Why a durability directory could not be (fully) recovered. Carried by
/// [`StoreError::Recovery`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// A durability file does not start with its expected magic bytes.
    BadMagic {
        /// The offending file path.
        file: String,
    },
    /// The checkpoint was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// The offending file path.
        file: String,
        /// The version found.
        version: u32,
    },
    /// The checkpoint file fails validation (checksum, framing, or
    /// referential integrity).
    CorruptCheckpoint {
        /// What failed.
        detail: String,
    },
    /// The WAL contains acknowledged bytes that no longer check out
    /// (strict-open only; a recovering open degrades to clean-prefix replay).
    CorruptWal {
        /// Byte offset of the offending record frame.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// The first WAL record past the checkpoint does not continue the
    /// checkpoint's epoch — records are missing.
    SequenceGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
        /// Byte offset of the offending record frame.
        offset: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadMagic { file } => write!(f, "bad magic in {file}"),
            RecoveryError::UnsupportedVersion { file, version } => {
                write!(f, "unsupported format version {version} in {file}")
            }
            RecoveryError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            RecoveryError::CorruptWal { offset, detail } => {
                write!(f, "corrupt wal record at offset {offset}: {detail}")
            }
            RecoveryError::SequenceGap {
                expected,
                found,
                offset,
            } => write!(
                f,
                "wal sequence gap at offset {offset}: expected seqno {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What one recovery pass did — returned by
/// [`PropertyGraph::open_recover`](crate::store::PropertyGraph::open_recover).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The epoch of the checkpoint the base generation came from (0 when the
    /// directory had no checkpoint).
    pub checkpoint_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// WAL records skipped because the checkpoint already contained them
    /// (possible only after a crash between checkpoint rename and WAL
    /// truncation).
    pub skipped_records: u64,
    /// The store epoch after recovery.
    pub epoch: u64,
    /// How the WAL scan ended. [`WalTail::Torn`] is a normal crash artifact;
    /// [`WalTail::Corrupt`] means acknowledged bytes were damaged and only
    /// the clean prefix was recovered.
    pub wal_tail: WalTail,
    /// Bytes of clean WAL retained (everything past this was discarded).
    pub wal_bytes: u64,
}

/// The product of a recovery pass, consumed by the store constructors.
pub(crate) struct Recovered {
    pub(crate) state: GraphState,
    pub(crate) epoch: u64,
    /// Clean-prefix end of the WAL; the writer truncates to this on open.
    pub(crate) wal_clean_end: u64,
    pub(crate) report: RecoveryReport,
}

/// Runs one recovery pass over `dir`. `strict` controls the corrupt-WAL
/// policy (refuse vs. clean-prefix replay); checkpoint corruption is always
/// refused, since the atomic-rename protocol means a crash cannot produce a
/// half-written `checkpoint.bin` — damage there is real damage.
pub(crate) fn recover(
    dir: &Path,
    strict: bool,
    metrics: Arc<StoreMetrics>,
) -> Result<Recovered, StoreError> {
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("creating store directory", &e))?;
    // a stale tmp is a checkpoint that never committed — discard it
    match std::fs::remove_file(dir.join(CHECKPOINT_TMP)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::io("removing stale checkpoint.tmp", &e)),
    }
    let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE))?;
    let checkpoint_epoch = checkpoint.as_ref().map_or(0, |c| c.epoch);
    let mut state = match &checkpoint {
        Some(data) => data.restore(Arc::clone(&metrics))?,
        None => GraphState::with_metrics(Arc::clone(&metrics)),
    };

    let scan = scan_wal(&dir.join(WAL_FILE))?;
    if strict {
        if let WalTail::Corrupt { offset, detail } = &scan.tail {
            return Err(StoreError::Recovery(RecoveryError::CorruptWal {
                offset: *offset,
                detail: detail.clone(),
            }));
        }
    }
    let mut epoch = checkpoint_epoch;
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    for rec in &scan.records {
        if rec.seqno <= checkpoint_epoch {
            // the checkpoint already contains this record's effect (a crash
            // landed between rename and WAL truncation)
            skipped += 1;
            continue;
        }
        if rec.seqno != epoch + 1 {
            return Err(StoreError::Recovery(RecoveryError::SequenceGap {
                expected: epoch + 1,
                found: rec.seqno,
                offset: rec.offset,
            }));
        }
        state.apply(&rec.op);
        epoch = rec.seqno;
        replayed += 1;
    }
    metrics
        .replayed_records
        .fetch_add(replayed, Ordering::Relaxed);
    let wal_clean_end = scan.clean_end();
    Ok(Recovered {
        state,
        epoch,
        wal_clean_end,
        report: RecoveryReport {
            checkpoint_epoch,
            replayed_records: replayed,
            skipped_records: skipped,
            epoch,
            wal_tail: scan.tail,
            wal_bytes: wal_clean_end,
        },
    })
}
