//! Error types for the traversal engine.

use core::fmt;

/// Errors raised by the traversal engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A vertex name could not be resolved.
    UnknownVertex(String),
    /// A label name could not be resolved.
    UnknownLabel(String),
    /// The traversal exceeded a configured bound.
    BoundExceeded {
        /// The bound that was exceeded.
        bound: usize,
        /// What exceeded it.
        what: &'static str,
    },
    /// A `match_` path pattern failed to parse or compile.
    InvalidPattern(String),
    /// A weighted traversal could not resolve a usable weight for a traversed
    /// edge (missing/non-numeric property, label absent from the weight
    /// table, non-finite value, or a negative weight under shortest-path
    /// search).
    BadWeight(String),
    /// The pipeline asked for a step combination the planner does not support.
    Unsupported(String),
    /// The traversal was cancelled mid-flight — its
    /// [`CancelToken`](crate::CancelToken) fired or its deadline passed.
    /// Cancellation is cooperative and clean: the cursor is fused, no state
    /// is poisoned, and the store remains fully usable.
    Cancelled,
    /// The traversal charged more bytes against its
    /// [`memory_budget`](crate::Traversal::memory_budget) than the budget
    /// allows. Like [`EngineError::Cancelled`], this suspends the execution
    /// cleanly mid-frontier: the cursor is fused, suspended walker state is
    /// dropped, and the store remains fully usable.
    MemoryBudget {
        /// The configured budget in bytes.
        limit: u64,
        /// Bytes charged when the budget tripped (the first charge past the
        /// limit is included, so `charged > limit`).
        charged: u64,
    },
    /// A lower-level algebra error.
    Core(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownVertex(n) => write!(f, "unknown vertex {n:?}"),
            EngineError::UnknownLabel(n) => write!(f, "unknown label {n:?}"),
            EngineError::BoundExceeded { bound, what } => {
                write!(f, "{what} exceeded bound {bound}")
            }
            EngineError::InvalidPattern(msg) => write!(f, "invalid path pattern: {msg}"),
            EngineError::BadWeight(msg) => write!(f, "bad edge weight: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported pipeline: {msg}"),
            EngineError::Cancelled => {
                write!(f, "traversal cancelled (deadline exceeded or token fired)")
            }
            EngineError::MemoryBudget { limit, charged } => {
                write!(
                    f,
                    "memory budget exhausted: {charged} bytes charged against a {limit}-byte budget"
                )
            }
            EngineError::Core(msg) => write!(f, "algebra error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<mrpa_core::CoreError> for EngineError {
    fn from(e: mrpa_core::CoreError) -> Self {
        match e {
            mrpa_core::CoreError::BoundExceeded { bound, what } => {
                EngineError::BoundExceeded { bound, what }
            }
            other => EngineError::Core(other.to_string()),
        }
    }
}

impl From<mrpa_regex::RegexError> for EngineError {
    fn from(e: mrpa_regex::RegexError) -> Self {
        match e {
            // label names in a pattern resolve through the same interner as
            // `.out([...])` labels, so they surface as the same error
            mrpa_regex::RegexError::UnknownLabelName(n) => EngineError::UnknownLabel(n),
            other => EngineError::InvalidPattern(other.to_string()),
        }
    }
}

/// Errors raised by the durable store: WAL appends, checkpointing, and
/// recovery. Mutation failures on a durable [`PropertyGraph`] surface as this
/// type through the `try_*` mutators.
///
/// [`PropertyGraph`]: crate::store::PropertyGraph
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An operating-system IO failure (the underlying `std::io::Error` is
    /// rendered to a string so the error stays `Clone`/`PartialEq`).
    Io {
        /// What the store was doing when the failure happened.
        context: &'static str,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// A deterministic fault-injection hook fired (tests only; see
    /// [`FailPoint`](crate::wal::FailPoint)).
    Injected(crate::wal::FailPoint),
    /// A previous WAL failure left the in-memory generation ahead of (or
    /// diverged from) the log; further mutations are refused until the store
    /// is reopened. Reads and snapshots keep working.
    Poisoned,
    /// A durability-only operation (`persist`, `checkpoint`) was invoked on an
    /// in-memory store.
    NotDurable,
    /// Opening a store found on-disk state that cannot be recovered from (or,
    /// under strict open, a corrupt WAL tail).
    Recovery(crate::recovery::RecoveryError),
}

impl StoreError {
    pub(crate) fn io(context: &'static str, e: &std::io::Error) -> Self {
        StoreError::Io {
            context,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, message } => {
                write!(f, "io error while {context}: {message}")
            }
            StoreError::Injected(point) => write!(f, "injected failure at {point}"),
            StoreError::Poisoned => {
                write!(f, "store is poisoned by an earlier WAL failure; reopen it")
            }
            StoreError::NotDurable => write!(f, "store has no durability directory"),
            StoreError::Recovery(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<crate::recovery::RecoveryError> for StoreError {
    fn from(e: crate::recovery::RecoveryError) -> Self {
        StoreError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(EngineError::UnknownVertex("x".into())
            .to_string()
            .contains("x"));
        assert!(EngineError::UnknownLabel("y".into())
            .to_string()
            .contains("y"));
        assert!(EngineError::BoundExceeded {
            bound: 5,
            what: "frontier"
        }
        .to_string()
        .contains("5"));
        let converted: EngineError = mrpa_core::CoreError::EmptyPath.into();
        assert!(matches!(converted, EngineError::Core(_)));
        let converted: EngineError = mrpa_core::CoreError::BoundExceeded {
            bound: 7,
            what: "paths",
        }
        .into();
        assert!(matches!(
            converted,
            EngineError::BoundExceeded { bound: 7, .. }
        ));
    }
}
