//! Error types for the traversal engine.

use core::fmt;

/// Errors raised by the traversal engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A vertex name could not be resolved.
    UnknownVertex(String),
    /// A label name could not be resolved.
    UnknownLabel(String),
    /// The traversal exceeded a configured bound.
    BoundExceeded {
        /// The bound that was exceeded.
        bound: usize,
        /// What exceeded it.
        what: &'static str,
    },
    /// A `match_` path pattern failed to parse or compile.
    InvalidPattern(String),
    /// A weighted traversal could not resolve a usable weight for a traversed
    /// edge (missing/non-numeric property, label absent from the weight
    /// table, non-finite value, or a negative weight under shortest-path
    /// search).
    BadWeight(String),
    /// The pipeline asked for a step combination the planner does not support.
    Unsupported(String),
    /// A lower-level algebra error.
    Core(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownVertex(n) => write!(f, "unknown vertex {n:?}"),
            EngineError::UnknownLabel(n) => write!(f, "unknown label {n:?}"),
            EngineError::BoundExceeded { bound, what } => {
                write!(f, "{what} exceeded bound {bound}")
            }
            EngineError::InvalidPattern(msg) => write!(f, "invalid path pattern: {msg}"),
            EngineError::BadWeight(msg) => write!(f, "bad edge weight: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported pipeline: {msg}"),
            EngineError::Core(msg) => write!(f, "algebra error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<mrpa_core::CoreError> for EngineError {
    fn from(e: mrpa_core::CoreError) -> Self {
        match e {
            mrpa_core::CoreError::BoundExceeded { bound, what } => {
                EngineError::BoundExceeded { bound, what }
            }
            other => EngineError::Core(other.to_string()),
        }
    }
}

impl From<mrpa_regex::RegexError> for EngineError {
    fn from(e: mrpa_regex::RegexError) -> Self {
        match e {
            // label names in a pattern resolve through the same interner as
            // `.out([...])` labels, so they surface as the same error
            mrpa_regex::RegexError::UnknownLabelName(n) => EngineError::UnknownLabel(n),
            other => EngineError::InvalidPattern(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(EngineError::UnknownVertex("x".into())
            .to_string()
            .contains("x"));
        assert!(EngineError::UnknownLabel("y".into())
            .to_string()
            .contains("y"));
        assert!(EngineError::BoundExceeded {
            bound: 5,
            what: "frontier"
        }
        .to_string()
        .contains("5"));
        let converted: EngineError = mrpa_core::CoreError::EmptyPath.into();
        assert!(matches!(converted, EngineError::Core(_)));
        let converted: EngineError = mrpa_core::CoreError::BoundExceeded {
            bound: 7,
            what: "paths",
        }
        .into();
        assert!(matches!(
            converted,
            EngineError::BoundExceeded { bound: 7, .. }
        ));
    }
}
