//! Process-wide metrics registry: named counters, gauges, and fixed-bucket
//! latency histograms with a lock-free fast path.
//!
//! The registry is a process-global singleton ([`registry`]). Metrics are
//! registered once (under a `Mutex`, first use only) and handed out as
//! `&'static` references whose update methods are single atomic operations —
//! no locks, no allocation, no formatting on the hot path. Call sites cache
//! the reference in a `OnceLock` so steady-state cost is one relaxed atomic
//! RMW per event.
//!
//! Two export formats are supported:
//!
//! * [`Registry::snapshot`] — a typed dump for programmatic consumers (the
//!   server renders it as JSON for the `metrics` op).
//! * [`Registry::render_prometheus`] — Prometheus text exposition format
//!   (`# HELP` / `# TYPE` lines, `_bucket{le="..."}` series, escaped help
//!   text) for scraping.
//!
//! Histograms use a fixed microsecond bucket ladder ([`BUCKET_BOUNDS_US`]):
//! 50µs → 5s plus a `+Inf` overflow bucket. Buckets are stored
//! non-cumulative internally and accumulated at snapshot/render time, so
//! `observe` is two atomic increments and one atomic add.
//!
//! The engine feeds this registry from query execution
//! ([`crate::pipeline::Traversal`] terminals), snapshot/COW/CSR/reversed
//! builds, WAL appends and fsyncs, and checkpoint/recovery durations. The
//! metric name tables live in the README's Observability section.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Upper bounds (inclusive, microseconds) of the histogram buckets; an
/// implicit `+Inf` bucket follows the last entry.
pub const BUCKET_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000,
];

const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1; // + the +Inf bucket

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds `n` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge to `n`.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    #[inline]
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of an elapsed [`Duration`].
    #[inline]
    pub fn observe(&self, elapsed: Duration) {
        self.observe_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts aligned with [`BUCKET_BOUNDS_US`] plus the
    /// trailing `+Inf` bucket (last entry equals [`Histogram::count`], up to
    /// concurrent-update skew).
    pub fn cumulative_buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        let mut acc = 0u64;
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            acc += bucket.load(Ordering::Relaxed);
            *slot = acc;
        }
        out
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram: cumulative bucket counts (aligned with
    /// [`BUCKET_BOUNDS_US`] + `+Inf`), sum of observations (µs), and count.
    Histogram {
        /// Cumulative counts per bucket, `+Inf` last.
        buckets: Vec<u64>,
        /// Sum of all observations, microseconds.
        sum_us: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One named metric in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered metric name (Prometheus-safe: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The metric's value at snapshot time.
    pub value: MetricValue,
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    slot: Slot,
}

/// A named-metric registry. Use the process-global one via [`registry`].
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// Returns the counter registered under `name`, registering it (with
    /// `help`) on first use. Panics if `name` is already registered as a
    /// different metric kind. Call sites should cache the returned
    /// reference (e.g. in a `OnceLock`) — registration takes a lock.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                match e.slot {
                    Slot::Counter(c) => return c,
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::default());
        entries.push(Entry {
            name,
            help,
            slot: Slot::Counter(c),
        });
        c
    }

    /// Returns the gauge registered under `name`, registering it on first
    /// use. Same contract as [`Registry::counter`].
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                match e.slot {
                    Slot::Gauge(g) => return g,
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::default());
        entries.push(Entry {
            name,
            help,
            slot: Slot::Gauge(g),
        });
        g
    }

    /// Returns the histogram registered under `name`, registering it on
    /// first use. Same contract as [`Registry::counter`].
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name {
                match e.slot {
                    Slot::Histogram(h) => return h,
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::default());
        entries.push(Entry {
            name,
            help,
            slot: Slot::Histogram(h),
        });
        h
    }

    /// A typed dump of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name,
                help: e.help,
                value: match e.slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram {
                        buckets: h.cumulative_buckets().to_vec(),
                        sum_us: h.sum_us(),
                        count: h.count(),
                    },
                },
            })
            .collect();
        out.sort_by_key(|s| s.name);
        out
    }

    /// Renders every registered metric in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` preambles, histogram
    /// `_bucket{le="..."}` / `_sum` / `_count` series, and backslash-escaped
    /// help text. Bucket `le` labels are microsecond bounds (the `_us` name
    /// suffix carries the unit).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for m in self.snapshot() {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(m.help));
            match m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Histogram {
                    buckets,
                    sum_us,
                    count,
                } => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    for (i, v) in buckets.iter().enumerate() {
                        let le = match BUCKET_BOUNDS_US.get(i) {
                            Some(bound) => bound.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            m.name,
                            escape_label(&le),
                            v
                        );
                    }
                    let _ = writeln!(out, "{}_sum {}", m.name, sum_us);
                    let _ = writeln!(out, "{}_count {}", m.name, count);
                }
            }
        }
        out
    }
}

/// Escapes a `# HELP` line: backslash and newline per the exposition format.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, and newline.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Defines a zero-argument accessor that registers a metric on first call
/// and caches the `&'static` handle, so steady-state use is lock-free.
macro_rules! cached_metric {
    ($(#[$doc:meta])* $vis:vis fn $f:ident: $kind:ident($name:literal, $help:literal);) => {
        $(#[$doc])*
        $vis fn $f() -> &'static $kind {
            static M: OnceLock<&'static $kind> = OnceLock::new();
            M.get_or_init(|| {
                let r = registry();
                cached_metric!(@get r, $kind, $name, $help)
            })
        }
    };
    (@get $r:ident, Counter, $name:literal, $help:literal) => { $r.counter($name, $help) };
    (@get $r:ident, Gauge, $name:literal, $help:literal) => { $r.gauge($name, $help) };
    (@get $r:ident, Histogram, $name:literal, $help:literal) => { $r.histogram($name, $help) };
}

cached_metric! {
    /// Queries executed to completion through any [`crate::Traversal`]
    /// terminal (`execute`/`count`/`exists`/`first`/`profile`).
    pub fn queries_total: Counter("mrpa_queries_total", "Queries executed through a Traversal terminal");
}
cached_metric! {
    /// End-to-end query execution latency (compile + drain), microseconds.
    pub fn query_latency: Histogram("mrpa_query_latency_us", "Query execution latency in microseconds");
}
cached_metric! {
    /// Automaton/expansion edge visits across all queries.
    pub fn query_expansions: Counter("mrpa_query_expansions_total", "Edge expansions performed by query execution");
}
cached_metric! {
    /// Rows interned into path arenas across all queries.
    pub fn query_interned: Counter("mrpa_query_interned_total", "Rows interned into path arenas by query execution");
}
cached_metric! {
    /// O(1) COW snapshots taken of any store.
    pub fn snapshots_total: Counter("mrpa_store_snapshots_total", "COW snapshots taken");
}
cached_metric! {
    /// Full deep clones of graph state (COW fault on a shared generation).
    pub fn deep_clones_total: Counter("mrpa_store_deep_clones_total", "Copy-on-write deep clones of graph state");
}
cached_metric! {
    /// Lazy reversed-adjacency builds (one per generation that needs one).
    pub fn reversed_builds_total: Counter("mrpa_store_reversed_builds_total", "Reversed adjacency index builds");
}
cached_metric! {
    /// Lazy CSR topology builds (per generation × direction).
    pub fn csr_builds_total: Counter("mrpa_store_csr_builds_total", "CSR topology snapshot builds");
}
cached_metric! {
    /// WAL records appended (acknowledged mutations).
    pub fn wal_records_total: Counter("mrpa_wal_records_total", "WAL records appended");
}
cached_metric! {
    /// WAL fsyncs (`sync_data`) issued by persist/checkpoint/truncate.
    pub fn wal_fsyncs_total: Counter("mrpa_wal_fsyncs_total", "WAL fsync (sync_data) calls");
}
cached_metric! {
    /// Checkpoints written.
    pub fn checkpoints_total: Counter("mrpa_checkpoints_total", "Checkpoints written");
}
cached_metric! {
    /// Bytes written into checkpoint files (before rename).
    pub fn checkpoint_bytes_total: Counter("mrpa_checkpoint_bytes_total", "Bytes written to checkpoint files");
}
cached_metric! {
    /// End-to-end checkpoint duration (capture + write + fsync + truncate).
    pub fn checkpoint_latency: Histogram("mrpa_checkpoint_duration_us", "Checkpoint duration in microseconds");
}
cached_metric! {
    /// Recovery duration on `open` (checkpoint load + WAL replay).
    pub fn recovery_latency: Histogram("mrpa_recovery_duration_us", "Store open/recovery duration in microseconds");
}
cached_metric! {
    /// Live snapshot count across all stores (gauge; rises and falls with
    /// snapshot lifetimes).
    pub fn live_snapshots_gauge: Gauge("mrpa_store_live_snapshots", "Currently live COW snapshots");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = registry().counter("test_counter_total", "test");
        let before = c.get();
        c.inc();
        c.add(2);
        assert_eq!(c.get(), before + 3);
        // Re-registration under the same name returns the same handle.
        let again = registry().counter("test_counter_total", "test");
        assert_eq!(again.get(), before + 3);

        let g = registry().gauge("test_gauge", "test");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = registry().histogram("test_hist_us", "test");
        h.observe_us(40); // bucket 0 (<=50)
        h.observe_us(60); // bucket 1 (<=100)
        h.observe_us(10_000_000); // +Inf
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[BUCKETS - 1], 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 40 + 60 + 10_000_000);
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_inf_bucket() {
        let h = registry().histogram("test_render_us", "a help line with \\ backslash");
        h.observe_us(1);
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE test_render_us histogram"));
        assert!(text.contains("test_render_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_render_us_sum"));
        assert!(text.contains("test_render_us_count"));
        assert!(text.contains("a help line with \\\\ backslash"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        registry().counter("test_kind_clash", "test");
        registry().gauge("test_kind_clash", "test");
    }
}
