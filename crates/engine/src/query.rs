//! Query results: the rows produced by executing a traversal.
//!
//! A [`QueryResult`] is a thin collect of the execution cursor: `execute()`
//! drains the strategy's [`RowCursor`](crate::RowCursor) into a row vector
//! and attaches the work counters. Consumers that do not need every row
//! should use the cursor (or the `first`/`exists`/`count` terminals) instead.

use mrpa_core::{Path, PathSet, VertexId};

use crate::exec::ExecStats;
use crate::store::GraphSnapshot;

/// One result row: where the traversal started, the path it took (ε if no
/// expansion step has run), the vertex it currently sits on, and — when a
/// weighted step produced it — the path's semiring cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// The start vertex of this row.
    pub source: VertexId,
    /// The path of edges traversed so far (ε when no expansion has happened).
    pub path: Path,
    /// The vertex the row currently rests on (`γ⁺(path)`, or `source` for ε).
    pub head: VertexId,
    /// The semiring cost assigned by the most recent weighted step
    /// (`cheapest_`/`widest_`): the `⊗`-fold of that step's edge weights
    /// along `path`'s weighted segment. `None` when no weighted step has
    /// run; preserved unchanged through filters, dedup, limits, and
    /// unweighted expansions.
    pub weight: Option<f64>,
}

/// The result of executing a traversal.
#[derive(Debug, Clone)]
pub struct QueryResult {
    rows: Vec<ResultRow>,
    snapshot: GraphSnapshot,
    stats: ExecStats,
}

impl QueryResult {
    pub(crate) fn new(rows: Vec<ResultRow>, snapshot: GraphSnapshot, stats: ExecStats) -> Self {
        QueryResult {
            rows,
            snapshot,
            stats,
        }
    }

    /// Work counters for the execution that produced this result (e.g. the
    /// number of adjacency entries the expansion ops visited).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The result rows in executor order.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The current (head) vertex of every row, in executor order.
    pub fn heads(&self) -> Vec<VertexId> {
        self.rows.iter().map(|r| r.head).collect()
    }

    /// The distinct head vertices, in ascending id order.
    pub fn distinct_heads(&self) -> Vec<VertexId> {
        let mut hs = self.heads();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// The per-row semiring costs, in executor order (`None` for rows no
    /// weighted step produced).
    pub fn weights(&self) -> Vec<Option<f64>> {
        self.rows.iter().map(|r| r.weight).collect()
    }

    /// The head vertices rendered as names, in executor (row) order —
    /// consistent with [`QueryResult::heads`] and [`QueryResult::rows`].
    pub fn head_names(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| self.snapshot.render_vertex(r.head))
            .collect()
    }

    /// The head vertices rendered as names, sorted alphabetically (duplicates
    /// kept). Use this when asserting on results whose row order is
    /// strategy-dependent.
    pub fn head_names_sorted(&self) -> Vec<String> {
        let mut names = self.head_names();
        names.sort();
        names
    }

    /// The traversed paths as a [`PathSet`] (ε rows contribute ε).
    pub fn paths(&self) -> PathSet {
        self.rows.iter().map(|r| r.path.clone()).collect()
    }

    /// Renders every row as `source -[path]-> head` using vertex names.
    pub fn render_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                format!(
                    "{} -[{} edges]-> {}",
                    self.snapshot.render_vertex(r.source),
                    r.path.len(),
                    self.snapshot.render_vertex(r.head)
                )
            })
            .collect()
    }

    /// The snapshot the query ran against.
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Traversal;
    use crate::store::classic_social_graph;

    #[test]
    fn result_exposes_rows_heads_and_paths() {
        let g = classic_social_graph();
        let r = Traversal::over(&g)
            .v(["marko"])
            .out(["knows"])
            .execute()
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.heads().len(), 2);
        assert_eq!(r.distinct_heads().len(), 2);
        // head_names preserves row order (marko's knows-edges were inserted
        // vadas first); head_names_sorted sorts alphabetically
        assert_eq!(r.head_names(), vec!["vadas", "josh"]);
        assert_eq!(r.head_names_sorted(), vec!["josh", "vadas"]);
        let row_order: Vec<String> = r
            .heads()
            .iter()
            .map(|&v| r.snapshot().render_vertex(v))
            .collect();
        assert_eq!(r.head_names(), row_order);
        let paths = r.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.len() == 1));
        assert_eq!(r.render_rows().len(), 2);
        assert!(r.render_rows()[0].contains("marko"));
        assert_eq!(r.snapshot().graph().edge_count(), 6);
    }

    #[test]
    fn start_only_traversal_has_epsilon_paths() {
        let g = classic_social_graph();
        let r = Traversal::over(&g).v(["marko"]).execute().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0].path, Path::epsilon());
        assert_eq!(r.rows()[0].source, r.rows()[0].head);
    }
}
