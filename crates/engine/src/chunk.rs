//! Chunked (vectorized) row transport for the pull-based cursor protocol.
//!
//! The scalar cursor protocol ([`crate::cursor`]) moves one arena row per
//! `pull` — the right granularity for `limit(k)`/`first()` early exit, but a
//! full drain pays per-row virtual dispatch, per-row budget checks, and (for
//! `Expand`) one arena-writer acquisition per input row. The chunked path
//! widens the protocol: `Stage::pull_chunk` appends **up to ~[`DEFAULT_CHUNK_SIZE`]
//! rows per call** into a caller-provided [`RowChunk`] buffer, amortizing
//! dispatch over the whole batch and letting expansion stages run their
//! cache-linear CSR scans (see [`crate::csr`]) over entire frontiers under a
//! single arena writer.
//!
//! The scalar `pull` remains the only protocol for early-exit consumption
//! (`first()`, `exists()`, external iteration, `limit` terminals), so
//! suspension semantics, `CancelToken` deadlines, and the
//! expansion-counter guarantees of streaming early exit are untouched;
//! full-drain terminals (`Traversal::execute`, `exec::execute`) switch to
//! chunks. Both paths produce identical row sequences — proven row-for-row
//! (rows, weights, expansion counts) by `tests/vectorized_equivalence.rs`.

use crate::exec::ArenaRow;

/// Target rows per chunk pull. ~2048 rows keeps a chunk of 32-byte arena
/// rows around 64 KiB — comfortably L2-resident while still amortizing
/// per-chunk dispatch to noise (the same default miniGU's `DataChunk`
/// executor uses). Override per traversal with `Traversal::chunk_size`.
pub const DEFAULT_CHUNK_SIZE: usize = 2048;

/// Outcome of one chunked pull (`Stage::pull_chunk`).
///
/// The contract mirrors the scalar protocol's three outcomes, lifted to
/// batches: a stage appends as many rows as it can toward the caller's
/// target (overshoot is allowed — composite walkers finish their current
/// layer), and only reports `Done`/`Starved` on calls that append nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkPull {
    /// At least one row was appended; pull again for more.
    Rows,
    /// Nothing was appended and nothing ever will be (the scalar protocol's
    /// `Break`): the stage and everything upstream is exhausted.
    Done,
    /// Nothing was appended but rows may still arrive (a `Feed` source
    /// awaiting its next batch; only reachable in fed pipelines).
    Starved,
}

/// A reusable buffer of arena rows moved through `pull_chunk` — the chunked
/// protocol's unit of transport. Cleared and refilled per pull by the
/// cursor's chunked drain, so a full traversal allocates one chunk, not one
/// per batch.
#[derive(Debug, Default)]
pub struct RowChunk {
    pub(crate) rows: Vec<ArenaRow>,
}

impl RowChunk {
    /// An empty chunk with capacity for `target` rows.
    pub fn with_target(target: usize) -> RowChunk {
        RowChunk {
            rows: Vec::with_capacity(target),
        }
    }

    /// Number of rows currently in the chunk.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Empties the chunk, keeping its allocation for the next pull.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_reuses_allocation_across_clears() {
        let mut c = RowChunk::with_target(DEFAULT_CHUNK_SIZE);
        assert!(c.is_empty());
        assert!(c.rows.capacity() >= DEFAULT_CHUNK_SIZE);
        let cap = c.rows.capacity();
        c.clear();
        assert_eq!(c.rows.capacity(), cap);
        assert_eq!(c.len(), 0);
    }
}
