//! Canonical MRPA-QL rendering: AST → text that reparses to the same AST.
//!
//! [`pretty`] is the inverse of [`crate::parse`] up to surface sugar: the
//! `dst.` prefix is dropped, `TOP` canonicalises to `LIMIT`, and keywords are
//! upper-cased, but re-parsing the rendered text always yields a query that
//! lowers to identical steps (the `roundtrip` property tests pin this for
//! the whole grammar). Names are quoted only when they must be — non-word
//! characters or a keyword collision.

use std::fmt::Write as _;

use mrpa_engine::plan::{Direction, SemiringKind};
use mrpa_engine::{Predicate, Value, WeightSpec};

use crate::ast::{Clause, MatchMode, Query, StartAst, Terminal};
use crate::parser::is_reserved;

/// Renders a query in canonical form.
///
/// ```
/// use mrpa_query::{parse, pretty};
///
/// let q = parse(r#"from marko  match -[knows+]->  top 3"#).unwrap();
/// assert_eq!(pretty(&q), "FROM marko MATCH -[knows+]-> LIMIT 3");
/// ```
pub fn pretty(query: &Query) -> String {
    let mut out = String::new();
    if query.explain {
        out.push_str("EXPLAIN ");
    } else if query.profile {
        out.push_str("PROFILE ");
    }
    out.push_str("FROM ");
    match &query.start {
        StartAst::All => out.push('*'),
        StartAst::Named { kind, names } => {
            if let Some(kind) = kind {
                out.push_str(&name(kind));
                out.push(':');
            }
            out.push_str(&name_list(names));
        }
        StartAst::Where { key, pred } => {
            let _ = write!(out, "({})", condition(key, pred));
        }
    }
    for clause in &query.clauses {
        out.push(' ');
        write_clause(&mut out, clause);
    }
    match query.terminal {
        Terminal::Rows => {}
        Terminal::Count => out.push_str(" COUNT"),
        Terminal::Exists => out.push_str(" EXISTS"),
        Terminal::First => out.push_str(" FIRST"),
    }
    out
}

fn write_clause(out: &mut String, clause: &Clause) {
    match clause {
        Clause::Match {
            pattern,
            direction,
            mode,
            within,
            ..
        } => {
            out.push_str("MATCH ");
            match mode {
                MatchMode::Walks => {}
                MatchMode::Reachable => out.push_str("REACHABLE "),
                MatchMode::Global => out.push_str("GLOBAL "),
            }
            match direction {
                Direction::In => {
                    let _ = write!(out, "<-[{pattern}]-");
                }
                _ => {
                    let _ = write!(out, "-[{pattern}]->");
                }
            }
            if let Some(n) = within {
                let _ = write!(out, " WITHIN {n}");
            }
        }
        Clause::Weighted {
            semiring, weight, ..
        } => {
            out.push_str(match semiring {
                SemiringKind::Shortest => "CHEAPEST",
                SemiringKind::Widest => "WIDEST",
            });
            match weight {
                WeightSpec::Unit => {}
                WeightSpec::Property(key) => {
                    let _ = write!(out, " BY {}", name(key));
                }
                WeightSpec::Labels(table) => {
                    out.push_str(" BY LABELS(");
                    for (i, (label, w)) in table.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{} = {}", name(label), float(*w));
                    }
                    out.push(')');
                }
            }
        }
        Clause::Out(labels) => write_labels(out, "OUT", labels),
        Clause::In(labels) => write_labels(out, "IN", labels),
        Clause::Both(labels) => write_labels(out, "BOTH", labels),
        Clause::Where { key, pred } => {
            let _ = write!(out, "WHERE {}", condition(key, pred));
        }
        Clause::Is(names) => {
            let _ = write!(out, "IS {}", name_list(names));
        }
        Clause::Dedup => out.push_str("DEDUP"),
        Clause::Limit(n) => {
            let _ = write!(out, "LIMIT {n}");
        }
        Clause::Repeat {
            min,
            max,
            body,
            until,
            ..
        } => {
            let _ = write!(out, "REPEAT {{{min},{max}}} (");
            for clause in body {
                out.push(' ');
                write_clause(out, clause);
            }
            out.push_str(" )");
            if let Some((key, pred)) = until {
                let _ = write!(out, " UNTIL {}", condition(key, pred));
            }
        }
    }
}

fn write_labels(out: &mut String, verb: &str, labels: &Option<Vec<String>>) {
    match labels {
        None => {
            let _ = write!(out, "{verb} *");
        }
        Some(labels) => {
            let _ = write!(out, "{verb} {}", name_list(labels));
        }
    }
}

fn condition(key: &str, pred: &Predicate) -> String {
    let key = name(key);
    match pred {
        Predicate::Eq(v) => format!("{key} = {}", value(v)),
        Predicate::Ne(v) => format!("{key} != {}", value(v)),
        Predicate::Lt(x) => format!("{key} < {}", number(*x)),
        Predicate::Le(x) => format!("{key} <= {}", number(*x)),
        Predicate::Gt(x) => format!("{key} > {}", number(*x)),
        Predicate::Ge(x) => format!("{key} >= {}", number(*x)),
        Predicate::Contains(s) => format!("{key} CONTAINS {}", quote(s)),
        Predicate::Exists => format!("{key} EXISTS"),
        Predicate::Within(vs) => {
            let items: Vec<String> = vs.iter().map(value).collect();
            format!("{key} IN ({})", items.join(", "))
        }
    }
}

fn value(v: &Value) -> String {
    match v {
        Value::Bool(true) => "TRUE".into(),
        Value::Bool(false) => "FALSE".into(),
        Value::Int(n) => n.to_string(),
        // must reparse as Float, so integral floats keep a ".0"
        Value::Float(x) => float(*x),
        Value::Text(s) => quote(s),
    }
}

/// A float literal that reparses as [`Value::Float`] (never as an integer).
fn float(x: f64) -> String {
    if x == x.trunc() && x.is_finite() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// A numeric literal for predicates that store `f64` either way — minimal
/// form, an integral value prints without the fraction.
fn number(x: f64) -> String {
    if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// A name, quoted only if it would not re-lex as one bare word.
fn name(s: &str) -> String {
    let mut chars = s.chars();
    let bare = match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {
            chars.all(|c| c.is_alphanumeric() || c == '_') && !is_reserved(s)
        }
        // bare integers are valid names too — but only in the form the lexer
        // would reproduce ("042" re-lexes as 42, so it must be quoted)
        Some(c) if c.is_ascii_digit() => s
            .parse::<i64>()
            .map(|n| n.to_string() == s)
            .unwrap_or(false),
        _ => false,
    };
    if bare {
        s.to_owned()
    } else {
        quote(s)
    }
}

fn name_list(names: &[String]) -> String {
    let quoted: Vec<String> = names.iter().map(|n| name(n)).collect();
    quoted.join(", ")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    /// parse → pretty → parse must be a fixpoint: the pretty form reparses,
    /// re-renders identically, and lowers to the same steps.
    fn roundtrip(input: &str) {
        let q1 = parse(input).unwrap_or_else(|e| panic!("{}", e.render(input)));
        let text = pretty(&q1);
        let q2 = parse(&text).unwrap_or_else(|e| panic!("{text:?}: {}", e.render(&text)));
        assert_eq!(pretty(&q2), text, "pretty is not a fixpoint for {input:?}");
        assert_eq!(
            lower(&q1).unwrap().steps,
            lower(&q2).unwrap().steps,
            "lowering diverged for {input:?}"
        );
        assert_eq!(lower(&q1).unwrap().start, lower(&q2).unwrap().start);
    }

    #[test]
    fn roundtrips_cover_the_grammar() {
        for q in [
            "FROM *",
            "FROM marko",
            "FROM person:marko, vadas",
            r#"FROM (age > 30)"#,
            r#"FROM ("kind" = "person")"#,
            "FROM * OUT * IN knows BOTH a, b DEDUP LIMIT 3",
            "FROM marko MATCH -[knows+·created]->",
            "FROM marko MATCH REACHABLE -[_+]->",
            "FROM marko MATCH GLOBAL -[(a|b)*]-> WITHIN 5",
            "FROM lop MATCH <-[created·knows]-",
            r#"FROM marko MATCH -[knows+]-> WHERE dst.lang = "java" CHEAPEST BY weight LIMIT 3"#,
            "FROM marko MATCH -[a]-> WIDEST BY LABELS(knows = 1.0, created = 2.5)",
            "FROM marko MATCH -[a]-> WITHIN 7 CHEAPEST",
            r#"FROM * REPEAT {0,3} ( OUT knows DEDUP ) UNTIL lang = "java""#,
            "FROM * REPEAT {1,2} ( MATCH -[x]-> CHEAPEST BY w )",
            r#"FROM * WHERE a = 1 WHERE b != 2.5 WHERE c < 3 WHERE d >= 6.5 WHERE g CONTAINS "x" WHERE h EXISTS WHERE i IN ("a", 2, TRUE, 2.0)"#,
            r#"FROM "out" OUT "in" IS "where", x9"#,
            "FROM * OUT * COUNT",
            "FROM * EXISTS",
            "EXPLAIN FROM marko OUT knows FIRST",
            "PROFILE FROM marko OUT knows",
            "PROFILE FROM * MATCH -[knows+]-> COUNT",
            "FROM 42 OUT knows",
        ] {
            roundtrip(q);
        }
    }

    #[test]
    fn sugar_canonicalises() {
        let q = parse("from marko match -[k]-> top 5 count").unwrap();
        assert_eq!(pretty(&q), "FROM marko MATCH -[k]-> LIMIT 5 COUNT");
        let q = parse(r#"FROM * WHERE dst.lang = "java""#).unwrap();
        assert_eq!(pretty(&q), r#"FROM * WHERE lang = "java""#);
    }

    #[test]
    fn floats_and_ints_stay_distinct_through_the_roundtrip() {
        let q1 = parse("FROM * WHERE a = 2").unwrap();
        let q2 = parse("FROM * WHERE a = 2.0").unwrap();
        assert_ne!(q1, q2);
        assert_eq!(parse(&pretty(&q1)).unwrap().clauses, q1.clauses);
        assert_eq!(parse(&pretty(&q2)).unwrap().clauses, q2.clauses);
    }

    #[test]
    fn names_quote_only_when_needed() {
        assert_eq!(name("knows"), "knows");
        assert_eq!(name("x_9"), "x_9");
        assert_eq!(name("42"), "42");
        assert_eq!(name("out"), "\"out\"");
        assert_eq!(name("a b"), "\"a b\"");
        assert_eq!(name("a\"b"), "\"a\\\"b\"");
        assert_eq!(name(""), "\"\"");
    }
}
