//! Span-carrying MRPA-QL errors with caret diagnostics.

use std::fmt;

use mrpa_regex::{render_caret, Span};

/// An MRPA-QL parse or lowering error: a message plus the byte span of the
/// offending query text. [`QueryError::render`] turns it into a two-line
/// caret diagnostic against the original source, reusing the shared
/// renderer from [`mrpa_regex::render_caret`] — pattern errors inside
/// `-[…]->` arrows are remapped so the caret lands in the *query* string,
/// not the embedded pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Byte span of the offending source text.
    pub span: Span,
    /// Human-readable description (already includes the byte offset).
    pub message: String,
}

impl QueryError {
    /// An error with a prebuilt message.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        QueryError {
            span,
            message: message.into(),
        }
    }

    /// An "expected X, found Y" error in the same shape the regex crate's
    /// [`mrpa_regex::SyntaxError`] produces, so both frontends read alike.
    pub fn expected<I, S>(span: Span, found: impl Into<String>, expected: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let e = mrpa_regex::SyntaxError::new(span, found, expected);
        QueryError {
            span,
            message: e.message(),
        }
    }

    /// The message plus a caret line pointing at the span in `source`.
    ///
    /// ```
    /// let err = mrpa_query::parse("FROM marko OUCH").unwrap_err();
    /// let diag = err.render("FROM marko OUCH");
    /// assert!(diag.contains("OUCH"));
    /// assert!(diag.contains('^'));
    /// ```
    pub fn render(&self, source: &str) -> String {
        format!("{}\n{}", self.message, render_caret(source, self.span))
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error: {}", self.message)
    }
}

impl std::error::Error for QueryError {}
