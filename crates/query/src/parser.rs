//! The MRPA-QL recursive-descent parser: spanned tokens → [`Query`].
//!
//! Keywords are matched case-insensitively against bare words, so a quoted
//! string can always stand in for a name that collides with a keyword
//! (`OUT "in"`). Patterns inside `-[…]->` arrows are validated here by
//! handing them to [`mrpa_regex::parse_label_expr`]; a syntax error inside
//! the pattern is remapped by [`mrpa_regex::Span::offset`] so its caret
//! points into the *query* string.

use mrpa_engine::plan::{Direction, SemiringKind};
use mrpa_engine::{Predicate, Value, WeightSpec};
use mrpa_regex::{RegexError, Span};

use crate::ast::{Clause, MatchMode, Query, StartAst, Terminal};
use crate::error::QueryError;
use crate::lexer::{describe, tokenize, Token};

/// The reserved words of MRPA-QL. Bare words matching one of these (in any
/// case) cannot be used as names — quote them instead.
pub const KEYWORDS: &[&str] = &[
    "EXPLAIN",
    "PROFILE",
    "FROM",
    "MATCH",
    "REACHABLE",
    "GLOBAL",
    "WITHIN",
    "OUT",
    "IN",
    "BOTH",
    "WHERE",
    "IS",
    "DEDUP",
    "LIMIT",
    "TOP",
    "CHEAPEST",
    "WIDEST",
    "BY",
    "LABELS",
    "REPEAT",
    "UNTIL",
    "COUNT",
    "EXISTS",
    "FIRST",
    "CONTAINS",
    "TRUE",
    "FALSE",
    "DST",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kw {
    Explain,
    Profile,
    From,
    Match,
    Reachable,
    Global,
    Within,
    Out,
    In,
    Both,
    Where,
    Is,
    Dedup,
    Limit,
    Top,
    Cheapest,
    Widest,
    By,
    Labels,
    Repeat,
    Until,
    Count,
    Exists,
    First,
    Contains,
    True,
    False,
    Dst,
}

fn keyword(word: &str) -> Option<Kw> {
    let kws = [
        ("EXPLAIN", Kw::Explain),
        ("PROFILE", Kw::Profile),
        ("FROM", Kw::From),
        ("MATCH", Kw::Match),
        ("REACHABLE", Kw::Reachable),
        ("GLOBAL", Kw::Global),
        ("WITHIN", Kw::Within),
        ("OUT", Kw::Out),
        ("IN", Kw::In),
        ("BOTH", Kw::Both),
        ("WHERE", Kw::Where),
        ("IS", Kw::Is),
        ("DEDUP", Kw::Dedup),
        ("LIMIT", Kw::Limit),
        ("TOP", Kw::Top),
        ("CHEAPEST", Kw::Cheapest),
        ("WIDEST", Kw::Widest),
        ("BY", Kw::By),
        ("LABELS", Kw::Labels),
        ("REPEAT", Kw::Repeat),
        ("UNTIL", Kw::Until),
        ("COUNT", Kw::Count),
        ("EXISTS", Kw::Exists),
        ("FIRST", Kw::First),
        ("CONTAINS", Kw::Contains),
        ("TRUE", Kw::True),
        ("FALSE", Kw::False),
        ("DST", Kw::Dst),
    ];
    kws.iter()
        .find(|(name, _)| word.eq_ignore_ascii_case(name))
        .map(|(_, kw)| *kw)
}

/// Whether a bare word would round-trip as an unquoted name.
pub(crate) fn is_reserved(word: &str) -> bool {
    keyword(word).is_some()
}

struct Cursor {
    tokens: Vec<(Token, Span)>,
    pos: usize,
    eoi: usize,
}

impl Cursor {
    fn new(input: &str) -> Result<Self, QueryError> {
        Ok(Cursor {
            tokens: tokenize(input)?,
            pos: 0,
            eoi: input.len(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// The keyword at the cursor, if the next token is a bare word naming one.
    fn peek_kw(&self) -> Option<Kw> {
        match self.peek() {
            Some(Token::Word(w)) => keyword(w),
            _ => None,
        }
    }

    fn span_here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| Span::point(self.eoi))
    }

    fn found_here(&self) -> String {
        match self.peek() {
            Some(t) => describe(t),
            None => "end of input".into(),
        }
    }

    fn unexpected<I, S>(&self, expected: I) -> QueryError
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        QueryError::expected(self.span_here(), self.found_here(), expected)
    }

    fn next(&mut self) -> Option<(Token, Span)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, describe_as: &str) -> Result<Span, QueryError> {
        if self.peek() == Some(token) {
            Ok(self.next().expect("peeked").1)
        } else {
            Err(self.unexpected([describe_as]))
        }
    }

    fn expect_kw(&mut self, kw: Kw, describe_as: &str) -> Result<Span, QueryError> {
        if self.peek_kw() == Some(kw) {
            Ok(self.next().expect("peeked").1)
        } else {
            Err(self.unexpected([describe_as]))
        }
    }

    /// Consumes the keyword if present.
    fn eat_kw(&mut self, kw: Kw) -> Option<Span> {
        if self.peek_kw() == Some(kw) {
            Some(self.next().expect("peeked").1)
        } else {
            None
        }
    }

    /// A name: a non-reserved bare word, a quoted string, or a bare integer
    /// (vertex names like `42`).
    fn name(&mut self, what: &str) -> Result<(String, Span), QueryError> {
        match self.peek() {
            Some(Token::Word(w)) if !is_reserved(w) => {
                let w = w.clone();
                Ok((w, self.next().expect("peeked").1))
            }
            Some(Token::Word(w)) => Err(QueryError::new(
                self.span_here(),
                format!(
                    "{w:?} is a reserved word and cannot be a bare {what} — quote it (\"{w}\") at byte {}",
                    self.span_here().start
                ),
            )),
            Some(Token::Str(s)) => {
                let s = s.clone();
                Ok((s, self.next().expect("peeked").1))
            }
            Some(Token::Int(n)) => {
                let n = n.to_string();
                Ok((n, self.next().expect("peeked").1))
            }
            _ => Err(self.unexpected([format!("a {what}")])),
        }
    }

    /// `name (',' name)*`.
    fn name_list(&mut self, what: &str) -> Result<Vec<String>, QueryError> {
        let mut names = vec![self.name(what)?.0];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            names.push(self.name(what)?.0);
        }
        Ok(names)
    }

    /// A non-negative integer (for `LIMIT`, `WITHIN`, `REPEAT {m,n}`).
    fn non_negative_int(&mut self, what: &str) -> Result<usize, QueryError> {
        match self.peek() {
            Some(&Token::Int(n)) if n >= 0 => {
                self.next();
                Ok(n as usize)
            }
            _ => Err(self.unexpected([format!("a non-negative integer ({what})")])),
        }
    }

    /// A literal value: string, number, or boolean.
    fn value(&mut self) -> Result<Value, QueryError> {
        match (self.peek(), self.peek_kw()) {
            (_, Some(Kw::True)) => {
                self.next();
                Ok(Value::Bool(true))
            }
            (_, Some(Kw::False)) => {
                self.next();
                Ok(Value::Bool(false))
            }
            (Some(Token::Str(s)), _) => {
                let v = Value::Text(s.clone());
                self.next();
                Ok(v)
            }
            (Some(&Token::Int(n)), _) => {
                self.next();
                Ok(Value::Int(n))
            }
            (Some(&Token::Float(x)), _) => {
                self.next();
                Ok(Value::Float(x))
            }
            _ => Err(self.unexpected(["a string", "a number", "TRUE", "FALSE"])),
        }
    }

    /// A numeric literal as `f64` (for `<`/`<=`/`>`/`>=` and weight tables).
    fn number(&mut self, what: &str) -> Result<f64, QueryError> {
        match self.peek() {
            Some(&Token::Int(n)) => {
                self.next();
                Ok(n as f64)
            }
            Some(&Token::Float(x)) => {
                self.next();
                Ok(x)
            }
            _ => Err(self.unexpected([format!("a number ({what})")])),
        }
    }

    /// `[DST '.'] key (op value | CONTAINS str | EXISTS | IN (v, …))`.
    fn condition(&mut self) -> Result<(String, Predicate), QueryError> {
        if self.eat_kw(Kw::Dst).is_some() {
            self.expect(&Token::Dot, "'.' after dst")?;
        }
        let (key, _) = self.name("property key")?;
        let pred = match (self.peek(), self.peek_kw()) {
            (Some(Token::Eq), _) => {
                self.next();
                Predicate::Eq(self.value()?)
            }
            (Some(Token::Ne), _) => {
                self.next();
                Predicate::Ne(self.value()?)
            }
            (Some(Token::Lt), _) => {
                self.next();
                Predicate::Lt(self.number("comparison bound")?)
            }
            (Some(Token::Le), _) => {
                self.next();
                Predicate::Le(self.number("comparison bound")?)
            }
            (Some(Token::Gt), _) => {
                self.next();
                Predicate::Gt(self.number("comparison bound")?)
            }
            (Some(Token::Ge), _) => {
                self.next();
                Predicate::Ge(self.number("comparison bound")?)
            }
            (_, Some(Kw::Contains)) => {
                self.next();
                match self.peek() {
                    Some(Token::Str(s)) => {
                        let s = s.clone();
                        self.next();
                        Predicate::Contains(s)
                    }
                    _ => return Err(self.unexpected(["a string after CONTAINS"])),
                }
            }
            (_, Some(Kw::Exists)) => {
                self.next();
                Predicate::Exists
            }
            (_, Some(Kw::In)) => {
                self.next();
                self.expect(&Token::LParen, "'(' opening the IN list")?;
                let mut values = vec![self.value()?];
                while self.peek() == Some(&Token::Comma) {
                    self.next();
                    values.push(self.value()?);
                }
                self.expect(&Token::RParen, "')' closing the IN list")?;
                Predicate::Within(values)
            }
            _ => {
                return Err(self.unexpected([
                    "'='", "'!='", "'<'", "'<='", "'>'", "'>='", "CONTAINS", "EXISTS", "IN",
                ]))
            }
        };
        Ok((key, pred))
    }
}

/// Parses one MRPA-QL query.
///
/// ```
/// use mrpa_query::{parse, Terminal};
///
/// let q = parse(
///     r#"FROM person:marko MATCH -[knows+·created]-> WHERE dst.lang = "java" CHEAPEST BY weight TOP 3"#,
/// )
/// .unwrap();
/// assert_eq!(q.terminal, Terminal::Rows);
/// assert_eq!(q.clauses.len(), 4); // MATCH, WHERE, CHEAPEST, TOP
/// ```
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let mut c = Cursor::new(input)?;
    let explain = c.eat_kw(Kw::Explain).is_some();
    let profile = !explain && c.eat_kw(Kw::Profile).is_some();
    c.expect_kw(Kw::From, "FROM")?;
    let start = parse_start(&mut c)?;
    let (clauses, terminal) = parse_clauses(&mut c, true)?;
    if let Some(t) = c.peek() {
        let msg = describe(t);
        return Err(QueryError::expected(
            c.span_here(),
            msg,
            ["a clause (MATCH, OUT, WHERE, …)", "end of input"],
        ));
    }
    Ok(Query {
        explain,
        profile,
        start,
        clauses,
        terminal,
    })
}

fn parse_start(c: &mut Cursor) -> Result<StartAst, QueryError> {
    match c.peek() {
        Some(Token::Star) => {
            c.next();
            Ok(StartAst::All)
        }
        Some(Token::LParen) => {
            c.next();
            let (key, pred) = c.condition()?;
            c.expect(&Token::RParen, "')' closing the start predicate")?;
            Ok(StartAst::Where { key, pred })
        }
        _ => {
            let (first, _) = c.name("start vertex name")?;
            if c.peek() == Some(&Token::Colon) {
                c.next();
                let names = c.name_list("start vertex name")?;
                Ok(StartAst::Named {
                    kind: Some(first),
                    names,
                })
            } else {
                let mut names = vec![first];
                while c.peek() == Some(&Token::Comma) {
                    c.next();
                    names.push(c.name("start vertex name")?.0);
                }
                Ok(StartAst::Named { kind: None, names })
            }
        }
    }
}

/// Parses a clause sequence. At top level (`allow_terminal`) a trailing
/// `COUNT`/`EXISTS`/`FIRST` is accepted and must end the query; inside a
/// `REPEAT` body terminals are rejected.
fn parse_clauses(
    c: &mut Cursor,
    allow_terminal: bool,
) -> Result<(Vec<Clause>, Terminal), QueryError> {
    let mut clauses = Vec::new();
    while let Some(kw) = c.peek_kw() {
        match kw {
            Kw::Match => clauses.push(parse_match(c)?),
            Kw::Cheapest | Kw::Widest => clauses.push(parse_weighted(c)?),
            Kw::Out | Kw::In | Kw::Both => clauses.push(parse_step_labels(c, kw)?),
            Kw::Where => {
                c.next();
                let (key, pred) = c.condition()?;
                clauses.push(Clause::Where { key, pred });
            }
            Kw::Is => {
                c.next();
                clauses.push(Clause::Is(c.name_list("vertex name")?));
            }
            Kw::Dedup => {
                c.next();
                clauses.push(Clause::Dedup);
            }
            Kw::Limit | Kw::Top => {
                c.next();
                clauses.push(Clause::Limit(c.non_negative_int("row cap")?));
            }
            Kw::Repeat => clauses.push(parse_repeat(c)?),
            Kw::Count | Kw::Exists | Kw::First if allow_terminal => {
                c.next();
                let terminal = match kw {
                    Kw::Count => Terminal::Count,
                    Kw::Exists => Terminal::Exists,
                    _ => Terminal::First,
                };
                if let Some(t) = c.peek() {
                    let msg = describe(t);
                    return Err(QueryError::expected(
                        c.span_here(),
                        msg,
                        ["end of input (COUNT/EXISTS/FIRST must end the query)"],
                    ));
                }
                return Ok((clauses, terminal));
            }
            _ => break,
        }
    }
    Ok((clauses, Terminal::Rows))
}

fn parse_match(c: &mut Cursor) -> Result<Clause, QueryError> {
    let start = c.expect_kw(Kw::Match, "MATCH")?;
    let mode = if c.eat_kw(Kw::Reachable).is_some() {
        MatchMode::Reachable
    } else if c.eat_kw(Kw::Global).is_some() {
        MatchMode::Global
    } else {
        MatchMode::Walks
    };
    let (direction, open_span) = match c.peek() {
        Some(Token::ArrowOutOpen) => (Direction::Out, c.next().expect("peeked").1),
        Some(Token::ArrowInOpen) => (Direction::In, c.next().expect("peeked").1),
        _ => return Err(c.unexpected(["'-[' or '<-[' opening a pattern"])),
    };
    if direction == Direction::In && mode != MatchMode::Walks {
        return Err(QueryError::new(
            open_span,
            format!(
                "reachability modes traverse outgoing edges — use '-[…]->' at byte {}",
                open_span.start
            ),
        ));
    }
    let (pattern, pattern_span) = match c.next() {
        Some((Token::Pattern(p), s)) => (p, s),
        _ => unreachable!("the lexer always pairs an arrow opener with a pattern"),
    };
    let close = c.next().expect("the lexer always closes a pattern").1;
    validate_pattern(&pattern, pattern_span)?;
    let within = if c.eat_kw(Kw::Within).is_some() {
        Some(c.non_negative_int("depth bound")?)
    } else {
        None
    };
    Ok(Clause::Match {
        pattern,
        pattern_span,
        direction,
        mode,
        within,
        span: Span::new(start.start, close.end),
    })
}

/// Validates a pattern by handing it to the regex frontend; a syntax error's
/// span is remapped into the query string before surfacing.
fn validate_pattern(pattern: &str, pattern_span: Span) -> Result<(), QueryError> {
    match mrpa_regex::parse_label_expr(pattern) {
        Ok(_) => Ok(()),
        Err(RegexError::Syntax(e)) => {
            let span = e.span.offset(pattern_span.start);
            Err(QueryError::new(
                span,
                mrpa_regex::SyntaxError::new(span, e.found, e.expected).message(),
            ))
        }
        Err(other) => Err(QueryError::new(pattern_span, other.to_string())),
    }
}

fn parse_weighted(c: &mut Cursor) -> Result<Clause, QueryError> {
    let (semiring, span) = if let Some(s) = c.eat_kw(Kw::Cheapest) {
        (SemiringKind::Shortest, s)
    } else {
        (SemiringKind::Widest, c.expect_kw(Kw::Widest, "WIDEST")?)
    };
    let weight = if c.eat_kw(Kw::By).is_some() {
        if c.eat_kw(Kw::Labels).is_some() {
            c.expect(&Token::LParen, "'(' opening the label weight table")?;
            let mut table = vec![parse_label_weight(c)?];
            while c.peek() == Some(&Token::Comma) {
                c.next();
                table.push(parse_label_weight(c)?);
            }
            c.expect(&Token::RParen, "')' closing the label weight table")?;
            WeightSpec::Labels(table)
        } else {
            WeightSpec::Property(c.name("edge property key")?.0)
        }
    } else {
        WeightSpec::Unit
    };
    Ok(Clause::Weighted {
        semiring,
        weight,
        span,
    })
}

fn parse_label_weight(c: &mut Cursor) -> Result<(String, f64), QueryError> {
    let (label, _) = c.name("edge label")?;
    c.expect(&Token::Eq, "'=' between label and weight")?;
    let w = c.number("label weight")?;
    Ok((label, w))
}

fn parse_step_labels(c: &mut Cursor, kw: Kw) -> Result<Clause, QueryError> {
    c.next(); // OUT / IN / BOTH
    let labels = if c.peek() == Some(&Token::Star) {
        c.next();
        None
    } else {
        Some(c.name_list("edge label")?)
    };
    Ok(match kw {
        Kw::Out => Clause::Out(labels),
        Kw::In => Clause::In(labels),
        _ => Clause::Both(labels),
    })
}

fn parse_repeat(c: &mut Cursor) -> Result<Clause, QueryError> {
    let start = c.expect_kw(Kw::Repeat, "REPEAT")?;
    c.expect(&Token::LBrace, "'{' opening the iteration range")?;
    let min = c.non_negative_int("minimum iterations")?;
    c.expect(&Token::Comma, "',' between min and max")?;
    let max = c.non_negative_int("maximum iterations")?;
    let brace = c.expect(&Token::RBrace, "'}' closing the iteration range")?;
    let span = Span::new(start.start, brace.end);
    if min > max {
        return Err(QueryError::new(
            span,
            format!(
                "REPEAT range is inverted: min {min} > max {max} at byte {}",
                span.start
            ),
        ));
    }
    c.expect(&Token::LParen, "'(' opening the REPEAT body")?;
    let (body, _) = parse_clauses(c, false)?;
    if body.is_empty() {
        return Err(QueryError::new(
            span,
            format!("REPEAT body cannot be empty at byte {}", span.start),
        ));
    }
    c.expect(&Token::RParen, "')' closing the REPEAT body")?;
    let until = if c.eat_kw(Kw::Until).is_some() {
        Some(c.condition()?)
    } else {
        None
    };
    Ok(Clause::Repeat {
        min,
        max,
        body,
        until,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_headline_query() {
        let q = parse(
            r#"FROM person:marko MATCH -[knows+·created]-> WHERE dst.lang = "java" CHEAPEST BY weight TOP 3"#,
        )
        .unwrap();
        assert!(!q.explain);
        assert_eq!(
            q.start,
            StartAst::Named {
                kind: Some("person".into()),
                names: vec!["marko".into()],
            }
        );
        assert_eq!(q.clauses.len(), 4);
        assert!(matches!(
            &q.clauses[0],
            Clause::Match { pattern, direction: Direction::Out, mode: MatchMode::Walks, within: None, .. }
                if pattern == "knows+·created"
        ));
        assert_eq!(
            q.clauses[1],
            Clause::Where {
                key: "lang".into(),
                pred: Predicate::Eq(Value::Text("java".into())),
            }
        );
        assert!(matches!(
            &q.clauses[2],
            Clause::Weighted { semiring: SemiringKind::Shortest, weight: WeightSpec::Property(k), .. }
                if k == "weight"
        ));
        assert_eq!(q.clauses[3], Clause::Limit(3));
    }

    #[test]
    fn parses_every_start_form() {
        assert_eq!(parse("FROM *").unwrap().start, StartAst::All);
        assert_eq!(
            parse("FROM marko, vadas").unwrap().start,
            StartAst::Named {
                kind: None,
                names: vec!["marko".into(), "vadas".into()],
            }
        );
        assert_eq!(
            parse("FROM (age > 30)").unwrap().start,
            StartAst::Where {
                key: "age".into(),
                pred: Predicate::Gt(30.0),
            }
        );
        assert_eq!(
            parse(r#"FROM ("kind" = "person")"#).unwrap().start,
            StartAst::Where {
                key: "kind".into(),
                pred: Predicate::Eq(Value::Text("person".into())),
            }
        );
    }

    #[test]
    fn parses_match_modes_directions_and_bounds() {
        let q = parse("FROM * MATCH REACHABLE -[_+]-> MATCH <-[knows]- WITHIN 4").unwrap();
        assert!(matches!(
            &q.clauses[0],
            Clause::Match {
                mode: MatchMode::Reachable,
                direction: Direction::Out,
                within: None,
                ..
            }
        ));
        assert!(matches!(
            &q.clauses[1],
            Clause::Match {
                mode: MatchMode::Walks,
                direction: Direction::In,
                within: Some(4),
                ..
            }
        ));
        let err = parse("FROM * MATCH GLOBAL <-[knows]-").unwrap_err();
        assert!(err.message.contains("outgoing"), "{}", err.message);
    }

    #[test]
    fn parses_repeat_with_until() {
        let q =
            parse(r#"FROM marko REPEAT {0,3} ( OUT knows, created DEDUP ) UNTIL lang = "java""#)
                .unwrap();
        match &q.clauses[0] {
            Clause::Repeat {
                min: 0,
                max: 3,
                body,
                until: Some((key, Predicate::Eq(Value::Text(v)))),
                ..
            } => {
                assert_eq!(body.len(), 2);
                assert_eq!(key, "lang");
                assert_eq!(v, "java");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(parse("FROM * REPEAT {2,1} ( OUT * )")
            .unwrap_err()
            .message
            .contains("inverted"));
        assert!(parse("FROM * REPEAT {1,2} ( )")
            .unwrap_err()
            .message
            .contains("empty"));
        // terminals cannot appear inside a body
        assert!(parse("FROM * REPEAT {1,2} ( COUNT )").is_err());
    }

    #[test]
    fn terminals_must_end_the_query() {
        assert_eq!(
            parse("FROM * OUT * COUNT").unwrap().terminal,
            Terminal::Count
        );
        assert_eq!(parse("FROM * EXISTS").unwrap().terminal, Terminal::Exists);
        assert_eq!(parse("FROM * FIRST").unwrap().terminal, Terminal::First);
        assert!(parse("FROM * COUNT OUT *").is_err());
    }

    #[test]
    fn explain_prefix_sets_the_flag() {
        assert!(parse("EXPLAIN FROM * OUT *").unwrap().explain);
        assert!(!parse("FROM * OUT *").unwrap().explain);
    }

    #[test]
    fn profile_prefix_sets_the_flag() {
        let q = parse("PROFILE FROM * OUT *").unwrap();
        assert!(q.profile);
        assert!(!q.explain);
        assert!(!parse("FROM * OUT *").unwrap().profile);
        assert!(!parse("profile from * out *").unwrap().explain);
        assert!(parse("profile from * out *").unwrap().profile);
        // the prefixes are mutually exclusive — the second keyword is not
        // consumed and the parser demands FROM right there
        let err = parse("EXPLAIN PROFILE FROM *").unwrap_err();
        assert!(err.message.contains("FROM"), "{}", err.message);
        // PROFILE is reserved as a bare name now
        assert!(parse("FROM profile")
            .unwrap_err()
            .message
            .contains("reserved"));
        assert!(parse(r#"FROM "profile""#).is_ok());
    }

    #[test]
    fn pattern_errors_point_into_the_query_text() {
        let src = "FROM marko MATCH -[knows+·(created]->";
        let err = parse(src).unwrap_err();
        // the caret must land inside the query string, on or after the pattern
        let pattern_at = src.find("knows").unwrap();
        assert!(err.span.start >= pattern_at, "{err:?}");
        assert!(err.span.end <= src.len());
        let rendered = err.render(src);
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn reserved_words_require_quoting_and_strings_work_everywhere() {
        assert!(parse("FROM out").unwrap_err().message.contains("reserved"));
        let q = parse(r#"FROM "out" OUT "in" WHERE "where" EXISTS"#).unwrap();
        assert_eq!(
            q.start,
            StartAst::Named {
                kind: None,
                names: vec!["out".into()],
            }
        );
        assert_eq!(q.clauses[0], Clause::Out(Some(vec!["in".into()])));
        assert_eq!(
            q.clauses[1],
            Clause::Where {
                key: "where".into(),
                pred: Predicate::Exists,
            }
        );
    }

    #[test]
    fn condition_operators_cover_the_predicate_vocabulary() {
        let q = parse(
            r#"FROM * WHERE a = 1 WHERE b != 2.5 WHERE c < 3 WHERE d <= 4 WHERE e > 5 WHERE f >= 6
               WHERE g CONTAINS "x" WHERE h EXISTS WHERE i IN ("a", 2, TRUE)"#,
        )
        .unwrap();
        let preds: Vec<&Predicate> = q
            .clauses
            .iter()
            .map(|cl| match cl {
                Clause::Where { pred, .. } => pred,
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(preds[0], &Predicate::Eq(Value::Int(1)));
        assert_eq!(preds[1], &Predicate::Ne(Value::Float(2.5)));
        assert_eq!(preds[2], &Predicate::Lt(3.0));
        assert_eq!(preds[3], &Predicate::Le(4.0));
        assert_eq!(preds[4], &Predicate::Gt(5.0));
        assert_eq!(preds[5], &Predicate::Ge(6.0));
        assert_eq!(preds[6], &Predicate::Contains("x".into()));
        assert_eq!(preds[7], &Predicate::Exists);
        assert_eq!(
            preds[8],
            &Predicate::Within(vec![
                Value::Text("a".into()),
                Value::Int(2),
                Value::Bool(true)
            ])
        );
    }

    #[test]
    fn weighted_clause_forms() {
        let q = parse("FROM * MATCH -[a]-> CHEAPEST").unwrap();
        assert!(matches!(
            &q.clauses[1],
            Clause::Weighted {
                weight: WeightSpec::Unit,
                ..
            }
        ));
        let q = parse("FROM * MATCH -[a]-> WIDEST BY LABELS(knows = 1, created = 2.5)").unwrap();
        assert!(matches!(
            &q.clauses[1],
            Clause::Weighted { semiring: SemiringKind::Widest, weight: WeightSpec::Labels(t), .. }
                if t == &[("knows".to_string(), 1.0), ("created".to_string(), 2.5)]
        ));
    }

    #[test]
    fn errors_carry_useful_expected_sets() {
        let err = parse("FROM").unwrap_err();
        assert!(err.message.contains("start vertex name"), "{}", err.message);
        let err = parse("OUT *").unwrap_err();
        assert!(err.message.contains("FROM"), "{}", err.message);
        let err = parse("FROM * WHERE age 3").unwrap_err();
        assert!(err.message.contains("expected"), "{}", err.message);
        let err = parse("FROM * WHERE age ~ 3").unwrap_err();
        assert!(
            err.message.contains("unexpected character"),
            "{}",
            err.message
        );
    }
}
