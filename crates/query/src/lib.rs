//! # mrpa-query — MRPA-QL, a textual path-query frontend
//!
//! The engine's fluent [`Traversal`](mrpa_engine::Traversal) DSL needs a host
//! Rust program; MRPA-QL is the same query vocabulary as *text*, suitable for
//! a wire protocol (see `mrpa-server`), a REPL, or a test corpus. A query
//! reads left to right like the pipeline it denotes:
//!
//! ```text
//! FROM person:marko MATCH -[knows+·created]-> WHERE dst.lang = "java" CHEAPEST BY weight TOP 3
//! ```
//!
//! The frontend is three small passes sharing the engine's own types:
//! a spanned [`lexer`], a recursive-descent [`parser`] producing the
//! [`ast`], and a [`lower()`] pass emitting the engine's [`Step`] IR — the
//! *same* IR the fluent DSL builds, entering the same planner, optimizer,
//! and executors. There is no second execution path; the crate's tests prove
//! text ≡ DSL row-for-row under every execution strategy.
//!
//! ## Grammar
//!
//! ```text
//! query    := [EXPLAIN | PROFILE] FROM start clause* [COUNT | EXISTS | FIRST]
//! start    := '*' | [kind ':'] name (',' name)* | '(' cond ')'
//! clause   := MATCH [REACHABLE | GLOBAL] arrow [WITHIN int]
//!           | (CHEAPEST | WIDEST) [BY key | BY LABELS '(' label '=' num (',' label '=' num)* ')']
//!           | (OUT | IN | BOTH) ('*' | name (',' name)*)
//!           | WHERE cond | IS name (',' name)* | DEDUP | (LIMIT | TOP) int
//!           | REPEAT '{' int ',' int '}' '(' clause+ ')' [UNTIL cond]
//! arrow    := '-[' pattern ']->' | '<-[' pattern ']-'
//! cond     := ['dst' '.'] key ( op value | CONTAINS string | EXISTS
//!           | IN '(' value (',' value)* ')' )
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! value    := string | number | TRUE | FALSE
//! ```
//!
//! `pattern` is a label regex in the `crates/regex` syntax (`·`/`.`
//! concatenation, `|`, `*`, `+`, `?`, `{m,n}`, `_`, parentheses). Keywords
//! are case-insensitive; names that collide with keywords are quoted
//! (`OUT "in"`). Errors carry byte spans and render as caret diagnostics —
//! including errors *inside* a pattern, remapped into the query string.
//!
//! ```
//! use mrpa_engine::classic_social_graph;
//! use mrpa_query::compile;
//!
//! let g = classic_social_graph();
//! let q = compile(r#"FROM marko MATCH -[knows+·created]-> WHERE dst.lang = "java""#).unwrap();
//! let rows = q.traversal(&g).execute().unwrap();
//! assert_eq!(rows.head_names_sorted(), vec!["lop", "ripple"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;

pub use ast::{Clause, MatchMode, Query, StartAst, Terminal};
pub use error::QueryError;
pub use lexer::{tokenize, Token};
pub use lower::{lower, LoweredQuery};
pub use parser::parse;
pub use pretty::pretty;

use mrpa_engine::Step;

/// Parses and lowers a query in one call: text → [`LoweredQuery`], ready to
/// bind to a graph with [`LoweredQuery::traversal`].
pub fn compile(input: &str) -> Result<LoweredQuery, QueryError> {
    lower(&parse(input)?)
}

/// Convenience: the lowered [`Step`] sequence of a query (used by tests).
pub fn compile_steps(input: &str) -> Result<Vec<Step>, QueryError> {
    compile(input).map(|q| q.steps)
}
