//! Lowering: MRPA-QL AST → the engine's [`StartSpec`] + [`Step`] IR.
//!
//! There is deliberately **no second execution path**: every clause lowers to
//! the exact [`Step`] the fluent [`mrpa_engine::Traversal`] verbs would have
//! pushed, and the lowered steps re-enter the engine through
//! [`mrpa_engine::Traversal::with_steps`]. The one structural rewrite is
//! `CHEAPEST`/`WIDEST`, which — like `.cheapest_(…)` replacing `.match_(…)`
//! in the DSL — folds the nearest preceding `MATCH` into a
//! [`Step::Weighted`] best-first search, preserving an explicit `WITHIN`
//! bound and defaulting to unbounded search (best-first settling terminates
//! by itself) exactly as [`mrpa_engine::Traversal::cheapest_`] does.

use mrpa_engine::plan::{Semantics, DEFAULT_MATCH_MAX_HOPS, UNBOUNDED_MATCH_HOPS};
use mrpa_engine::{Predicate, StartSpec, Step, Value};

use crate::ast::{Clause, MatchMode, Query, StartAst, Terminal};
use crate::error::QueryError;

/// A query lowered to the engine's IR, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredQuery {
    /// Whether the query asked for `EXPLAIN` (plan report, no execution).
    pub explain: bool,
    /// Whether the query asked for `PROFILE` (execute with per-stage traces).
    pub profile: bool,
    /// The start set.
    pub start: StartSpec,
    /// The pipeline steps, byte-for-byte what the fluent DSL would build.
    pub steps: Vec<Step>,
    /// How the rows are consumed.
    pub terminal: Terminal,
}

impl LoweredQuery {
    /// Binds the lowered query to a graph as a ready-to-run
    /// [`mrpa_engine::Traversal`]. The caller applies the terminal
    /// (`execute`/`count`/`exists`/`first`/`explain`) and any runtime bounds
    /// (strategy, timeout, `max_intermediate`).
    pub fn traversal(&self, graph: &mrpa_engine::PropertyGraph) -> mrpa_engine::Traversal {
        mrpa_engine::Traversal::over(graph)
            .start_at(self.start.clone())
            .with_steps(self.steps.clone())
    }
}

/// Lowers a parsed [`Query`].
pub fn lower(query: &Query) -> Result<LoweredQuery, QueryError> {
    let mut steps = Vec::new();
    let start = match &query.start {
        StartAst::All => StartSpec::AllVertices,
        StartAst::Where { key, pred } => StartSpec::Where(key.clone(), pred.clone()),
        StartAst::Named { kind, names } => {
            if let Some(kind) = kind {
                // `person:marko` asserts the kind of the named starts
                steps.push(Step::Has(
                    "kind".to_owned(),
                    Predicate::Eq(Value::Text(kind.clone())),
                ));
            }
            StartSpec::Named(names.clone())
        }
    };
    steps.extend(lower_clauses(&query.clauses)?);
    Ok(LoweredQuery {
        explain: query.explain,
        profile: query.profile,
        start,
        steps,
        terminal: query.terminal,
    })
}

/// Per lowered step: is it a `MATCH` that a later `CHEAPEST`/`WIDEST` may
/// still fold, and did the source spell an explicit `WITHIN`?
struct MatchOrigin {
    explicit_within: bool,
    mode: MatchMode,
}

fn lower_clauses(clauses: &[Clause]) -> Result<Vec<Step>, QueryError> {
    let mut lowered: Vec<(Step, Option<MatchOrigin>)> = Vec::new();
    for clause in clauses {
        match clause {
            Clause::Match {
                pattern,
                direction,
                mode,
                within,
                ..
            } => {
                let (semantics, default_hops) = match mode {
                    MatchMode::Walks => (Semantics::Walks, DEFAULT_MATCH_MAX_HOPS),
                    MatchMode::Reachable => (Semantics::Reachable, UNBOUNDED_MATCH_HOPS),
                    MatchMode::Global => (Semantics::GlobalReachable, UNBOUNDED_MATCH_HOPS),
                };
                lowered.push((
                    Step::Match {
                        pattern: pattern.clone(),
                        max_hops: within.unwrap_or(default_hops),
                        direction: *direction,
                        semantics,
                    },
                    Some(MatchOrigin {
                        explicit_within: within.is_some(),
                        mode: *mode,
                    }),
                ));
            }
            Clause::Weighted {
                semiring,
                weight,
                span,
            } => {
                let target = lowered
                    .iter()
                    .rposition(|(_, origin)| origin.is_some())
                    .ok_or_else(|| {
                        QueryError::new(
                            *span,
                            format!(
                                "CHEAPEST/WIDEST needs a preceding MATCH to weight at byte {}",
                                span.start
                            ),
                        )
                    })?;
                let (step, origin) = &mut lowered[target];
                let origin = origin.take().expect("rposition found Some");
                if origin.mode != MatchMode::Walks {
                    return Err(QueryError::new(
                        *span,
                        format!(
                            "CHEAPEST/WIDEST cannot weight a REACHABLE/GLOBAL match at byte {}",
                            span.start
                        ),
                    ));
                }
                let Step::Match {
                    pattern,
                    max_hops,
                    direction,
                    ..
                } = step
                else {
                    unreachable!("only Step::Match carries a MatchOrigin")
                };
                *step = Step::Weighted {
                    pattern: std::mem::take(pattern),
                    // the DSL's cheapest_/widest_ default is unbounded —
                    // best-first settling terminates without a hop cap
                    max_hops: if origin.explicit_within {
                        *max_hops
                    } else {
                        UNBOUNDED_MATCH_HOPS
                    },
                    direction: *direction,
                    semiring: *semiring,
                    weight: weight.clone(),
                };
            }
            Clause::Out(labels) => lowered.push((Step::Out(labels.clone()), None)),
            Clause::In(labels) => lowered.push((Step::In(labels.clone()), None)),
            Clause::Both(labels) => lowered.push((Step::Both(labels.clone()), None)),
            Clause::Where { key, pred } => {
                lowered.push((Step::Has(key.clone(), pred.clone()), None))
            }
            Clause::Is(names) => lowered.push((Step::Is(names.clone()), None)),
            Clause::Dedup => lowered.push((Step::DedupByVertex, None)),
            Clause::Limit(n) => lowered.push((Step::Limit(*n), None)),
            Clause::Repeat {
                min,
                max,
                body,
                until,
                ..
            } => {
                lowered.push((
                    Step::Repeat {
                        body: lower_clauses(body)?,
                        min: *min,
                        max: *max,
                        until: until.clone(),
                    },
                    None,
                ));
            }
        }
    }
    Ok(lowered.into_iter().map(|(step, _)| step).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mrpa_engine::plan::{Direction, SemiringKind};
    use mrpa_engine::WeightSpec;

    fn steps(input: &str) -> Vec<Step> {
        lower(&parse(input).unwrap()).unwrap().steps
    }

    #[test]
    fn the_headline_query_lowers_to_the_dsl_steps() {
        let q = lower(
            &parse(
                r#"FROM person:marko MATCH -[knows+·created]-> WHERE dst.lang = "java" CHEAPEST BY weight TOP 3"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(q.start, StartSpec::Named(vec!["marko".into()]));
        assert_eq!(
            q.steps,
            vec![
                Step::Has("kind".into(), Predicate::Eq(Value::Text("person".into()))),
                Step::Weighted {
                    pattern: "knows+·created".into(),
                    max_hops: UNBOUNDED_MATCH_HOPS,
                    direction: Direction::Out,
                    semiring: SemiringKind::Shortest,
                    weight: WeightSpec::Property("weight".into()),
                },
                Step::Has("lang".into(), Predicate::Eq(Value::Text("java".into()))),
                Step::Limit(3),
            ]
        );
    }

    #[test]
    fn match_defaults_mirror_the_dsl() {
        assert_eq!(
            steps("FROM * MATCH -[knows+]->"),
            vec![Step::Match {
                pattern: "knows+".into(),
                max_hops: DEFAULT_MATCH_MAX_HOPS,
                direction: Direction::Out,
                semantics: Semantics::Walks,
            }]
        );
        assert_eq!(
            steps("FROM * MATCH REACHABLE -[_+]->"),
            vec![Step::Match {
                pattern: "_+".into(),
                max_hops: UNBOUNDED_MATCH_HOPS,
                direction: Direction::Out,
                semantics: Semantics::Reachable,
            }]
        );
        assert_eq!(
            steps("FROM * MATCH GLOBAL -[_+]-> WITHIN 5"),
            vec![Step::Match {
                pattern: "_+".into(),
                max_hops: 5,
                direction: Direction::Out,
                semantics: Semantics::GlobalReachable,
            }]
        );
        assert_eq!(
            steps("FROM * MATCH <-[created]-"),
            vec![Step::Match {
                pattern: "created".into(),
                max_hops: DEFAULT_MATCH_MAX_HOPS,
                direction: Direction::In,
                semantics: Semantics::Walks,
            }]
        );
    }

    #[test]
    fn weighted_folds_keep_explicit_bounds() {
        assert_eq!(
            steps("FROM * MATCH -[a+]-> WITHIN 7 WIDEST"),
            vec![Step::Weighted {
                pattern: "a+".into(),
                max_hops: 7,
                direction: Direction::Out,
                semiring: SemiringKind::Widest,
                weight: WeightSpec::Unit,
            }]
        );
    }

    #[test]
    fn weighted_folds_skip_intervening_filters() {
        // WHERE between MATCH and CHEAPEST: fold still lands on the MATCH,
        // and the filter stays after the weighted step — exactly
        // `.cheapest_(p).weight_by(w).has(k, pred)` in the DSL
        assert_eq!(
            steps("FROM * MATCH -[a]-> WHERE age > 30 CHEAPEST BY w"),
            vec![
                Step::Weighted {
                    pattern: "a".into(),
                    max_hops: UNBOUNDED_MATCH_HOPS,
                    direction: Direction::Out,
                    semiring: SemiringKind::Shortest,
                    weight: WeightSpec::Property("w".into()),
                },
                Step::Has("age".into(), Predicate::Gt(30.0)),
            ]
        );
    }

    #[test]
    fn weighted_without_match_is_an_error() {
        let err = lower(&parse("FROM * CHEAPEST BY w").unwrap()).unwrap_err();
        assert!(err.message.contains("preceding MATCH"), "{}", err.message);
        // a second fold of the same MATCH is also an error
        let err = lower(&parse("FROM * MATCH -[a]-> CHEAPEST WIDEST").unwrap()).unwrap_err();
        assert!(err.message.contains("preceding MATCH"), "{}", err.message);
        // reachability matches cannot be weighted
        let err = lower(&parse("FROM * MATCH REACHABLE -[a]-> CHEAPEST").unwrap()).unwrap_err();
        assert!(err.message.contains("REACHABLE"), "{}", err.message);
    }

    #[test]
    fn repeat_bodies_lower_recursively() {
        assert_eq!(
            steps(r#"FROM * REPEAT {1,3} ( OUT knows DEDUP ) UNTIL lang = "java""#),
            vec![Step::Repeat {
                body: vec![Step::Out(Some(vec!["knows".into()])), Step::DedupByVertex,],
                min: 1,
                max: 3,
                until: Some(("lang".into(), Predicate::Eq(Value::Text("java".into())))),
            }]
        );
    }

    #[test]
    fn star_labels_lower_to_none() {
        assert_eq!(
            steps("FROM * OUT * IN knows BOTH a, b"),
            vec![
                Step::Out(None),
                Step::In(Some(vec!["knows".into()])),
                Step::Both(Some(vec!["a".into(), "b".into()])),
            ]
        );
    }
}
