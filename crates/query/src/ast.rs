//! The MRPA-QL abstract syntax tree.
//!
//! The AST is deliberately thin: predicates, values, weight specs, and
//! directions are the engine's own types ([`Predicate`],
//! [`Value`](mrpa_engine::Value), [`WeightSpec`], [`Direction`]), so
//! lowering ([`crate::lower()`]) is a
//! structural rearrangement, not a translation — there is no second
//! vocabulary to drift from the pipeline DSL. Clauses that can fail during
//! lowering (`MATCH`, `CHEAPEST`/`WIDEST`, `REPEAT`) carry their byte
//! [`Span`] so semantic errors point at query text.

use mrpa_engine::plan::{Direction, SemiringKind};
use mrpa_engine::{Predicate, WeightSpec};
use mrpa_regex::Span;

/// A full parsed query: `[EXPLAIN | PROFILE] FROM start clause* [terminal]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `EXPLAIN` prefix: return the plan report instead of executing.
    pub explain: bool,
    /// `PROFILE` prefix: execute and return the per-stage trace alongside
    /// the rows. Mutually exclusive with `EXPLAIN`.
    pub profile: bool,
    /// The `FROM` start set.
    pub start: StartAst,
    /// The pipeline clauses, in source order.
    pub clauses: Vec<Clause>,
    /// How the result is consumed.
    pub terminal: Terminal,
}

/// The `FROM` clause of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum StartAst {
    /// `FROM *` — every vertex.
    All,
    /// `FROM [kind:]name, name, …` — named vertices, with an optional kind
    /// prefix that lowers to a leading `kind = <kind>` property filter.
    Named {
        /// The `person:` prefix, if present.
        kind: Option<String>,
        /// The vertex names.
        names: Vec<String>,
    },
    /// `FROM (key op value)` — every vertex whose property satisfies the
    /// predicate.
    Where {
        /// The property key.
        key: String,
        /// The predicate over that property.
        pred: Predicate,
    },
}

/// How `MATCH` evaluates its pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// Enumerate every matching walk (depth-bounded).
    Walks,
    /// Per-row reachability: dedup by `(vertex, dfa-state)`; unbounded by
    /// default.
    Reachable,
    /// Global reachability: one seen-set shared across all input rows.
    Global,
}

/// How the query's rows are consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Terminal {
    /// Return every row (the default).
    #[default]
    Rows,
    /// `COUNT` — the number of rows.
    Count,
    /// `EXISTS` — whether at least one row exists.
    Exists,
    /// `FIRST` — the first row only.
    First,
}

/// One pipeline clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH [REACHABLE|GLOBAL] -[pattern]-> [WITHIN n]` (or `<-[…]-`).
    Match {
        /// The raw label-regex text between the arrow brackets.
        pattern: String,
        /// Span of the pattern text inside the query (for error remapping).
        pattern_span: Span,
        /// Traversal direction (`-[…]->` = `Out`, `<-[…]-` = `In`).
        direction: Direction,
        /// Walks vs. reachability evaluation.
        mode: MatchMode,
        /// Explicit `WITHIN` depth bound, if given.
        within: Option<usize>,
        /// Span of the whole clause (for lowering diagnostics).
        span: Span,
    },
    /// `CHEAPEST [BY …]` / `WIDEST [BY …]` — folds the nearest preceding
    /// `MATCH` into a semiring-weighted best-first search.
    Weighted {
        /// Which selective semiring orders the search.
        semiring: SemiringKind,
        /// Where edge weights come from (`BY prop`, `BY LABELS(…)`, or unit).
        weight: WeightSpec,
        /// Span of the clause (for "no preceding MATCH" diagnostics).
        span: Span,
    },
    /// `OUT labels` — outgoing edges (`None` = `OUT *`, any label).
    Out(Option<Vec<String>>),
    /// `IN labels` — incoming edges.
    In(Option<Vec<String>>),
    /// `BOTH labels` — both directions.
    Both(Option<Vec<String>>),
    /// `WHERE [dst.]key op value` — filter rows by a head-vertex property.
    Where {
        /// The property key.
        key: String,
        /// The predicate.
        pred: Predicate,
    },
    /// `IS name, name, …` — keep only the named head vertices.
    Is(Vec<String>),
    /// `DEDUP` — deduplicate rows by head vertex.
    Dedup,
    /// `LIMIT n` / `TOP n` — keep at most `n` rows.
    Limit(usize),
    /// `REPEAT {min,max} ( clauses ) [UNTIL key op value]`.
    Repeat {
        /// Minimum completed iterations.
        min: usize,
        /// Maximum iterations.
        max: usize,
        /// The loop body.
        body: Vec<Clause>,
        /// Optional early-exit predicate.
        until: Option<(String, Predicate)>,
        /// Span of the clause header.
        span: Span,
    },
}
