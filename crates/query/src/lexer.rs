//! The MRPA-QL lexer: source text → spanned tokens.
//!
//! Tokenization is mode-free except for path patterns: on seeing `-[` or
//! `<-[` the lexer captures the raw interior up to the first `]` as one
//! [`Token::Pattern`] (the regex frontend re-parses it, with error spans
//! remapped into the query text), then insists on the matching `]->` / `]-`
//! closer. A `-` followed by a digit or `.` starts a negative number, so
//! `WHERE w > -3.5` and `MATCH -[knows]->` coexist without lookahead in the
//! parser.

use mrpa_regex::Span;

use crate::error::QueryError;

/// One MRPA-QL token. Keywords are *not* lexed specially: they arrive as
/// [`Token::Word`] and the parser matches them case-insensitively, so `from`,
/// `From`, and `FROM` are interchangeable while quoted strings can always
/// name a vertex/label/property that collides with a keyword.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare word: a keyword candidate or an unquoted name.
    Word(String),
    /// A quoted string literal (escapes already resolved).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// The raw text between `-[`/`<-[` and `]` — a label-regex pattern.
    Pattern(String),
    /// `-[` (outgoing-pattern opener).
    ArrowOutOpen,
    /// `]->` (outgoing-pattern closer).
    ArrowOutClose,
    /// `<-[` (incoming-pattern opener).
    ArrowInOpen,
    /// `]-` (incoming-pattern closer).
    ArrowInClose,
    /// `*`
    Star,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Renders a token the way diagnostics mention it ("`'('`", "word \"out\"").
pub(crate) fn describe(token: &Token) -> String {
    match token {
        Token::Word(w) => format!("word \"{w}\""),
        Token::Str(s) => format!("string \"{s}\""),
        Token::Int(n) => format!("integer {n}"),
        Token::Float(x) => format!("number {x}"),
        Token::Pattern(p) => format!("pattern \"{p}\""),
        Token::ArrowOutOpen => "'-['".into(),
        Token::ArrowOutClose => "']->'".into(),
        Token::ArrowInOpen => "'<-['".into(),
        Token::ArrowInClose => "']-'".into(),
        Token::Star => "'*'".into(),
        Token::Colon => "':'".into(),
        Token::Comma => "','".into(),
        Token::Dot => "'.'".into(),
        Token::LParen => "'('".into(),
        Token::RParen => "')'".into(),
        Token::LBrace => "'{'".into(),
        Token::RBrace => "'}'".into(),
        Token::Eq => "'='".into(),
        Token::Ne => "'!='".into(),
        Token::Lt => "'<'".into(),
        Token::Le => "'<='".into(),
        Token::Gt => "'>'".into(),
        Token::Ge => "'>='".into(),
    }
}

struct Scanner<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> Scanner<'s> {
    fn rest(&self) -> &'s str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }
}

fn is_word_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_word_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes a query, attaching a byte [`Span`] to every token.
pub fn tokenize(input: &str) -> Result<Vec<(Token, Span)>, QueryError> {
    let mut s = Scanner { src: input, pos: 0 };
    let mut out = Vec::new();
    loop {
        while matches!(s.peek(), Some(c) if c.is_whitespace()) {
            s.bump();
        }
        let start = s.pos;
        let Some(c) = s.peek() else { break };
        // arrows before operators: `<-[` would otherwise lex as `<` `-[`
        if s.eat("<-[") {
            out.push((Token::ArrowInOpen, Span::new(start, s.pos)));
            scan_pattern(&mut s, &mut out, false)?;
            continue;
        }
        if s.eat("-[") {
            out.push((Token::ArrowOutOpen, Span::new(start, s.pos)));
            scan_pattern(&mut s, &mut out, true)?;
            continue;
        }
        match c {
            '-' | '0'..='9' => scan_number(&mut s, &mut out)?,
            '"' => scan_string(&mut s, &mut out)?,
            '*' => punct(&mut s, &mut out, Token::Star),
            ':' => punct(&mut s, &mut out, Token::Colon),
            ',' => punct(&mut s, &mut out, Token::Comma),
            '.' => punct(&mut s, &mut out, Token::Dot),
            '(' => punct(&mut s, &mut out, Token::LParen),
            ')' => punct(&mut s, &mut out, Token::RParen),
            '{' => punct(&mut s, &mut out, Token::LBrace),
            '}' => punct(&mut s, &mut out, Token::RBrace),
            '=' => punct(&mut s, &mut out, Token::Eq),
            '!' => {
                s.bump();
                if s.eat("=") {
                    out.push((Token::Ne, Span::new(start, s.pos)));
                } else {
                    return Err(QueryError::expected(
                        Span::new(start, s.pos),
                        "'!'",
                        ["'!='"],
                    ));
                }
            }
            '<' => {
                s.bump();
                let tok = if s.eat("=") { Token::Le } else { Token::Lt };
                out.push((tok, Span::new(start, s.pos)));
            }
            '>' => {
                s.bump();
                let tok = if s.eat("=") { Token::Ge } else { Token::Gt };
                out.push((tok, Span::new(start, s.pos)));
            }
            c if is_word_start(c) => {
                while matches!(s.peek(), Some(c) if is_word_continue(c)) {
                    s.bump();
                }
                out.push((
                    Token::Word(input[start..s.pos].to_owned()),
                    Span::new(start, s.pos),
                ));
            }
            other => {
                s.bump();
                return Err(QueryError::new(
                    Span::new(start, s.pos),
                    format!("unexpected character {other:?} at byte {start}"),
                ));
            }
        }
    }
    Ok(out)
}

fn punct(s: &mut Scanner<'_>, out: &mut Vec<(Token, Span)>, tok: Token) {
    let start = s.pos;
    s.bump();
    out.push((tok, Span::new(start, s.pos)));
}

/// After an arrow opener: capture the raw pattern up to `]`, then the closer
/// (`]->` for outgoing, `]-` — and *not* `]->` — for incoming).
fn scan_pattern(
    s: &mut Scanner<'_>,
    out: &mut Vec<(Token, Span)>,
    outgoing: bool,
) -> Result<(), QueryError> {
    let body_start = s.pos;
    while matches!(s.peek(), Some(c) if c != ']') {
        s.bump();
    }
    if s.peek().is_none() {
        return Err(QueryError::expected(
            Span::point(s.pos),
            "end of input",
            ["']' closing the pattern"],
        ));
    }
    let body = Span::new(body_start, s.pos);
    out.push((Token::Pattern(s.src[body_start..s.pos].to_owned()), body));
    let close_start = s.pos;
    if outgoing {
        if s.eat("]->") {
            out.push((Token::ArrowOutClose, Span::new(close_start, s.pos)));
            Ok(())
        } else {
            s.bump(); // the ']'
            Err(QueryError::expected(
                Span::new(close_start, s.pos),
                "']'",
                ["']->'"],
            ))
        }
    } else if s.eat("]->") {
        Err(QueryError::new(
            Span::new(close_start, s.pos),
            format!("an incoming pattern '<-[…]-' cannot end with ']->' at byte {close_start}"),
        ))
    } else if s.eat("]-") {
        out.push((Token::ArrowInClose, Span::new(close_start, s.pos)));
        Ok(())
    } else {
        s.bump(); // the ']'
        Err(QueryError::expected(
            Span::new(close_start, s.pos),
            "']'",
            ["']-'"],
        ))
    }
}

fn scan_number(s: &mut Scanner<'_>, out: &mut Vec<(Token, Span)>) -> Result<(), QueryError> {
    let start = s.pos;
    s.eat("-");
    let int_digits = eat_digits(s);
    if int_digits == 0 {
        // a lone '-' not followed by '[' or a digit
        return Err(QueryError::expected(
            Span::new(start, s.pos.max(start + 1)),
            "'-'",
            ["a number", "'-['"],
        ));
    }
    let mut float = false;
    if s.rest().starts_with('.') && s.rest()[1..].starts_with(|c: char| c.is_ascii_digit()) {
        s.eat(".");
        eat_digits(s);
        float = true;
    }
    let span = Span::new(start, s.pos);
    let text = &s.src[start..s.pos];
    let tok = if float {
        Token::Float(text.parse::<f64>().map_err(|e| {
            QueryError::new(
                span,
                format!("invalid number {text:?}: {e} at byte {start}"),
            )
        })?)
    } else {
        Token::Int(text.parse::<i64>().map_err(|e| {
            QueryError::new(
                span,
                format!("invalid integer {text:?}: {e} at byte {start}"),
            )
        })?)
    };
    out.push((tok, span));
    Ok(())
}

fn eat_digits(s: &mut Scanner<'_>) -> usize {
    let mut n = 0;
    while matches!(s.peek(), Some(c) if c.is_ascii_digit()) {
        s.bump();
        n += 1;
    }
    n
}

fn scan_string(s: &mut Scanner<'_>, out: &mut Vec<(Token, Span)>) -> Result<(), QueryError> {
    let start = s.pos;
    s.bump(); // opening quote
    let mut text = String::new();
    loop {
        match s.bump() {
            None => {
                return Err(QueryError::expected(
                    Span::point(s.pos),
                    "end of input",
                    ["'\"' closing the string"],
                ))
            }
            Some('"') => break,
            Some('\\') => match s.bump() {
                Some('"') => text.push('"'),
                Some('\\') => text.push('\\'),
                Some('n') => text.push('\n'),
                Some('r') => text.push('\r'),
                Some('t') => text.push('\t'),
                other => {
                    let at = s.pos;
                    return Err(QueryError::new(
                        Span::new(at.saturating_sub(2), at),
                        format!(
                            "unsupported string escape {:?} at byte {}",
                            other.map(String::from).unwrap_or_default(),
                            at.saturating_sub(2)
                        ),
                    ));
                }
            },
            Some(c) => text.push(c),
        }
    }
    out.push((Token::Str(text), Span::new(start, s.pos)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn words_numbers_strings_and_punctuation() {
        assert_eq!(
            toks(r#"FROM marko WHERE age >= -3.5 IS "a b" LIMIT 3"#),
            vec![
                Token::Word("FROM".into()),
                Token::Word("marko".into()),
                Token::Word("WHERE".into()),
                Token::Word("age".into()),
                Token::Ge,
                Token::Float(-3.5),
                Token::Word("IS".into()),
                Token::Str("a b".into()),
                Token::Word("LIMIT".into()),
                Token::Int(3),
            ]
        );
    }

    #[test]
    fn arrows_capture_raw_patterns() {
        assert_eq!(
            toks("-[knows+·created]-> <-[(a|b){1,3}]-"),
            vec![
                Token::ArrowOutOpen,
                Token::Pattern("knows+·created".into()),
                Token::ArrowOutClose,
                Token::ArrowInOpen,
                Token::Pattern("(a|b){1,3}".into()),
                Token::ArrowInClose,
            ]
        );
    }

    #[test]
    fn pattern_spans_cover_the_interior() {
        let tokens = tokenize("MATCH -[knows+]->").unwrap();
        let (tok, span) = &tokens[2];
        assert_eq!(*tok, Token::Pattern("knows+".into()));
        assert_eq!(&"MATCH -[knows+]->"[span.start..span.end], "knows+");
    }

    #[test]
    fn negative_numbers_and_arrows_disambiguate() {
        assert_eq!(
            toks("> -3 -[a]->"),
            vec![
                Token::Gt,
                Token::Int(-3),
                Token::ArrowOutOpen,
                Token::Pattern("a".into()),
                Token::ArrowOutClose,
            ]
        );
    }

    #[test]
    fn mismatched_arrow_closers_are_errors() {
        assert!(tokenize("-[a]-").is_err());
        assert!(tokenize("<-[a]->").is_err());
        assert!(tokenize("-[a").is_err());
        let err = tokenize("FROM \"unterminated").unwrap_err();
        assert!(
            err.message.contains("closing the string"),
            "{}",
            err.message
        );
    }

    #[test]
    fn string_escapes_resolve() {
        assert_eq!(
            toks(r#""a\"b\\c\nd""#),
            vec![Token::Str("a\"b\\c\nd".into())]
        );
        assert!(tokenize(r#""bad \q escape""#).is_err());
    }
}
