//! Text ≡ DSL: every MRPA-QL statement form must produce row-for-row the
//! same results as the fluent pipeline verbs it lowers to, under every
//! execution strategy. 32 seeded random graphs × a template per statement
//! form; rows are compared exactly (source, path, head, weight), in executor
//! order, so even ordering divergence between the two frontends would fail.

use mrpa_engine::exec::ExecutionStrategy;
use mrpa_engine::{classic_social_graph, Predicate, PropertyGraph, Traversal, Value};
use mrpa_query::compile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["knows", "created", "rated"];
const LANGS: [&str; 3] = ["java", "ruby", "c"];

/// A seeded random property graph: ~n vertices, ~3n edges, every edge
/// carries a positive `weight`, every vertex an `age`, `lang`, and `kind`.
fn random_graph(seed: u64, n: usize) -> PropertyGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = PropertyGraph::new();
    for i in 0..n {
        let kind = if rng.gen_bool(0.5) {
            "person"
        } else {
            "software"
        };
        g.add_vertex_with(
            &format!("v{i}"),
            [
                ("age", Value::Int(rng.gen_range(10..60))),
                (
                    "lang",
                    Value::Text(LANGS[rng.gen_range(0..LANGS.len())].into()),
                ),
                ("kind", Value::Text(kind.into())),
            ],
        );
    }
    for _ in 0..(3 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        let w = (rng.gen_range(1..100) as f64) / 10.0;
        g.add_edge_with(
            &format!("v{a}"),
            label,
            &format!("v{b}"),
            [("weight", Value::Float(w))],
        );
    }
    g
}

/// Asserts that `text` and the DSL traversal produce identical row vectors
/// under all three strategies.
fn assert_equivalent(g: &PropertyGraph, text: &str, dsl: Traversal) {
    let lowered = compile(text).unwrap_or_else(|e| panic!("{}", e.render(text)));
    for strategy in STRATEGIES {
        let from_text = lowered
            .traversal(g)
            .strategy(strategy)
            .execute()
            .unwrap_or_else(|e| panic!("{text:?} [{strategy:?}]: {e}"));
        let from_dsl = dsl.clone().strategy(strategy).execute().unwrap();
        assert_eq!(
            from_text.rows(),
            from_dsl.rows(),
            "text ≠ DSL for {text:?} under {strategy:?}"
        );
    }
    // the lowered steps must BE the DSL's steps — one IR, no translation gap
    assert_eq!(lowered.steps, dsl.steps(), "steps diverged for {text:?}");
    assert_eq!(&lowered.start, dsl.start_spec());
}

#[test]
fn thirty_two_seeds_of_every_statement_form() {
    for seed in 0..32u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE ^ seed);
        let n = rng.gen_range(12..28);
        let g = random_graph(seed, n);
        let v = |i: usize| format!("v{i}");
        let a = v(rng.gen_range(0..n));
        let b = v(rng.gen_range(0..n));
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        let label2 = LABELS[rng.gen_range(0..LABELS.len())];
        let k = rng.gen_range(1..5);
        let hops = rng.gen_range(2..4);
        let age = rng.gen_range(15..55);

        // plain steps: OUT / IN / BOTH, filters, dedup, limit
        assert_equivalent(
            &g,
            &format!("FROM {a} OUT {label}"),
            Traversal::over(&g).v([a.as_str()]).out([label]),
        );
        assert_equivalent(
            &g,
            &format!("FROM {a}, {b} IN {label}, {label2} LIMIT {k}"),
            Traversal::over(&g)
                .v([a.as_str(), b.as_str()])
                .in_([label, label2])
                .limit(k),
        );
        assert_equivalent(
            &g,
            &format!(r#"FROM (age > {age}) BOTH * WHERE lang = "java" DEDUP"#),
            Traversal::over(&g)
                .v_where("age", Predicate::Gt(age as f64))
                .both_any()
                .has("lang", Predicate::Eq(Value::Text("java".into())))
                .dedup(),
        );
        assert_equivalent(
            &g,
            &format!(r#"FROM * OUT * IS {a}, {b}"#),
            Traversal::over(&g).out_any().is([a.as_str(), b.as_str()]),
        );

        // MATCH in all modes and directions
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH -[{label}+]-> WITHIN {hops}"),
            Traversal::over(&g)
                .v([a.as_str()])
                .match_within(&format!("{label}+"), hops),
        );
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH <-[{label}·{label2}]- WITHIN {hops}"),
            Traversal::over(&g)
                .v([a.as_str()])
                .match_in_within(&format!("{label}·{label2}"), hops),
        );
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH REACHABLE -[({label}|{label2})*]->"),
            Traversal::over(&g)
                .v([a.as_str()])
                .match_reachable(&format!("({label}|{label2})*")),
        );
        assert_equivalent(
            &g,
            "FROM * MATCH GLOBAL -[_+]->",
            Traversal::over(&g).match_reachable_global("_+"),
        );

        // weighted search: CHEAPEST / WIDEST, property and label weights
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH -[{label}+·{label2}]-> CHEAPEST BY weight TOP {k}"),
            Traversal::over(&g)
                .v([a.as_str()])
                .cheapest_(&format!("{label}+·{label2}"))
                .weight_by("weight")
                .top_k(k),
        );
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH -[_+]-> WIDEST BY LABELS(knows = 1.0, created = 2.0, rated = 0.5) TOP {k}"),
            Traversal::over(&g)
                .v([a.as_str()])
                .widest_("_+")
                .weight_by_labels([("knows", 1.0), ("created", 2.0), ("rated", 0.5)])
                .top_k(k),
        );
        assert_equivalent(
            &g,
            &format!("FROM {a} MATCH -[{label}+]-> WITHIN {hops} CHEAPEST"),
            Traversal::over(&g)
                .v([a.as_str()])
                .cheapest_within(&format!("{label}+"), hops),
        );

        // REPEAT with and without UNTIL
        assert_equivalent(
            &g,
            &format!("FROM {a} REPEAT {{1,{hops}}} ( OUT {label} )"),
            Traversal::over(&g)
                .v([a.as_str()])
                .repeat(1..=hops, |p| p.out([label])),
        );
        assert_equivalent(
            &g,
            &format!(r#"FROM {a} REPEAT {{0,{hops}}} ( OUT * ) UNTIL lang = "java""#),
            Traversal::over(&g).v([a.as_str()]).repeat_until(
                hops,
                "lang",
                Predicate::Eq(Value::Text("java".into())),
                |p| p.out_any(),
            ),
        );
    }
}

#[test]
fn terminals_agree_with_the_dsl() {
    let g = classic_social_graph();
    let q = compile("FROM marko MATCH -[knows+·created]-> COUNT").unwrap();
    let t = Traversal::over(&g).v(["marko"]).match_("knows+·created");
    assert_eq!(q.traversal(&g).count().unwrap(), t.count().unwrap());

    let q = compile("FROM vadas OUT created EXISTS").unwrap();
    assert!(!q.traversal(&g).exists().unwrap());

    let q = compile("FROM marko MATCH -[knows+]-> FIRST").unwrap();
    let row = q.traversal(&g).first().unwrap().unwrap();
    let dsl_row = t
        .clone()
        .with_steps(mrpa_query::compile_steps("FROM marko MATCH -[knows+]->").unwrap())
        .first()
        .unwrap()
        .unwrap();
    assert_eq!(row, dsl_row);
}

#[test]
fn explain_matches_the_dsl_plan() {
    let g = classic_social_graph();
    let q =
        compile("EXPLAIN FROM marko MATCH -[knows+·created]-> CHEAPEST BY weight TOP 2").unwrap();
    assert!(q.explain);
    let text_report = q.traversal(&g).explain().unwrap();
    let dsl_report = Traversal::over(&g)
        .v(["marko"])
        .cheapest_("knows+·created")
        .weight_by("weight")
        .top_k(2)
        .explain()
        .unwrap();
    assert_eq!(format!("{text_report:?}"), format!("{dsl_report:?}"));
}

#[test]
fn the_headline_query_runs_on_the_classic_graph() {
    let g = classic_social_graph();
    let q = compile(
        r#"FROM person:marko MATCH -[knows+·created]-> WHERE dst.lang = "java" CHEAPEST BY weight TOP 3"#,
    )
    .unwrap();
    let r = q.traversal(&g).execute().unwrap();
    // cheapest-first per source: lop (1.4 via josh) before ripple (2.0)
    assert_eq!(r.head_names(), vec!["lop", "ripple"]);
    let w: Vec<f64> = r.weights().into_iter().flatten().collect();
    assert!((w[0] - 1.4).abs() < 1e-9);
    assert!((w[1] - 2.0).abs() < 1e-9);
}
