//! # mrpa — a path algebra for multi-relational graphs
//!
//! This is the umbrella crate for the reproduction of Rodriguez & Neubauer,
//! *A Path Algebra for Multi-Relational Graphs* (arXiv:1011.0390). It simply
//! re-exports the member crates:
//!
//! * [`core`] (`mrpa-core`) — the algebra: graphs `G = (V, E ⊆ V × Ω × V)`,
//!   paths, path sets, `∪` / `⋈◦` / `×◦`, basic traversals, edge patterns.
//! * [`regex`] (`mrpa-regex`) — regular path expressions over the edge
//!   alphabet: NFA/DFA recognizers and the single-stack path generator.
//! * [`algorithms`] (`mrpa-algorithms`) — single-relational algorithms and the
//!   §IV-C derivations that make them meaningful on multi-relational data.
//! * [`engine`] (`mrpa-engine`) — the property-graph traversal engine the
//!   paper motivates: pipeline DSL, planner, and three executors.
//! * [`datagen`] (`mrpa-datagen`) — deterministic synthetic workloads.
//! * [`query`] (`mrpa-query`) — MRPA-QL, the textual query frontend: lexer,
//!   parser, pretty-printer, and lowering onto the engine's pipeline IR.
//! * [`server`] (`mrpa-server`) — a concurrent multi-client query server
//!   speaking newline-delimited JSON over TCP.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use mrpa::prelude::*;
//!
//! let g = classic_social_graph();
//! let created_by_friends = Traversal::over(&g)
//!     .v(["marko"])
//!     .out(["knows"])
//!     .out(["created"])
//!     .execute()
//!     .unwrap();
//! assert_eq!(created_by_friends.head_names_sorted(), vec!["lop", "ripple"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mrpa_algorithms as algorithms;
pub use mrpa_core as core;
pub use mrpa_datagen as datagen;
pub use mrpa_engine as engine;
pub use mrpa_query as query;
pub use mrpa_regex as regex;
pub use mrpa_server as server;

/// One-stop prelude re-exporting the most common items of every member crate.
pub mod prelude {
    pub use mrpa_algorithms::prelude::*;
    pub use mrpa_core::prelude::*;
    pub use mrpa_engine::prelude::*;
    pub use mrpa_regex::prelude::*;
}
