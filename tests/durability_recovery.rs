//! Deterministic crash-recovery matrix for the durable store.
//!
//! For every seeded mutation script and every [`FailPoint`] crash boundary
//! (mid-WAL-append, torn append, post-append/pre-ack, mid-checkpoint,
//! pre-checkpoint-rename, post-checkpoint/pre-truncate), the store is
//! "killed" by an injected failure and reopened from disk. The reopened
//! store must be **structurally identical** — interner id assignment, vertex
//! set, edge-list order, per-vertex adjacency-bucket order, all properties,
//! and row-for-row query results under all three execution strategies — to a
//! *twin* store that executed exactly the acknowledged prefix of the script.
//! A frozen O(1) snapshot taken before the failing op cross-checks the
//! "last acknowledged state" claim directly.
//!
//! The one deliberate asymmetry is [`FailPoint::WalFlush`]: the record is
//! fully in the log but the mutator never returned `Ok`, so recovery
//! legitimately resurfaces the in-flight op — the classic WAL gray zone —
//! and the matrix asserts exactly that.

use mrpa::core::Edge;
use mrpa::engine::{ExecutionStrategy, FailPoint, PropertyGraph, StoreError, Traversal, Value};

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const VERTICES: usize = 12;
const LABELS: [&str; 3] = ["l0", "l1", "l2"];

/// One step of a mutation script.
#[derive(Debug, Clone)]
enum Op {
    AddEdge(String, String, String),
    AddVertex(String),
    SetVProp(String, String, Value),
    SetEProp(String, String, String, String, Value),
    RemoveEdge(String, String, String),
    RemoveVertex(String),
    Checkpoint,
}

/// Deterministic ~60-op script: a dense mix of adds, property writes, and
/// removals (so adjacency buckets see real swap-remove churn), with one
/// checkpoint planted mid-script.
fn script(seed: u64) -> Vec<Op> {
    use mrpa::datagen::random::rng_stream;
    use rand::Rng as _;
    let mut r = rng_stream(0xd00d_5eed, seed);
    let vname = |i: usize| format!("v{i}");
    let mut ops = Vec::new();
    for k in 0..60 {
        if k == 31 {
            ops.push(Op::Checkpoint);
            continue;
        }
        let t = vname(r.gen_range(0..VERTICES));
        let h = vname(r.gen_range(0..VERTICES));
        let l = LABELS[r.gen_range(0..LABELS.len())].to_owned();
        let roll = r.gen_range(0..100);
        ops.push(match roll {
            0..=49 => Op::AddEdge(t, l, h),
            50..=57 => Op::AddVertex(vname(r.gen_range(0..VERTICES + 4))),
            58..=69 => Op::SetVProp(
                t,
                format!("k{}", r.gen_range(0..3)),
                Value::Int(r.gen_range(0i64..1000)),
            ),
            70..=79 => Op::SetEProp(t, l, h, "w".to_owned(), Value::Float(r.gen_range(0.0..1.0))),
            80..=92 => Op::RemoveEdge(t, l, h),
            _ => Op::RemoveVertex(t),
        });
    }
    ops
}

/// Executes one op against a store through the fallible API. Ops referencing
/// names the store has never seen degrade to pure reads (skips), identically
/// on every store that executes the same prefix.
fn run_op(store: &PropertyGraph, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::AddEdge(t, l, h) => store.try_add_edge(t, l, h).map(|_| ()),
        Op::AddVertex(n) => store.try_add_vertex(n).map(|_| ()),
        Op::SetVProp(n, key, value) => match store.vertex(n) {
            Ok(v) => store.try_set_vertex_property(v, key, value.clone()),
            Err(_) => Ok(()),
        },
        Op::SetEProp(t, l, h, key, value) => {
            match (store.vertex(t), store.label(l), store.vertex(h)) {
                (Ok(tv), Ok(lv), Ok(hv)) => {
                    store.try_set_edge_property(Edge::new(tv, lv, hv), key, value.clone())
                }
                _ => Ok(()),
            }
        }
        Op::RemoveEdge(t, l, h) => store.try_remove_edge(t, l, h).map(|_| ()),
        Op::RemoveVertex(n) => store.try_remove_vertex(n).map(|_| ()),
        Op::Checkpoint => store.checkpoint(),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mrpa-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts two stores are structurally identical: interners, vertex sets,
/// edge-list order, per-vertex adjacency-bucket order, every property, and
/// row-for-row query results under all three strategies.
fn assert_same_store(a: &PropertyGraph, b: &PropertyGraph, ctx: &str) {
    let sa = a.snapshot();
    let sb = b.snapshot();
    let names = |s: &mrpa::engine::GraphSnapshot| -> Vec<String> {
        s.interner().vertices().map(|(_, n)| n.to_owned()).collect()
    };
    assert_eq!(names(&sa), names(&sb), "{ctx}: interned vertex names");
    let labels = |s: &mrpa::engine::GraphSnapshot| -> Vec<String> {
        s.interner().labels().map(|(_, n)| n.to_owned()).collect()
    };
    assert_eq!(labels(&sa), labels(&sb), "{ctx}: interned label names");
    let va: Vec<_> = sa.graph().vertices().collect();
    let vb: Vec<_> = sb.graph().vertices().collect();
    assert_eq!(va, vb, "{ctx}: vertex sets");
    assert_eq!(
        sa.graph().edge_slice(),
        sb.graph().edge_slice(),
        "{ctx}: edge list order"
    );
    for &v in &va {
        assert_eq!(
            sa.graph().out_edges(v),
            sb.graph().out_edges(v),
            "{ctx}: out bucket of {v:?}"
        );
        assert_eq!(
            sa.graph().in_edges(v),
            sb.graph().in_edges(v),
            "{ctx}: in bucket of {v:?}"
        );
        assert_eq!(
            sa.vertex_properties(v),
            sb.vertex_properties(v),
            "{ctx}: props of {v:?}"
        );
    }
    for e in sa.graph().edge_slice() {
        assert_eq!(
            sa.edge_properties(e),
            sb.edge_properties(e),
            "{ctx}: props of {e:?}"
        );
    }
    // row-for-row query equality under every strategy (only labels the
    // stores have interned — the pipeline resolves label names strictly,
    // and the interners were just asserted identical)
    let starts: Vec<String> = va
        .iter()
        .filter_map(|&v| sa.interner().vertex_name(v))
        .map(str::to_owned)
        .collect();
    let known: Vec<&str> = LABELS
        .iter()
        .copied()
        .filter(|l| sa.interner().get_label(l).is_some())
        .collect();
    if starts.is_empty() || known.is_empty() {
        return;
    }
    for strategy in STRATEGIES {
        let run = |g: &PropertyGraph| {
            let one = Traversal::over(g)
                .v(starts.iter().map(String::as_str))
                .out(known.iter().copied())
                .strategy(strategy)
                .execute()
                .unwrap();
            let two = Traversal::over(g)
                .v(starts.iter().map(String::as_str))
                .out(known.iter().copied())
                .out(known.iter().copied())
                .strategy(strategy)
                .execute()
                .unwrap();
            let both = Traversal::over(g)
                .v(starts.iter().map(String::as_str))
                .both(known.iter().copied())
                .strategy(strategy)
                .execute()
                .unwrap();
            (
                one.rows().to_vec(),
                two.rows().to_vec(),
                both.rows().to_vec(),
            )
        };
        assert_eq!(run(a), run(b), "{ctx}: query rows under {strategy:?}");
    }
}

/// Runs the full matrix cell: seed × crash point × countdown. Returns whether
/// an injected failure actually fired (scripts can exhaust before deep
/// countdowns — those cells become no-crash controls).
fn run_cell(seed: u64, point: FailPoint, countdown: u64) -> bool {
    let tag = format!("{seed}-{point}-{countdown}");
    let primary_dir = temp_dir(&format!("p-{tag}"));
    let twin_dir = temp_dir(&format!("t-{tag}"));
    let ops = script(seed);

    let primary = PropertyGraph::open(&primary_dir).unwrap();
    primary.arm_failpoint(point, countdown);
    let mut crash_at: Option<usize> = None;
    let mut snap_before = primary.snapshot();
    for (i, op) in ops.iter().enumerate() {
        let before = primary.snapshot();
        match run_op(&primary, op) {
            Ok(()) => {}
            Err(StoreError::Injected(p)) => {
                assert_eq!(p, point, "unexpected failpoint fired");
                crash_at = Some(i);
                snap_before = before;
                break;
            }
            Err(other) => panic!("unexpected store error: {other}"),
        }
    }
    let fired = crash_at.is_some();

    // The acknowledged prefix: everything before the failing op. (For
    // WalFlush the failing op is additionally durable — handled below.)
    let acked = crash_at.unwrap_or(ops.len());
    let twin = PropertyGraph::open(&twin_dir).unwrap();
    for op in &ops[..acked] {
        run_op(&twin, op).unwrap();
    }
    if let Some(k) = crash_at {
        match point {
            // the in-flight record is fully logged: recovery resurfaces it
            FailPoint::WalFlush => run_op(&twin, &ops[k]).unwrap(),
            // truncation dies AFTER the checkpoint was written and
            // canonically installed — logically a no-op, but it rebuilds
            // adjacency buckets in edge-list order, so the twin must
            // checkpoint too for the strict bucket-order comparison
            FailPoint::WalTruncate => {
                assert!(matches!(ops[k], Op::Checkpoint));
                twin.checkpoint().unwrap();
            }
            _ => {}
        }
    }

    // the frozen snapshot IS the last acknowledged state
    if fired {
        let twin_pre = PropertyGraph::new();
        for op in &ops[..acked] {
            match op {
                Op::Checkpoint => {}
                other => run_op(&twin_pre, other).unwrap(),
            }
        }
        assert_eq!(
            snap_before.graph().edge_count(),
            twin_pre.edge_count(),
            "{tag}: frozen snapshot edge count"
        );
        assert_eq!(
            snap_before.graph().vertex_count(),
            twin_pre.vertex_count(),
            "{tag}: frozen snapshot vertex count"
        );
    }

    // "kill" the process: drop the poisoned/failed store and reopen strictly.
    drop(primary);
    let (reopened, report) = PropertyGraph::open_recover(&primary_dir).unwrap();
    if fired {
        match point {
            FailPoint::WalAppendTorn => {
                assert!(
                    matches!(report.wal_tail, mrpa::engine::WalTail::Torn { .. }),
                    "{tag}: torn append must leave a torn tail, got {:?}",
                    report.wal_tail
                );
            }
            FailPoint::WalTruncate => {
                // checkpoint installed, WAL survived: replay must skip
                assert!(
                    report.skipped_records > 0,
                    "{tag}: expected seqno-skipped records, report = {report:?}"
                );
            }
            _ => {}
        }
    }
    // strict open agrees (torn tails are legal in strict mode)
    let strict = PropertyGraph::open(&primary_dir).unwrap();
    assert_same_store(&reopened, &twin, &format!("{tag}: reopened vs twin"));
    assert_same_store(&strict, &twin, &format!("{tag}: strict-reopened vs twin"));

    // a recovered store is fully writable and durable again
    strict.add_edge("v0", "l0", "v1");
    let count = strict.edge_count();
    drop(strict);
    let again = PropertyGraph::open(&primary_dir).unwrap();
    assert_eq!(again.edge_count(), count, "{tag}: post-recovery mutation");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&twin_dir);
    fired
}

#[test]
fn crash_matrix_wal_append_points() {
    let mut fired = 0;
    for seed in 0..4 {
        for point in [
            FailPoint::WalAppend,
            FailPoint::WalAppendTorn,
            FailPoint::WalFlush,
        ] {
            for countdown in [0, 7, 23, 45] {
                if run_cell(seed, point, countdown) {
                    fired += 1;
                }
            }
        }
    }
    assert!(fired >= 30, "matrix degenerated: only {fired} cells fired");
}

#[test]
fn crash_matrix_checkpoint_points() {
    let mut fired = 0;
    for seed in 0..4 {
        for point in [
            FailPoint::CheckpointWrite,
            FailPoint::CheckpointRename,
            FailPoint::WalTruncate,
        ] {
            // CheckpointWrite countdown picks which page write dies; the
            // others fire on their single per-checkpoint hit
            let countdowns: &[u64] = if point == FailPoint::CheckpointWrite {
                &[0, 2, 4, 6]
            } else {
                &[0]
            };
            for &countdown in countdowns {
                if run_cell(seed, point, countdown) {
                    fired += 1;
                }
            }
        }
    }
    assert!(fired >= 20, "matrix degenerated: only {fired} cells fired");
}

#[test]
fn no_crash_control_roundtrips_exactly() {
    for seed in 0..4 {
        let primary_dir = temp_dir(&format!("ctl-p-{seed}"));
        let twin_dir = temp_dir(&format!("ctl-t-{seed}"));
        let ops = script(seed);
        let primary = PropertyGraph::open(&primary_dir).unwrap();
        let twin = PropertyGraph::open(&twin_dir).unwrap();
        for op in &ops {
            run_op(&primary, op).unwrap();
            run_op(&twin, op).unwrap();
        }
        primary.persist().unwrap();
        drop(primary);
        let reopened = PropertyGraph::open(&primary_dir).unwrap();
        // live-never-restarted twin vs reopened primary: identical, down to
        // adjacency order — the canonical-install invariant at work
        assert_same_store(&reopened, &twin, &format!("control seed {seed}"));
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&twin_dir);
    }
}

#[test]
fn checkpoint_failures_do_not_poison_the_live_store() {
    for point in [
        FailPoint::CheckpointWrite,
        FailPoint::CheckpointRename,
        FailPoint::WalTruncate,
    ] {
        let dir = temp_dir(&format!("nopoison-{point}"));
        let g = PropertyGraph::open(&dir).unwrap();
        g.add_edge("a", "r", "b");
        g.arm_failpoint(point, 0);
        assert_eq!(g.checkpoint(), Err(StoreError::Injected(point)));
        // the live store keeps accepting work…
        g.add_edge("b", "r", "c");
        assert_eq!(g.edge_count(), 2);
        // …a later checkpoint succeeds…
        g.checkpoint().unwrap();
        g.add_edge("c", "r", "d");
        drop(g);
        // …and the directory recovers to the full state
        let g = PropertyGraph::open(&dir).unwrap();
        assert_eq!(g.edge_count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
