//! Seeded equivalence tests for CSR-backed chunked (vectorized) execution.
//!
//! The acceptance property of the vectorized subsystem: for every query
//! form the engine supports — step chains in all directions, regular path
//! patterns, weighted search, bounded repetition, filters, dedup, limits —
//! executing with vectorization ON (CSR label-segment scans + chunked row
//! transport, the default) produces **exactly** the rows of executing with
//! vectorization OFF (hashmap adjacency + scalar pulls), row order and
//! weights included, under every execution strategy and across adversarial
//! chunk sizes (1 forces a stage suspension at every row boundary). On
//! full-drain forms the `ExecStats` expansion counters must agree too — the
//! CSR scan must visit exactly the edges the hash-bucket probe visits.
//! Non-pushed limits are the documented exception: the chunked path may
//! over-expand upstream by up to one chunk (rows are still identical).

use rand::Rng as _;

use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{ExecutionStrategy, PropertyGraph, QueryResult, Traversal, Value};

const CASES: usize = 32;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

/// Chunk sizes that stress the protocol: 1 suspends between every row, 3
/// splits frontiers mid-layer, the default exercises the intended shape.
const CHUNKS: [usize; 3] = [1, 3, 2048];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random property graph (same family as the optimizer-equivalence
/// suite): every label interned deterministically, then random edges — dense
/// enough for multi-hop patterns to branch, small enough for 32 × 3 × 3
/// cases to stay fast.
fn random_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(4usize..12);
    for i in 0..n {
        let v = g.add_vertex(&format!("v{i}"));
        g.set_vertex_property(v, "age", Value::Int(r.gen_range(10i64..60)));
    }
    g.add_edge("v0", "a", "v1");
    g.add_edge("v1", "b", "v2");
    g.add_edge("v2", "c", "v0");
    let m = r.gen_range(6usize..28);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        g.add_edge(&t, l, &h);
    }
    g
}

fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0x0717_1337, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

/// Order-sensitive row signature including the weight column: the chunked
/// path must reproduce the scalar row *sequence*, not just the set.
fn row_sequence(result: &QueryResult) -> Vec<String> {
    result
        .rows()
        .iter()
        .map(|row| {
            format!(
                "{}-[{}]->{} w={:?}",
                row.source, row.path, row.head, row.weight
            )
        })
        .collect()
}

/// Executes `build()` scalar (vectorize off) and chunked (on, at `chunk`
/// rows) under `strategy` and asserts row-for-row equality; returns both
/// results so callers can additionally compare stats.
fn assert_equivalent(
    build: &dyn Fn() -> Traversal,
    strategy: ExecutionStrategy,
    chunk: usize,
    label: &str,
) -> (QueryResult, QueryResult) {
    let scalar = build()
        .strategy(strategy)
        .vectorize(false)
        .execute()
        .unwrap();
    let chunked = build()
        .strategy(strategy)
        .chunk_size(chunk)
        .execute()
        .unwrap();
    assert_eq!(
        row_sequence(&scalar),
        row_sequence(&chunked),
        "{label} strategy {strategy:?} chunk {chunk}"
    );
    (scalar, chunked)
}

#[test]
fn step_chains_match_scalar_row_for_row_with_equal_expansions() {
    cases(10, |r, case| {
        let g = random_graph(r);
        let l1 = LABELS[r.gen_range(0..LABELS.len())];
        let l2 = LABELS[r.gen_range(0..LABELS.len())];
        let cutoff = r.gen_range(10i64..60) as f64;
        for strategy in STRATEGIES {
            for chunk in CHUNKS {
                let (scalar, chunked) = assert_equivalent(
                    &|| {
                        Traversal::over(&g)
                            .out([l1])
                            .has("age", mrpa::engine::Predicate::Gt(cutoff))
                            .in_([l2])
                            .both([l1, l2])
                            .dedup()
                    },
                    strategy,
                    chunk,
                    &format!("case {case} chain {l1}/{l2}"),
                );
                // full drain: the CSR scan must do exactly the scalar's work
                assert_eq!(
                    scalar.stats().expansions,
                    chunked.stats().expansions,
                    "case {case} chain expansions, {strategy:?} chunk {chunk}"
                );
            }
        }
    });
}

#[test]
fn match_patterns_agree_under_walk_and_reachable_semantics() {
    cases(11, |r, case| {
        let g = random_graph(r);
        let l = LABELS[r.gen_range(0..LABELS.len())];
        let walk_pattern = format!("{l}+");
        for strategy in STRATEGIES {
            for chunk in CHUNKS {
                let (s1, c1) = assert_equivalent(
                    &|| Traversal::over(&g).match_within(&walk_pattern, 3),
                    strategy,
                    chunk,
                    &format!("case {case} match {walk_pattern}"),
                );
                assert_eq!(
                    s1.stats().expansions,
                    c1.stats().expansions,
                    "case {case} match expansions, {strategy:?} chunk {chunk}"
                );
                // reachability semantics exercises the seen-set discipline
                let (s2, c2) = assert_equivalent(
                    &|| Traversal::over(&g).match_reachable(&format!("{l}*·a")),
                    strategy,
                    chunk,
                    &format!("case {case} reach {l}*·a"),
                );
                assert_eq!(
                    s2.stats().expansions,
                    c2.stats().expansions,
                    "case {case} reach expansions, {strategy:?} chunk {chunk}"
                );
            }
        }
    });
}

#[test]
fn weighted_search_agrees_including_emitted_costs() {
    cases(12, |r, case| {
        let g = random_graph(r);
        let l = LABELS[r.gen_range(0..LABELS.len())];
        let pattern = format!("{l}+");
        for strategy in STRATEGIES {
            for chunk in CHUNKS {
                // unit weights: cost = hop count; row_sequence compares the
                // weight column, so emitted costs are pinned too
                let (s, c) = assert_equivalent(
                    &|| Traversal::over(&g).cheapest_within(&pattern, 4),
                    strategy,
                    chunk,
                    &format!("case {case} cheapest {pattern}"),
                );
                assert_eq!(
                    s.stats().expansions,
                    c.stats().expansions,
                    "case {case} cheapest expansions, {strategy:?} chunk {chunk}"
                );
            }
        }
    });
}

#[test]
fn repeat_and_limit_forms_agree() {
    cases(13, |r, case| {
        let g = random_graph(r);
        let l = LABELS[r.gen_range(0..LABELS.len())];
        let k = r.gen_range(0usize..8);
        for strategy in STRATEGIES {
            for chunk in CHUNKS {
                let (s, c) = assert_equivalent(
                    &|| Traversal::over(&g).repeat(1..=2, |b| b.out([l])),
                    strategy,
                    chunk,
                    &format!("case {case} repeat {l}"),
                );
                assert_eq!(
                    s.stats().expansions,
                    c.stats().expansions,
                    "case {case} repeat expansions, {strategy:?} chunk {chunk}"
                );
                // rows under a trailing limit must still match exactly;
                // expansion counts are deliberately NOT compared (the chunked
                // path may over-pull upstream by up to one chunk)
                assert_equivalent(
                    &|| Traversal::over(&g).match_within("a·(b|c)", 3).limit(k),
                    strategy,
                    chunk,
                    &format!("case {case} limit {k}"),
                );
            }
        }
    });
}
