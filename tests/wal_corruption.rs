//! Seeded WAL-corruption corpus: truncations, bit flips, and duplicated
//! records.
//!
//! Each case takes a pristine WAL produced by a real mutation script,
//! damages its bytes deterministically, and reopens the directory. The
//! contract under test:
//!
//! * recovery NEVER panics — damage classifies as a torn or corrupt tail;
//! * [`PropertyGraph::open`] (strict) fails with a typed
//!   [`RecoveryError::CorruptWal`] exactly when the scan classifies the
//!   damage as `Corrupt`, and still opens cleanly on a merely `Torn` tail;
//! * [`PropertyGraph::open_recover`] always opens, recovering precisely the
//!   **clean prefix**: the replayed state equals a twin store that executed
//!   the surviving records' ops, nothing more;
//! * a recovered store is immediately writable and durable again (the
//!   damaged tail is discarded for good).

use mrpa::engine::wal::{scan_wal_bytes, WalTail};
use mrpa::engine::{PropertyGraph, RecoveryError, StoreError, Value, WalOp};

const WAL_HEADER: usize = 8;

/// Replays one decoded WAL op against a store through the public API. The
/// twin interns names in the same order as the original run, so the raw ids
/// embedded in remove/property ops resolve identically.
fn apply_walop(store: &PropertyGraph, op: &WalOp) {
    match op {
        WalOp::AddVertex { name } => {
            store.add_vertex(name);
        }
        WalOp::AddEdge { tail, label, head } => {
            store.add_edge(tail, label, head);
        }
        WalOp::RemoveEdge { tail, label, head } => {
            let snap = store.snapshot();
            let t = snap.interner().vertex_name(*tail).unwrap().to_owned();
            let l = snap.interner().label_name(*label).unwrap().to_owned();
            let h = snap.interner().vertex_name(*head).unwrap().to_owned();
            store.remove_edge(&t, &l, &h);
        }
        WalOp::RemoveVertex { vertex } => {
            let snap = store.snapshot();
            let name = snap.interner().vertex_name(*vertex).unwrap().to_owned();
            store.remove_vertex(&name);
        }
        WalOp::SetVertexProp { vertex, key, value } => {
            store.set_vertex_property(*vertex, key, value.clone());
        }
        WalOp::SetEdgeProp {
            tail,
            label,
            head,
            key,
            value,
        } => {
            store.set_edge_property(
                mrpa::core::Edge::new(*tail, *label, *head),
                key,
                value.clone(),
            );
        }
    }
}

fn assert_same_state(a: &PropertyGraph, b: &PropertyGraph, ctx: &str) {
    let sa = a.snapshot();
    let sb = b.snapshot();
    let names = |s: &mrpa::engine::GraphSnapshot| -> (Vec<String>, Vec<String>) {
        (
            s.interner().vertices().map(|(_, n)| n.to_owned()).collect(),
            s.interner().labels().map(|(_, n)| n.to_owned()).collect(),
        )
    };
    assert_eq!(names(&sa), names(&sb), "{ctx}: interners");
    assert_eq!(
        sa.graph().vertices().collect::<Vec<_>>(),
        sb.graph().vertices().collect::<Vec<_>>(),
        "{ctx}: vertex sets"
    );
    assert_eq!(
        sa.graph().edge_slice(),
        sb.graph().edge_slice(),
        "{ctx}: edges"
    );
    for v in sa.graph().vertices() {
        assert_eq!(
            sa.vertex_properties(v),
            sb.vertex_properties(v),
            "{ctx}: vertex props"
        );
    }
    for e in sa.graph().edge_slice() {
        assert_eq!(
            sa.edge_properties(e),
            sb.edge_properties(e),
            "{ctx}: edge props"
        );
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mrpa-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a pristine durable WAL (~30 mixed ops, no checkpoint) and returns
/// its directory plus the raw log bytes.
fn pristine_wal(tag: &str) -> (std::path::PathBuf, Vec<u8>) {
    let dir = temp_dir(tag);
    let g = PropertyGraph::open(&dir).unwrap();
    for i in 0..10 {
        g.add_edge(&format!("v{i}"), "next", &format!("v{}", (i + 1) % 10));
        g.add_edge(&format!("v{i}"), "skip", &format!("v{}", (i + 3) % 10));
    }
    for i in 0..5 {
        let v = g.vertex(&format!("v{i}")).unwrap();
        g.set_vertex_property(v, "rank", Value::Int(i));
    }
    g.remove_edge("v2", "skip", "v5");
    g.remove_vertex("v7");
    let e = g.add_edge("v0", "extra", "v4");
    g.set_edge_property(e, "w", Value::Float(0.25));
    g.persist().unwrap();
    drop(g);
    let bytes = std::fs::read(dir.join("wal.log")).unwrap();
    assert!(
        bytes.len() > WAL_HEADER + 100,
        "base WAL suspiciously small"
    );
    (dir, bytes)
}

/// Applies one deterministic corruption to `bytes`: truncate, flip a bit, or
/// append a duplicated record frame. Returns a human-readable description.
fn corrupt(bytes: &mut Vec<u8>, seed: u64) -> String {
    // cheap deterministic mixer (no RNG needed for byte picking)
    let mix = |x: u64| {
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed.rotate_left(17);
        h ^= h >> 31;
        h.wrapping_mul(0xbf58_476d_1ce4_e5b9)
    };
    let body = bytes.len() - WAL_HEADER;
    match seed % 3 {
        0 => {
            let cut = WAL_HEADER + (mix(1) as usize % body);
            bytes.truncate(cut);
            format!("truncate at {cut}")
        }
        1 => {
            let off = WAL_HEADER + (mix(2) as usize % body);
            let bit = (mix(3) % 8) as u8;
            bytes[off] ^= 1 << bit;
            format!("flip bit {bit} at {off}")
        }
        _ => {
            let scan = scan_wal_bytes(bytes);
            assert!(matches!(scan.tail, WalTail::Clean));
            let rec = &scan.records[mix(4) as usize % scan.records.len()];
            let frame = bytes[rec.offset as usize..rec.end as usize].to_vec();
            bytes.extend_from_slice(&frame);
            format!("duplicate record {} at end", rec.seqno)
        }
    }
}

#[test]
fn corrupted_wals_recover_their_clean_prefix_without_panicking() {
    let (base_dir, base_bytes) = pristine_wal("base");
    let mut corrupt_cases = 0;
    let mut torn_cases = 0;
    for seed in 0..24u64 {
        let mut bytes = base_bytes.clone();
        let what = corrupt(&mut bytes, seed);
        let ctx = format!("seed {seed} ({what})");

        // predicted classification of the damaged image
        let scan = scan_wal_bytes(&bytes);

        // two directories with identical damage: opening a store REPAIRS a
        // torn tail on disk, so the strict probe must not see the lenient
        // probe's aftermath (or vice versa)
        let dir = temp_dir(&format!("case-{seed}"));
        let strict_dir = temp_dir(&format!("case-{seed}-strict"));
        for d in [&dir, &strict_dir] {
            std::fs::create_dir_all(d).unwrap();
            std::fs::write(d.join("wal.log"), &bytes).unwrap();
        }

        // strict open: typed error on Corrupt, fine on Clean/Torn
        match &scan.tail {
            WalTail::Corrupt { offset, .. } => {
                corrupt_cases += 1;
                match PropertyGraph::open(&strict_dir) {
                    Err(StoreError::Recovery(RecoveryError::CorruptWal { offset: at, .. })) => {
                        assert_eq!(at, *offset, "{ctx}: corruption offset")
                    }
                    other => panic!("{ctx}: strict open returned {other:?}"),
                }
            }
            WalTail::Torn { .. } => {
                torn_cases += 1;
                PropertyGraph::open(&strict_dir)
                    .unwrap_or_else(|e| panic!("{ctx}: torn tail must open strictly, got {e}"));
            }
            WalTail::Clean => {}
        }

        // lenient open always succeeds and recovers exactly the clean prefix
        let (recovered, report) = PropertyGraph::open_recover(&dir).unwrap();
        assert_eq!(
            std::mem::discriminant(&report.wal_tail),
            std::mem::discriminant(&scan.tail),
            "{ctx}: reported tail kind"
        );
        assert_eq!(
            report.replayed_records,
            scan.records.len() as u64,
            "{ctx}: replayed record count"
        );
        let twin = PropertyGraph::new();
        for rec in &scan.records {
            apply_walop(&twin, &rec.op);
        }
        assert_same_state(&recovered, &twin, &ctx);

        // the damaged tail is gone for good: the store accepts new writes
        // and a further strict reopen sees prefix + new write only
        recovered.add_edge("phoenix", "rises", "again");
        let count = recovered.edge_count();
        drop(recovered);
        let reopened = PropertyGraph::open(&dir).unwrap();
        assert_eq!(reopened.edge_count(), count, "{ctx}: post-recovery write");
        twin.add_edge("phoenix", "rises", "again");
        assert_same_state(&reopened, &twin, &format!("{ctx}: after re-write"));

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&strict_dir);
    }
    // the corpus must exercise both failure classes, not collapse into one
    assert!(corrupt_cases >= 5, "only {corrupt_cases} corrupt cases");
    assert!(torn_cases >= 3, "only {torn_cases} torn cases");
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn a_foreign_file_is_refused_with_a_typed_error() {
    let dir = temp_dir("foreign");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), b"definitely not a wal file").unwrap();
    match PropertyGraph::open(&dir) {
        Err(StoreError::Recovery(RecoveryError::CorruptWal { .. })) => {}
        other => panic!("expected CorruptWal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_header_counts_as_torn_and_opens_empty() {
    let dir = temp_dir("header");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), &b"MRPA"[..]).unwrap();
    let (g, report) = PropertyGraph::open_recover(&dir).unwrap();
    assert!(matches!(report.wal_tail, WalTail::Torn { offset: 0 }));
    assert_eq!(g.vertex_count(), 0);
    g.add_edge("a", "b", "c");
    drop(g);
    assert_eq!(PropertyGraph::open(&dir).unwrap().edge_count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
