//! Regression tests for the per-generation CSR topology cache.
//!
//! The cache contract (mirroring the reversed-graph cache it sits next to):
//! each direction's CSR snapshot is built **lazily, at most once per
//! generation**, shared by every snapshot of that generation, invalidated by
//! exactly the mutations that change edge structure, and carried across
//! copy-on-write property generations. A pure-Out query plan must never pay
//! for the In-direction CSR, and switching vectorized execution off must
//! never build either. All of this is observed through the store's
//! `csr_builds` counter and `csr_bytes` gauge.

use mrpa::engine::{classic_social_graph, ExecutionStrategy, Traversal, Value};

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

#[test]
fn out_csr_builds_once_per_generation_and_in_csr_never() {
    let g = classic_social_graph();
    assert_eq!(g.stats().csr_builds, 0, "no builds before any query");
    // a battery of pure-Out plans, all strategies, repeated: one build total
    for _ in 0..3 {
        for strategy in STRATEGIES {
            let r = Traversal::over(&g)
                .v(["marko"])
                .out(["knows"])
                .out(["created"])
                .strategy(strategy)
                .execute()
                .unwrap();
            assert_eq!(r.head_names_sorted(), vec!["lop", "ripple"]);
            let m = Traversal::over(&g)
                .v(["marko"])
                .match_("knows+·created")
                .strategy(strategy)
                .execute()
                .unwrap();
            assert_eq!(m.head_names_sorted(), vec!["lop", "ripple"]);
        }
    }
    assert_eq!(
        g.stats().csr_builds,
        1,
        "pure-Out plans share one Out build and never touch the In CSR"
    );
    assert!(
        g.stats().csr_bytes > 0,
        "the built CSR reports its footprint"
    );
}

#[test]
fn in_direction_plans_build_the_in_csr_exactly_once() {
    let g = classic_social_graph();
    for _ in 0..2 {
        let r = Traversal::over(&g)
            .v(["lop"])
            .in_(["created"])
            .execute()
            .unwrap();
        assert_eq!(r.head_names_sorted(), vec!["josh", "marko", "peter"]);
    }
    // In expansions prewarm the reversed graph's CSR only: one In build
    // (the forward CSR was never needed)
    assert_eq!(g.stats().csr_builds, 1);
}

#[test]
fn structural_mutation_invalidates_exactly_once_and_property_writes_carry() {
    let g = classic_social_graph();
    let query = |g: &_| {
        Traversal::over(g)
            .v(["marko"])
            .out(["knows"])
            .execute()
            .unwrap()
            .head_names_sorted()
    };
    assert_eq!(query(&g), vec!["josh", "vadas"]);
    assert_eq!(g.stats().csr_builds, 1);
    // a structural mutation starts a cold generation: exactly one rebuild,
    // and the rebuilt CSR sees the new edge
    g.add_edge("marko", "knows", "peter");
    assert_eq!(query(&g), vec!["josh", "peter", "vadas"]);
    assert_eq!(query(&g), vec!["josh", "peter", "vadas"]);
    assert_eq!(g.stats().csr_builds, 2, "one invalidation, one rebuild");
    // an in-place property write keeps the cache…
    g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(28i64));
    assert_eq!(query(&g), vec!["josh", "peter", "vadas"]);
    assert_eq!(g.stats().csr_builds, 2);
    // …and so does a property write that pays the COW clone (properties
    // cannot change edge structure, so the topology carries over)
    let pinned = g.snapshot();
    g.set_vertex_property(g.vertex("vadas").unwrap(), "age", Value::from(29i64));
    assert!(g.stats().deep_clones > 0);
    assert_eq!(query(&g), vec!["josh", "peter", "vadas"]);
    assert_eq!(g.stats().csr_builds, 2, "cache carried across COW");
    drop(pinned);
}

#[test]
fn vectorize_off_and_wildcard_expansions_build_nothing() {
    let g = classic_social_graph();
    let r = Traversal::over(&g)
        .v(["marko"])
        .out(["knows"])
        .vectorize(false)
        .execute()
        .unwrap();
    assert_eq!(r.head_names_sorted(), vec!["josh", "vadas"]);
    // wildcard steps keep the hashmap's interleaved insertion order, so they
    // bypass the label-sorted CSR even with vectorization on
    let any = Traversal::over(&g)
        .v(["marko"])
        .out_any()
        .execute()
        .unwrap();
    assert_eq!(any.rows().len(), 3);
    assert_eq!(g.stats().csr_builds, 0);
    assert_eq!(
        g.stats().csr_bytes,
        0,
        "gauge is zero while nothing is built"
    );
}
