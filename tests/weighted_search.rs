//! Seeded property tests for semiring-weighted best-first path search.
//!
//! The acceptance property of the weighted subsystem: on random weighted
//! graphs, `cheapest_`/`widest_` results equal a **brute-force fold-and-min**
//! over the enumerated bounded walk set — every matching walk is enumerated
//! through the unweighted automaton (`match_within`, walk semantics), each
//! walk's weight is the semiring `⊗`-fold of its edge weights, and per
//! `(source, head)` the `⊕`-best (min for shortest, max-of-bottleneck for
//! widest) must equal the weighted op's emitted cost — with the emitted path
//! itself achieving that cost. Hand-rolled property tests over ≥ 32 seeded
//! random graphs (the build environment vendors no proptest; failures print
//! the case number), each property checked under all three execution
//! strategies.
//!
//! Further families: top-k output is cost-sorted and `top_k(k)` is a prefix
//! of `top_k(k+1)`; the three strategies agree row-for-row (weights
//! included); unit weights count hops; and weight-resolution errors
//! (missing property, negative weight under shortest) surface as
//! `EngineError::BadWeight`.

use rand::Rng as _;

use mrpa::core::semiring::{MaxMin, MinPlus, SelectiveSemiring, Semiring};
use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{
    EngineError, ExecutionStrategy, PropertyGraph, QueryResult, ResultRow, Traversal, Value,
};

const CASES: usize = 32;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random weighted property graph, guaranteed cyclic (an `a`-cycle
/// through every vertex) with every label interned and every edge carrying a
/// positive finite `w` property.
fn random_weighted_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(4usize..10);
    let weigh = |g: &PropertyGraph, t: &str, l: &str, h: &str, r: &mut Rng| {
        let e = g.add_edge(t, l, h);
        // one decimal digit: enough weight diversity, deterministic folds
        g.set_edge_property(e, "w", Value::Float(r.gen_range(1i64..50) as f64 / 10.0));
    };
    for i in 0..n {
        weigh(&g, &format!("v{i}"), "a", &format!("v{}", (i + 1) % n), r);
    }
    weigh(&g, "v0", "b", "v1", r);
    weigh(&g, "v1", "c", "v2", r);
    let m = r.gen_range(4usize..18);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        weigh(&g, &t, l, &h, r);
    }
    g
}

fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0x5E31_0B11, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

/// Row signature including the weight, so strategy-agreement assertions catch
/// cost mismatches too.
fn row_sig(row: &ResultRow) -> String {
    format!(
        "{}-[{}]->{} @{:?}",
        row.source, row.path, row.head, row.weight
    )
}

fn row_sequence(result: &QueryResult) -> Vec<String> {
    result.rows().iter().map(row_sig).collect()
}

/// The weight of a result row's path under the fold of semiring `⊗` over the
/// `w` edge property — the brute-force reference fold.
fn fold_path<S: Semiring<Elem = f64>>(g: &PropertyGraph, row: &ResultRow) -> f64 {
    let snap = g.snapshot();
    S::fold_path(row.path.iter().map(|e| {
        snap.edge_weight(e, "w")
            .expect("every generated edge is weighted")
    }))
}

/// Brute force: enumerate every bounded matching walk, fold each, keep the
/// `⊕`-best per `(source, head)`.
fn brute_force_best<S: SelectiveSemiring<Elem = f64>>(
    g: &PropertyGraph,
    pattern: &str,
    bound: usize,
) -> std::collections::BTreeMap<(u64, u64), f64> {
    let all = Traversal::over(g)
        .match_within(pattern, bound)
        .execute()
        .expect("walk enumeration");
    let mut best = std::collections::BTreeMap::new();
    for row in all.rows() {
        let cost = fold_path::<S>(g, row);
        best.entry((row.source.0 as u64, row.head.0 as u64))
            .and_modify(|b| *b = S::add(b, &cost))
            .or_insert(cost);
    }
    best
}

fn check_against_brute_force<S: SelectiveSemiring<Elem = f64>>(
    g: &PropertyGraph,
    weighted: &QueryResult,
    pattern: &str,
    bound: usize,
    label: &str,
) {
    let best = brute_force_best::<S>(g, pattern, bound);
    // 1. exactly the (source, head) pairs with at least one matching walk
    let mut seen = std::collections::BTreeSet::new();
    for row in weighted.rows() {
        let key = (row.source.0 as u64, row.head.0 as u64);
        assert!(
            seen.insert(key),
            "{label}: duplicate (source, head) emission {key:?}"
        );
        let expect = best
            .get(&key)
            .unwrap_or_else(|| panic!("{label}: emitted {key:?} has no matching walk"));
        let got = row.weight.expect("weighted rows carry a cost");
        // 2. the emitted cost is the ⊕-best over the walk set (identical
        //    fold ops on both sides, so equality is exact)
        assert_eq!(got, *expect, "{label}: cost mismatch at {key:?}");
        // 3. the emitted path itself achieves the cost
        assert_eq!(
            fold_path::<S>(g, row),
            got,
            "{label}: emitted path does not achieve its cost at {key:?}"
        );
    }
    assert_eq!(
        seen.len(),
        best.len(),
        "{label}: weighted emitted {} heads, brute force found {}",
        seen.len(),
        best.len()
    );
}

const PATTERNS: [&str; 3] = ["a+", "a·(b|c)?", "(a|b)+"];
const BOUND: usize = 4;

#[test]
fn cheapest_equals_brute_force_fold_and_min_under_every_strategy() {
    cases(1, |r, case| {
        let g = random_weighted_graph(r);
        for pattern in PATTERNS {
            for strategy in STRATEGIES {
                let weighted = Traversal::over(&g)
                    .cheapest_within(pattern, BOUND)
                    .weight_by("w")
                    .strategy(strategy)
                    .execute()
                    .unwrap();
                check_against_brute_force::<MinPlus>(
                    &g,
                    &weighted,
                    pattern,
                    BOUND,
                    &format!("case {case} cheapest {pattern} {strategy:?}"),
                );
            }
        }
    });
}

#[test]
fn widest_equals_brute_force_fold_and_max_under_every_strategy() {
    cases(2, |r, case| {
        let g = random_weighted_graph(r);
        for pattern in PATTERNS {
            for strategy in STRATEGIES {
                let weighted = Traversal::over(&g)
                    .widest_within(pattern, BOUND)
                    .weight_by("w")
                    .strategy(strategy)
                    .execute()
                    .unwrap();
                check_against_brute_force::<MaxMin>(
                    &g,
                    &weighted,
                    pattern,
                    BOUND,
                    &format!("case {case} widest {pattern} {strategy:?}"),
                );
            }
        }
    });
}

#[test]
fn unit_weights_count_hops_and_unbounded_search_terminates_on_cycles() {
    cases(3, |r, case| {
        let g = random_weighted_graph(r);
        // unbounded on a guaranteed-cyclic graph: best-first settling
        // terminates by itself, and unit costs are the BFS hop distances
        let weighted = Traversal::over(&g).cheapest_("a+").execute().unwrap();
        let reachable = Traversal::over(&g).match_reachable("a+").execute().unwrap();
        // `a+` has one accepting state, so reachable rows are per-head; its
        // breadth-first first walk is a minimum-hop walk
        let mut hops = std::collections::BTreeMap::new();
        for row in reachable.rows() {
            hops.insert((row.source.0 as u64, row.head.0 as u64), row.path.len());
        }
        assert_eq!(weighted.len(), reachable.len(), "case {case}");
        for row in weighted.rows() {
            let key = (row.source.0 as u64, row.head.0 as u64);
            assert_eq!(
                row.weight,
                Some(hops[&key] as f64),
                "case {case}: hop count mismatch at {key:?}"
            );
            assert_eq!(row.path.len() as f64, row.weight.unwrap(), "case {case}");
        }
    });
}

#[test]
fn emissions_are_cost_sorted_within_each_input_row() {
    cases(4, |r, case| {
        let g = random_weighted_graph(r);
        for (which, base) in [
            Traversal::over(&g)
                .cheapest_within("a+", BOUND)
                .weight_by("w"),
            Traversal::over(&g)
                .widest_within("(a|b)+", BOUND)
                .weight_by("w"),
        ]
        .into_iter()
        .enumerate()
        {
            let result = base.execute().unwrap();
            let mut prev: Option<(u64, f64)> = None;
            for row in result.rows() {
                let source = row.source.0 as u64;
                let w = row.weight.unwrap();
                if let Some((ps, pw)) = prev {
                    if ps == source {
                        // within a source's contiguous run, never improving
                        let improving = if which == 0 {
                            MinPlus::better(&w, &pw)
                        } else {
                            MaxMin::better(&w, &pw)
                        };
                        assert!(
                            !improving,
                            "case {case} pipeline {which}: cost order violated ({pw} then {w})"
                        );
                    }
                }
                prev = Some((source, w));
            }
        }
    });
}

#[test]
fn top_k_is_sorted_and_a_prefix_of_top_k_plus_one() {
    cases(5, |r, case| {
        let g = random_weighted_graph(r);
        let source = format!("v{}", r.gen_range(0..4));
        let base = Traversal::over(&g)
            .v([source.as_str()])
            .cheapest_within("(a|b)+", BOUND)
            .weight_by("w");
        let unlimited = row_sequence(&base.clone().execute().unwrap());
        for k in 1..=4usize {
            for strategy in STRATEGIES {
                let k_rows =
                    row_sequence(&base.clone().top_k(k).strategy(strategy).execute().unwrap());
                let k1_rows = row_sequence(
                    &base
                        .clone()
                        .top_k(k + 1)
                        .strategy(strategy)
                        .execute()
                        .unwrap(),
                );
                assert_eq!(
                    k_rows,
                    unlimited[..k.min(unlimited.len())],
                    "case {case} top_k({k}) {strategy:?}"
                );
                assert_eq!(
                    k_rows[..],
                    k1_rows[..k.min(k1_rows.len())],
                    "case {case} top_k({k}) ⊄ top_k({}) {strategy:?}",
                    k + 1
                );
            }
        }
    });
}

#[test]
fn all_three_strategies_agree_row_for_row_on_composed_pipelines() {
    cases(6, |r, case| {
        let g = random_weighted_graph(r);
        let pipelines = vec![
            Traversal::over(&g)
                .cheapest_within("a+", BOUND)
                .weight_by("w"),
            Traversal::over(&g)
                .out_any()
                .widest_within("a·(b|c)?", 3)
                .weight_by("w")
                .has("age", mrpa::engine::Predicate::Exists),
            Traversal::over(&g)
                .cheapest_("(a|b)+")
                .weight_by_labels([("a", 1.0), ("b", 2.5)])
                .dedup(),
            Traversal::over(&g)
                .cheapest_within("a{2}", 2)
                .weight_by("w")
                .out(["a"]),
        ];
        for (pi, base) in pipelines.into_iter().enumerate() {
            let reference = row_sequence(&base.clone().execute().unwrap());
            for strategy in STRATEGIES {
                let got = row_sequence(&base.clone().strategy(strategy).execute().unwrap());
                assert_eq!(got, reference, "case {case} pipeline {pi} {strategy:?}");
            }
        }
    });
}

#[test]
fn weight_resolution_errors_are_explicit() {
    let g = PropertyGraph::new();
    let e1 = g.add_edge("s", "a", "t");
    g.set_edge_property(e1, "w", Value::Float(1.0));
    g.add_edge("t", "a", "u"); // no weight property
                               // missing property: error, not a silent skip
    let err = Traversal::over(&g)
        .v(["s"])
        .cheapest_("a+")
        .weight_by("w")
        .execute();
    assert!(matches!(err, Err(EngineError::BadWeight(_))), "{err:?}");
    // non-numeric property: error
    let e2 = g.add_edge("t", "b", "u");
    g.set_edge_property(e2, "w", Value::Text("heavy".into()));
    let err = Traversal::over(&g)
        .v(["t"])
        .cheapest_("b")
        .weight_by("w")
        .execute();
    assert!(matches!(err, Err(EngineError::BadWeight(_))));
    // negative weights break Dijkstra's monotonicity for shortest...
    let g = PropertyGraph::new();
    let e = g.add_edge("s", "a", "t");
    g.set_edge_property(e, "w", Value::Float(-1.0));
    let err = Traversal::over(&g)
        .v(["s"])
        .cheapest_("a")
        .weight_by("w")
        .execute();
    assert!(matches!(err, Err(EngineError::BadWeight(_))));
    // ...but are fine for widest (extension stays monotone under min)
    let widest = Traversal::over(&g)
        .v(["s"])
        .widest_("a")
        .weight_by("w")
        .execute()
        .unwrap();
    assert_eq!(widest.weights(), vec![Some(-1.0)]);
    // a label missing from a weight table is an error when traversed
    let g = PropertyGraph::new();
    g.add_edge("s", "a", "t");
    g.add_edge("t", "b", "u");
    let err = Traversal::over(&g)
        .v(["s"])
        .cheapest_("a·b")
        .weight_by_labels([("a", 1.0)])
        .execute();
    assert!(matches!(err, Err(EngineError::BadWeight(_))));
}

#[test]
fn bounded_optimum_can_differ_from_unbounded_and_both_are_correct() {
    // s -10-> t and s -1-> m1 -1-> m2 -1-> m3 -1-> t: the unbounded optimum
    // to t costs 4 over 4 hops; bounded to 2 hops it is the direct edge.
    let g = PropertyGraph::new();
    let w = |t: &str, h: &str, weight: f64| {
        let e = g.add_edge(t, "a", h);
        g.set_edge_property(e, "w", Value::Float(weight));
    };
    w("s", "t", 10.0);
    w("s", "m1", 1.0);
    w("m1", "m2", 1.0);
    w("m2", "m3", 1.0);
    w("m3", "t", 1.0);
    let unbounded = Traversal::over(&g)
        .v(["s"])
        .cheapest_("a+")
        .weight_by("w")
        .execute()
        .unwrap();
    let to_t = |r: &QueryResult| {
        r.rows()
            .iter()
            .find(|row| row.head == r.snapshot().vertex("t").expect("t exists"))
            .map(|row| (row.weight.unwrap(), row.path.len()))
    };
    assert_eq!(to_t(&unbounded), Some((4.0, 4)));
    let bounded = Traversal::over(&g)
        .v(["s"])
        .cheapest_within("a+", 2)
        .weight_by("w")
        .execute()
        .unwrap();
    assert_eq!(to_t(&bounded), Some((10.0, 1)));
    // the weight rides through downstream filters and limits untouched
    let filtered = Traversal::over(&g)
        .v(["s"])
        .cheapest_("a+")
        .weight_by("w")
        .is(["t"])
        .limit(1)
        .execute()
        .unwrap();
    assert_eq!(filtered.weights(), vec![Some(4.0)]);
}
