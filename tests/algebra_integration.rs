//! Cross-crate integration tests: the algebra (mrpa-core) evaluated on
//! generated workloads (mrpa-datagen).

use std::collections::HashSet;

use mrpa::core::{
    complete_traversal, destination_traversal, labeled_traversal, source_traversal, EdgePattern,
    LabelId, PathSet, VertexId,
};
use mrpa::datagen::{chain, complete, cycle, erdos_renyi, grid, ErConfig};

fn random_graph(seed: u64) -> mrpa::core::MultiGraph {
    erdos_renyi(ErConfig {
        vertices: 30,
        labels: 3,
        edge_probability: 0.04,
        seed,
    })
}

#[test]
fn complete_traversal_counts_on_known_shapes() {
    // chain of n vertices has n-1-k+1 paths of length k... specifically n-k paths of length k ≤ n-1
    let c = chain(10, 2);
    for k in 1..=4usize {
        assert_eq!(complete_traversal(&c, k).len(), 10 - k);
    }
    // cycle of n vertices has exactly n joint paths of every length
    let cy = cycle(8, 2);
    for k in 1..=4usize {
        assert_eq!(complete_traversal(&cy, k).len(), 8);
    }
    // complete graph on n vertices with L labels: n·(n-1)·L edges,
    // and each path of length k has ((n-1)·L)^(k-1) extensions per edge
    let kg = complete(4, 2);
    assert_eq!(complete_traversal(&kg, 1).len(), 4 * 3 * 2);
    assert_eq!(complete_traversal(&kg, 2).len(), 4 * 3 * 2 * 3 * 2);
}

#[test]
fn grid_paths_respect_monotone_structure() {
    let g = grid(4, 4);
    // all length-6 paths in a 4x4 grid end at the far corner only if they make
    // 3 rights and 3 downs; count of monotone lattice paths = C(6,3) = 20
    let corner: HashSet<VertexId> = [VertexId::from_index(15)].into_iter().collect();
    let start: HashSet<VertexId> = [VertexId::from_index(0)].into_iter().collect();
    let paths = source_traversal(&g, &start, 6).restrict_heads(&corner);
    assert_eq!(paths.len(), 20);
    assert!(paths.iter().all(|p| p.is_joint() && p.len() == 6));
}

#[test]
fn source_and_destination_traversals_are_complete_traversal_filters() {
    for seed in [1u64, 2, 3] {
        let g = random_graph(seed);
        let vs: HashSet<VertexId> = g.vertices().take(5).collect();
        let vd: HashSet<VertexId> = g.vertices().skip(10).take(5).collect();
        for n in 1..=3usize {
            let all = complete_traversal(&g, n);
            assert_eq!(source_traversal(&g, &vs, n), all.restrict_tails(&vs));
            assert_eq!(destination_traversal(&g, &vd, n), all.restrict_heads(&vd));
        }
    }
}

#[test]
fn labeled_traversal_equals_filtering_by_path_label() {
    let g = random_graph(7);
    let l0: HashSet<LabelId> = [LabelId(0)].into_iter().collect();
    let l1: HashSet<LabelId> = [LabelId(1)].into_iter().collect();
    let via_join = labeled_traversal(&g, &[l0, l1]);
    let via_filter = complete_traversal(&g, 2).restrict_path_label(&[LabelId(0), LabelId(1)]);
    assert_eq!(via_join, via_filter);
}

#[test]
fn join_is_associative_on_generated_path_sets() {
    let g = random_graph(11);
    let a = EdgePattern::with_label(LabelId(0)).select_paths(&g);
    let b = EdgePattern::with_label(LabelId(1)).select_paths(&g);
    let c = EdgePattern::with_label(LabelId(2)).select_paths(&g);
    assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    // and the indexed join always agrees with the naive join
    assert_eq!(a.join(&b), a.join_naive(&b));
    assert_eq!(b.join(&c), b.join_naive(&c));
}

#[test]
fn product_contains_join_and_only_extra_disjoint_paths() {
    let g = random_graph(13);
    let a = EdgePattern::with_label(LabelId(0)).select_paths(&g);
    let b = EdgePattern::with_label(LabelId(1)).select_paths(&g);
    let join = a.join(&b);
    let product = a.product(&b);
    assert!(join.is_subset_of(&product));
    for p in product.iter() {
        if p.is_joint() {
            assert!(
                join.contains(&p),
                "joint product path missing from join: {p}"
            );
        } else {
            assert!(!join.contains(&p));
        }
    }
}

#[test]
fn epsilon_pathset_is_join_identity_on_real_graphs() {
    let g = random_graph(17);
    let e = PathSet::from_graph(&g);
    let eps = PathSet::epsilon();
    assert_eq!(eps.join(&e), e);
    assert_eq!(e.join(&eps), e);
}
