//! Cross-crate integration tests: regular path expressions (mrpa-regex)
//! against the algebra and generated workloads.

use mrpa::core::{complete_traversal, GraphBuilder};
use mrpa::datagen::{erdos_renyi, random_regex, ErConfig};
use mrpa::regex::{
    minimize, parse, Dfa, Generator, GeneratorConfig, Nfa, Recognizer, RecognizerStrategy,
};

fn random_graph(seed: u64) -> mrpa::core::MultiGraph {
    erdos_renyi(ErConfig {
        vertices: 25,
        labels: 3,
        edge_probability: 0.05,
        seed,
    })
}

#[test]
fn all_recognizer_strategies_agree_on_random_regexes_and_graphs() {
    for seed in [1u64, 2, 3, 4] {
        let g = random_graph(seed);
        let regex = random_regex(&g, 3, seed * 31);
        let structural =
            Recognizer::with_strategy(regex.clone(), RecognizerStrategy::Structural, None);
        let nfa = Recognizer::with_strategy(regex.clone(), RecognizerStrategy::Nfa, None);
        let dfa = Recognizer::with_strategy(regex.clone(), RecognizerStrategy::Dfa, Some(&g));
        let min = Recognizer::with_strategy(regex, RecognizerStrategy::MinDfa, Some(&g));
        for n in 0..=3usize {
            for p in complete_traversal(&g, n).iter() {
                let expected = structural.recognizes(&p);
                assert_eq!(nfa.recognizes(&p), expected, "nfa disagrees on {p}");
                assert_eq!(dfa.recognizes(&p), expected, "dfa disagrees on {p}");
                assert_eq!(min.recognizes(&p), expected, "min-dfa disagrees on {p}");
            }
        }
    }
}

#[test]
fn generator_equals_recognizer_scan_on_random_instances() {
    for seed in [5u64, 6, 7] {
        let g = random_graph(seed);
        let regex = random_regex(&g, 3, seed * 17);
        let generator = Generator::new(&regex, &g);
        let generated = generator
            .generate(&GeneratorConfig::with_max_length(3))
            .unwrap();
        let scanned = Generator::generate_by_scan(&regex, &g, 3);
        assert_eq!(generated, scanned, "seed {seed}");
    }
}

#[test]
fn minimized_dfa_never_larger_and_equivalent() {
    for seed in [8u64, 9] {
        let g = random_graph(seed);
        let regex = random_regex(&g, 4, seed * 13);
        let nfa = Nfa::compile(&regex);
        let dfa = Dfa::compile(&nfa, &g);
        let min = minimize(&dfa);
        assert!(min.state_count <= dfa.state_count);
        for n in 0..=3usize {
            for p in complete_traversal(&g, n).iter() {
                assert_eq!(dfa.accepts(&p), min.accepts(&p));
            }
        }
    }
}

#[test]
fn parsed_figure_1_expression_generates_the_expected_paths() {
    // the paper's example graph, with the Fig. 1 query in concrete syntax
    let mut b = GraphBuilder::new();
    b.edges([
        ("i", "alpha", "j"),
        ("j", "beta", "k"),
        ("k", "alpha", "j"),
        ("j", "beta", "j"),
        ("j", "beta", "i"),
        ("i", "alpha", "k"),
        ("i", "beta", "k"),
    ]);
    let named = b.build();
    let regex = parse(
        "[i, alpha, _] . [_, beta, _]* . (([_, alpha, j] . [j, alpha, i]) | [_, alpha, k])",
        &named,
    )
    .unwrap();
    let generator = Generator::new(&regex, named.graph());
    let paths = generator
        .generate(&GeneratorConfig::with_max_length(6))
        .unwrap();
    assert!(!paths.is_empty());
    let i = named.vertex("i").unwrap();
    let k = named.vertex("k").unwrap();
    let alpha = named.label("alpha").unwrap();
    for p in paths.iter() {
        // every accepted path starts at i with an α edge
        assert_eq!(p.tail_vertex().unwrap(), i);
        assert_eq!(p.sigma(1).unwrap().label, alpha);
        // and terminates at i or k with an α edge (per the automaton)
        let last = p.sigma(p.len()).unwrap();
        assert_eq!(last.label, alpha);
        let head = p.head_vertex().unwrap();
        assert!(head == i || head == k);
        // the branch ending at i consumes two trailing α edges ([_,α,j] then
        // (j,α,i)); the branch ending at k consumes one. Everything between
        // the leading α and the trailing α edge(s) must be β.
        let beta = named.label("beta").unwrap();
        let trailing = if head == i { 2 } else { 1 };
        for n in 2..=p.len().saturating_sub(trailing) {
            assert_eq!(p.sigma(n).unwrap().label, beta, "edge {n} of {p}");
        }
    }
}
