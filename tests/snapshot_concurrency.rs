//! Snapshot cost-model and isolation tests for the epoch/copy-on-write store
//! and the id-forwarding parallel boundary.
//!
//! Three families of properties:
//!
//! 1. **O(1) snapshots** — taking (any number of) snapshots performs no
//!    graph/property/interner deep clone; only the first mutation after a
//!    snapshot pays the one copy-on-write generation copy. Counter-asserted
//!    via [`PropertyGraph::stats`], not wall time.
//! 2. **Lazy reversed graph** — pure-`Out` plans never build the reversed
//!    graph under any strategy or terminal; `In`/`Both` plans build it at
//!    most once per generation.
//! 3. **Snapshot isolation under writer churn** — seeded random graphs are
//!    frozen with a snapshot, scoped writer threads mutate the live store
//!    (add/remove edges, set properties) while traversals execute against
//!    the frozen snapshot under all three strategies (the parallel one with
//!    forced multi-threading); every result is row-for-row identical to the
//!    single-threaded evaluation of the frozen graph, and the id-forwarding
//!    partition boundary stays row-for-row ≡ materialized.

use rand::Rng as _;

use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{
    exec, plan, ExecutionStrategy, Pipeline, PropertyGraph, QueryResult, StartSpec, Traversal,
    Value,
};

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random property graph over a fixed label vocabulary (the same
/// shape the optimizer-equivalence suite uses).
fn random_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(5usize..14);
    for i in 0..n {
        let v = g.add_vertex(&format!("v{i}"));
        g.set_vertex_property(v, "age", Value::Int(r.gen_range(10i64..60)));
    }
    g.add_edge("v0", "a", "v1");
    g.add_edge("v1", "b", "v2");
    g.add_edge("v2", "c", "v0");
    let m = r.gen_range(6usize..30);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        g.add_edge(&t, l, &h);
    }
    g
}

fn row_sequence(result: &QueryResult) -> Vec<String> {
    result
        .rows()
        .iter()
        .map(|row| format!("{}-[{}]->{}", row.source, row.path, row.head))
        .collect()
}

#[test]
fn snapshots_never_deep_clone_an_unchanged_graph() {
    let mut r = rng_stream(0x5eed_c0de, 1);
    let g = random_graph(&mut r);
    assert_eq!(g.stats().deep_clones, 0, "building never clones");
    // a pile of snapshots and full query executions: still zero clones
    let snaps: Vec<_> = (0..50).map(|_| g.snapshot()).collect();
    for strategy in STRATEGIES {
        Traversal::over(&g)
            .out(["a"])
            .out(["b"])
            .strategy(strategy)
            .execute()
            .unwrap();
    }
    assert_eq!(
        g.stats().deep_clones,
        0,
        "snapshot() must be an Arc clone, not a graph copy"
    );
    // the first mutation after snapshots were taken pays the one COW copy;
    // the generation the snapshots pin stays frozen
    let before = snaps[0].graph().edge_count();
    g.add_edge("v0", "a", "v2");
    assert_eq!(g.stats().deep_clones, 1);
    g.add_edge("v1", "c", "v0");
    g.remove_edge("v0", "a", "v1");
    assert_eq!(
        g.stats().deep_clones,
        1,
        "in-place once the gen is unshared"
    );
    assert!(snaps.iter().all(|s| s.graph().edge_count() == before));
}

#[test]
fn pure_out_plans_never_build_the_reversed_graph() {
    let g = mrpa::engine::classic_social_graph();
    // out-steps, automata, weighted search, repeat bodies, lazy terminals —
    // all Out-directed: zero reversed builds under every strategy
    for strategy in STRATEGIES {
        let base = Traversal::over(&g).strategy(strategy);
        base.clone()
            .v(["marko"])
            .out(["knows"])
            .out(["created"])
            .execute()
            .unwrap();
        base.clone().match_("knows+·created").execute().unwrap();
        base.clone()
            .repeat(1..=2, |p| p.out(["knows"]))
            .execute()
            .unwrap();
        base.clone()
            .cheapest_("(knows|created)+")
            .weight_by("weight")
            .top_k(2)
            .execute()
            .unwrap();
        assert!(base.clone().v(["marko"]).match_("knows+").exists().unwrap());
    }
    // forced multi-thread parallel exercises the partitioned path too
    Traversal::over(&g)
        .out(["created"])
        .dedup()
        .strategy(ExecutionStrategy::Parallel)
        .parallel_threads(3)
        .execute()
        .unwrap();
    assert_eq!(
        g.stats().reversed_builds,
        0,
        "a pure-Out workload must never pay for the reversed graph"
    );

    // the first In-direction query builds it — once per generation, however
    // many queries and snapshots share that generation
    for strategy in STRATEGIES {
        Traversal::over(&g)
            .v(["lop"])
            .in_(["created"])
            .strategy(strategy)
            .execute()
            .unwrap();
        Traversal::over(&g)
            .v(["lop"])
            .both(["created"])
            .strategy(strategy)
            .execute()
            .unwrap();
    }
    assert_eq!(g.stats().reversed_builds, 1, "one build per generation");
    // a structural mutation starts a new generation: one more build on the
    // next In-direction query, and only then
    g.add_edge("vadas", "knows", "peter");
    Traversal::over(&g).out(["knows"]).execute().unwrap();
    assert_eq!(g.stats().reversed_builds, 1);
    Traversal::over(&g)
        .v(["peter"])
        .in_(["knows"])
        .execute()
        .unwrap();
    assert_eq!(g.stats().reversed_builds, 2);
}

/// A pipeline mix covering all three executors' moving parts, pure-`Out` so
/// churn results are comparable, with stateful tails to exercise the
/// id-forwarding partition boundary.
fn churn_pipelines() -> Vec<Pipeline> {
    vec![
        Pipeline::new().out(["a"]).out(["b"]),
        Pipeline::new().out_any().dedup(),
        Pipeline::new().out_any().out_any().dedup().limit(7),
        Pipeline::new().match_within("a·(b|c)", 3),
        Pipeline::new().match_within("(a|b)+", 3).dedup(),
        Pipeline::new().repeat(1..=2, |p| p.out(["a"])).limit(9),
    ]
}

#[test]
fn traversals_on_frozen_snapshots_are_isolated_from_writer_churn() {
    for seed in 0..3u64 {
        let mut r = rng_stream(0xc0de_beef, seed);
        let g = random_graph(&mut r);
        let n = g.vertex_count();
        // freeze the graph: plans and references come from this snapshot
        let snapshot = g.snapshot();
        let cases: Vec<(plan::LogicalPlan, Vec<String>)> = churn_pipelines()
            .into_iter()
            .map(|p| {
                let naive = plan::plan(&snapshot, &StartSpec::AllVertices, p.steps()).unwrap();
                let optimized = plan::optimize(&snapshot, &naive);
                let reference = row_sequence(
                    &exec::execute(&snapshot, &optimized, ExecutionStrategy::Materialized, None)
                        .unwrap(),
                );
                (optimized, reference)
            })
            .collect();

        std::thread::scope(|scope| {
            // writers churn the live store the whole time
            let writer = |stream: u64| {
                let g = &g;
                move || {
                    let mut wr = rng_stream(0x0217_dead, seed * 100 + stream);
                    for k in 0..300i64 {
                        let t = format!("v{}", wr.gen_range(0..n));
                        let h = format!("v{}", wr.gen_range(0..n));
                        let l = LABELS[wr.gen_range(0..LABELS.len())];
                        match k % 4 {
                            0 | 1 => {
                                g.add_edge(&t, l, &h);
                            }
                            2 => {
                                g.remove_edge(&t, l, &h);
                            }
                            _ => {
                                let v = g.vertex(&t).unwrap();
                                g.set_vertex_property(v, "age", Value::Int(k));
                            }
                        }
                    }
                }
            };
            scope.spawn(writer(1));
            scope.spawn(writer(2));
            // readers execute every case against the frozen snapshot under
            // every strategy, parallel both auto- and force-threaded
            for worker in 0..2 {
                let cases = &cases;
                let snapshot = &snapshot;
                scope.spawn(move || {
                    for (case, (plan, reference)) in cases.iter().enumerate() {
                        for strategy in STRATEGIES {
                            let rows = exec::execute(snapshot, plan, strategy, None).unwrap();
                            assert_eq!(
                                &row_sequence(&rows),
                                reference,
                                "seed {seed} case {case} {strategy:?} (worker {worker})"
                            );
                        }
                        let forced = exec::execute_with_threads(
                            snapshot,
                            plan,
                            ExecutionStrategy::Parallel,
                            None,
                            Some(3),
                        )
                        .unwrap();
                        assert_eq!(
                            &row_sequence(&forced),
                            reference,
                            "seed {seed} case {case} forced-parallel (worker {worker})"
                        );
                    }
                });
            }
        });

        // after the churn: the snapshot still answers identically…
        for (case, (plan, reference)) in cases.iter().enumerate() {
            let rows =
                exec::execute(&snapshot, plan, ExecutionStrategy::Materialized, None).unwrap();
            assert_eq!(&row_sequence(&rows), reference, "seed {seed} case {case}");
        }
        // …while the live graph moved on to a new generation
        assert!(g.stats().generation > snapshot.generation());
    }
}

#[test]
fn id_forwarding_boundary_is_row_for_row_and_copy_free() {
    // P disjoint chains of length L: every result path is L edges deep, so a
    // materialise/re-intern boundary would append O(L) nodes per row while
    // id forwarding appends each chain node once
    const P: usize = 8;
    const L: usize = 24;
    let g = PropertyGraph::new();
    let mut heads = Vec::new();
    for c in 0..P {
        heads.push(format!("c{c}_0"));
        for i in 0..L {
            g.add_edge(&format!("c{c}_{i}"), "next", &format!("c{c}_{}", i + 1));
        }
    }
    let base = Traversal::over(&g)
        .v(heads.iter().map(String::as_str))
        .match_within("next+", L)
        .dedup(); // the stateful suffix every row must cross into
    let reference = base
        .clone()
        .strategy(ExecutionStrategy::Materialized)
        .execute()
        .unwrap();
    assert_eq!(reference.len(), P * L);
    assert_eq!(reference.stats().interned_nodes, 0);

    let parallel = base
        .clone()
        .strategy(ExecutionStrategy::Parallel)
        .parallel_threads(4)
        .execute()
        .unwrap();
    assert_eq!(parallel.rows(), reference.rows(), "boundary reorders rows");

    // copy-freedom, counter-asserted: each of the P·L chain nodes crosses
    // the boundary exactly once; the round-tripping boundary would have
    // appended one node per path edge — Σ path lengths = P·L·(L+1)/2
    let forwarded = parallel.stats().interned_nodes;
    assert_eq!(forwarded, (P * L) as u64);
    let round_trip = (P * L * (L + 1) / 2) as u64;
    assert!(
        forwarded * 3 <= round_trip,
        "forwarding appended {forwarded} nodes, round-tripping would append {round_trip}"
    );
}
