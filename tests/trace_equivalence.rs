//! Seeded randomized properties of [`Traversal::profile`]: profiling is
//! observation, not perturbation.
//!
//! Over 32 independently-seeded random property graphs × random pipelines ×
//! all three execution strategies (hand-rolled property tests — the build
//! environment vendors no proptest; failures print the case number):
//!
//! 1. **Equivalence** — a profiled run returns exactly the rows of an
//!    unprofiled run, row order included, and the same run-wide
//!    [`ExecStats`] counters;
//! 2. **Trace shape** — the trace is a chain mirroring the optimized plan:
//!    one node per [`PlanReport`] estimate, the root's `rows_out` is the
//!    result's row count, and every node's `rows_in` equals its child's
//!    `rows_out`;
//! 3. **Conservation** — per-op exclusive `expansions` and `arena_appends`
//!    sum to the run-wide `ExecStats` totals, and per-op self times sum to
//!    the root's inclusive total.

use rand::Rng as _;

use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{
    ExecutionStrategy, Pipeline, PropertyGraph, QueryResult, QueryTrace, StartSpec, Traversal,
    Value,
};
use mrpa::engine::{Predicate, TraceNode};

const CASES: usize = 32;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random property graph; every label of [`LABELS`] always exists
/// so label resolution never fails.
fn random_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(4usize..12);
    for i in 0..n {
        let v = g.add_vertex(&format!("v{i}"));
        g.set_vertex_property(v, "age", Value::Int(r.gen_range(10i64..60)));
        let kind = if r.gen_range(0u32..4) == 0 {
            "software"
        } else {
            "person"
        };
        g.set_vertex_property(v, "kind", Value::from(kind));
    }
    g.add_edge("v0", "a", "v1");
    g.add_edge("v1", "b", "v2");
    g.add_edge("v2", "c", "v0");
    let m = r.gen_range(4usize..24);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        g.add_edge(&t, l, &h);
    }
    g
}

/// A random pipeline over the executor's whole vocabulary: expansions,
/// filters, dedup, limit, automaton matches, repeats.
fn random_pipeline(r: &mut Rng, n_vertices: usize) -> Pipeline {
    let mut p = Pipeline::new();
    let len = r.gen_range(1usize..6);
    for _ in 0..len {
        p = match r.gen_range(0u32..10) {
            0 | 1 => p.out([LABELS[r.gen_range(0..LABELS.len())]]),
            2 => p.in_([LABELS[r.gen_range(0..LABELS.len())]]),
            3 => p.both([LABELS[r.gen_range(0..LABELS.len())]]),
            4 => {
                let count = r.gen_range(1usize..4);
                let names: Vec<String> = (0..count)
                    .map(|_| format!("v{}", r.gen_range(0..n_vertices)))
                    .collect();
                p.is(names)
            }
            5 => p.has("age", Predicate::Gt(r.gen_range(10i64..60) as f64)),
            6 => p.dedup(),
            7 => p.limit(r.gen_range(0usize..10)),
            8 => p.match_within("a·(b|c)", 3),
            _ => {
                let l = LABELS[r.gen_range(0..LABELS.len())];
                p.repeat(1..=2, |body| body.out([l]))
            }
        };
    }
    p
}

fn random_start(r: &mut Rng, n_vertices: usize) -> StartSpec {
    match r.gen_range(0u32..3) {
        0 => StartSpec::AllVertices,
        1 => StartSpec::Named(vec![format!("v{}", r.gen_range(0..n_vertices))]),
        _ => StartSpec::Where("kind".into(), Predicate::Eq(Value::from("person"))),
    }
}

/// Runs `check` for [`CASES`] independently-seeded cases on stream `stream`.
fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0x0b5e_41e5, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

/// The exact row sequence (order-sensitive signature).
fn row_sequence(result: &QueryResult) -> Vec<String> {
    result
        .rows()
        .iter()
        .map(|row| format!("{}-[{}]->{}", row.source, row.path, row.head))
        .collect()
}

/// Walks the trace chain root-down checking the linkage invariants; returns
/// the node count.
fn check_chain(root: &TraceNode, ctx: &str) -> usize {
    let mut count = 0;
    let mut node = root;
    loop {
        count += 1;
        assert!(
            node.children.len() <= 1,
            "{ctx}: plans are chains, node {:?} has {} children",
            node.op,
            node.children.len()
        );
        assert!(
            node.total_time_ns >= node.self_time_ns,
            "{ctx}: inclusive time below self time at {:?}",
            node.op
        );
        match node.children.first() {
            Some(child) => {
                assert_eq!(
                    node.rows_in, child.rows_out,
                    "{ctx}: rows_in of {:?} != rows_out of its input {:?}",
                    node.op, child.op
                );
                assert!(
                    node.total_time_ns >= child.total_time_ns,
                    "{ctx}: inclusive time not monotone into {:?}",
                    node.op
                );
                node = child;
            }
            None => {
                assert_eq!(node.rows_in, 0, "{ctx}: the start frontier has no input");
                assert!(
                    node.op.starts_with("start("),
                    "{ctx}: chain must end at the start frontier, got {:?}",
                    node.op
                );
                return count;
            }
        }
    }
}

/// Asserts every conservation law a [`QueryTrace`] promises.
fn check_trace(trace: &QueryTrace, result: &QueryResult, ctx: &str) {
    assert_eq!(
        trace.root.rows_out as usize,
        result.rows().len(),
        "{ctx}: root rows_out vs result rows"
    );
    let nodes = trace.nodes_source_first();
    check_chain(&trace.root, ctx);

    let expansions: u64 = nodes.iter().map(|n| n.expansions).sum();
    assert_eq!(
        expansions, trace.stats.expansions,
        "{ctx}: per-op expansions must sum to the run total"
    );
    let appends: u64 = nodes.iter().map(|n| n.arena_appends).sum();
    assert_eq!(
        appends, trace.stats.interned_nodes,
        "{ctx}: per-op arena appends must sum to the run total"
    );
    let self_time: u64 = nodes.iter().map(|n| n.self_time_ns).sum();
    assert_eq!(
        self_time, trace.root.total_time_ns,
        "{ctx}: per-op self times must sum to the root's inclusive time"
    );
}

#[test]
fn profiled_runs_return_exactly_the_unprofiled_rows() {
    cases(1, |r, case| {
        let g = random_graph(r);
        let n = g.vertex_count();
        let pipeline = random_pipeline(r, n);
        let start = random_start(r, n);
        for strategy in STRATEGIES {
            let t = Traversal::over(&g)
                .start_at(start.clone())
                .with_steps(pipeline.steps().to_vec())
                .strategy(strategy)
                .parallel_threads(4);
            let ctx = format!("case {case} strategy {strategy:?}");
            let plain = t.execute().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let profiled = t.profile().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(
                row_sequence(&plain),
                row_sequence(&profiled.result),
                "{ctx}: profiling changed the rows"
            );
            assert_eq!(
                plain.stats(),
                profiled.result.stats(),
                "{ctx}: profiling changed the run counters"
            );
            check_trace(&profiled.trace, &profiled.result, &ctx);
        }
    });
}

#[test]
fn trace_nodes_mirror_the_plan_report() {
    cases(2, |r, case| {
        let g = random_graph(r);
        let n = g.vertex_count();
        let pipeline = random_pipeline(r, n);
        let start = random_start(r, n);
        for strategy in STRATEGIES {
            let t = Traversal::over(&g)
                .start_at(start.clone())
                .with_steps(pipeline.steps().to_vec())
                .strategy(strategy)
                .parallel_threads(4);
            let ctx = format!("case {case} strategy {strategy:?}");
            let report = t.explain().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let profiled = t.profile().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let nodes = profiled.trace.nodes_source_first();
            let estimates = report.estimates();
            assert_eq!(
                nodes.len(),
                estimates.len(),
                "{ctx}: one trace node per plan-report op"
            );
            for (node, est) in nodes.iter().zip(estimates) {
                assert_eq!(node.op, est.op, "{ctx}: trace op order diverged");
                assert_eq!(
                    node.estimated_rows, est.rows,
                    "{ctx}: estimate not carried into the trace"
                );
            }
            assert_eq!(profiled.trace.strategy, strategy, "{ctx}");
        }
    });
}

#[test]
fn the_headline_trace_reads_sensibly() {
    // A deterministic smoke over the classic graph: the trace's describe()
    // renders one line per op and the numbers agree with the result.
    let g = mrpa::engine::classic_social_graph();
    let t = Traversal::over(&g).match_("knows+·created").dedup();
    let profiled = t.profile().unwrap();
    assert!(!profiled.result.rows().is_empty());
    check_trace(&profiled.trace, &profiled.result, "classic");
    let text = profiled.trace.describe();
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.lines().count() >= 2 + profiled.trace.nodes_source_first().len());
}
