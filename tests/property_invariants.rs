//! Property-based tests (proptest) for the algebraic laws the paper states
//! and the implementation relies on.

use proptest::collection::vec;
use proptest::prelude::*;

use mrpa::core::monoid::laws;
use mrpa::core::{Edge, Path, PathSet};

/// Strategy: an arbitrary edge over a small vocabulary (so joins actually
/// find joinable pairs).
fn edge_strategy() -> impl Strategy<Value = Edge> {
    (0u32..6, 0u32..3, 0u32..6).prop_map(Edge::from)
}

/// Strategy: an arbitrary (possibly disjoint) path of up to 4 edges.
fn path_strategy() -> impl Strategy<Value = Path> {
    vec(edge_strategy(), 0..4).prop_map(Path::from_edges)
}

/// Strategy: a path set of up to 6 paths.
fn pathset_strategy() -> impl Strategy<Value = PathSet> {
    vec(path_strategy(), 0..6).prop_map(PathSet::from_paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concat_is_associative(a in path_strategy(), b in path_strategy(), c in path_strategy()) {
        prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }

    #[test]
    fn epsilon_is_concat_identity(a in path_strategy()) {
        let eps = Path::epsilon();
        prop_assert_eq!(eps.concat(&a), a.clone());
        prop_assert_eq!(a.concat(&eps), a);
    }

    #[test]
    fn path_length_is_additive(a in path_strategy(), b in path_strategy()) {
        prop_assert_eq!(a.concat(&b).len(), a.len() + b.len());
    }

    #[test]
    fn path_label_is_a_homomorphism(a in path_strategy(), b in path_strategy()) {
        prop_assert!(laws::path_label_is_homomorphism(&a, &b));
    }

    #[test]
    fn sigma_indexes_every_edge(a in path_strategy()) {
        for n in 1..=a.len() {
            prop_assert_eq!(a.sigma(n).unwrap(), a.edges()[n - 1]);
        }
        prop_assert!(a.sigma(a.len() + 1).is_err());
    }

    #[test]
    fn join_is_associative(a in pathset_strategy(), b in pathset_strategy(), c in pathset_strategy()) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn indexed_join_equals_naive_join(a in pathset_strategy(), b in pathset_strategy()) {
        prop_assert_eq!(a.join(&b), a.join_naive(&b));
    }

    #[test]
    fn join_is_subset_of_product(a in pathset_strategy(), b in pathset_strategy()) {
        prop_assert!(laws::join_subset_of_product(&a, &b));
    }

    #[test]
    fn join_distributes_over_union(
        a in pathset_strategy(),
        b in pathset_strategy(),
        c in pathset_strategy()
    ) {
        prop_assert!(laws::join_distributes_left(&a, &b, &c));
        prop_assert!(laws::join_distributes_right(&a, &b, &c));
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in pathset_strategy(), b in pathset_strategy()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn epsilon_set_is_join_identity(a in pathset_strategy()) {
        let eps = PathSet::epsilon();
        prop_assert_eq!(eps.join(&a), a.clone());
        prop_assert_eq!(a.join(&eps), a);
    }

    #[test]
    fn empty_set_annihilates_join(a in pathset_strategy()) {
        prop_assert!(laws::empty_annihilates_join(&a));
    }

    #[test]
    fn joint_product_paths_appear_in_the_join(a in pathset_strategy(), b in pathset_strategy()) {
        // For operands consisting of non-empty *joint* paths:
        // joint(A ×◦ B) = A ⋈◦ B. (With disjoint operand paths the join can
        // itself emit disjoint paths — only the seam is checked — so the
        // restriction to joint operands is essential.)
        let a: PathSet = a.iter().filter(|p| !p.is_empty() && p.is_joint()).cloned().collect();
        let b: PathSet = b.iter().filter(|p| !p.is_empty() && p.is_joint()).cloned().collect();
        prop_assert_eq!(a.product(&b).joint_only(), a.join(&b));
    }

    #[test]
    fn reversal_is_an_involution(a in path_strategy()) {
        prop_assert_eq!(a.reversed().reversed(), a);
    }

    #[test]
    fn jointness_is_preserved_by_joining_edges(edges in vec(edge_strategy(), 1..5)) {
        // build a joint path by repeatedly joining single edges when possible
        let mut path = Path::from_edge(edges[0]);
        for e in &edges[1..] {
            let candidate = Path::from_edge(*e);
            if let Some(joined) = path.join(&candidate) {
                path = joined;
            }
        }
        prop_assert!(path.is_joint());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recognizer_strategies_agree_on_random_paths(
        edges in vec(edge_strategy(), 0..4),
        seed in 0u64..4
    ) {
        use mrpa::regex::{Recognizer, RecognizerStrategy};
        // a small fixed graph over the same vocabulary
        let graph: mrpa::core::MultiGraph = (0u32..6)
            .flat_map(|i| (0u32..3).map(move |l| Edge::from((i, l, (i + l + 1) % 6))))
            .collect();
        let regex = mrpa::datagen::random_regex(&graph, 3, seed);
        let path = Path::from_edges(edges);
        let nfa = Recognizer::with_strategy(regex.clone(), RecognizerStrategy::Nfa, None);
        let structural = Recognizer::with_strategy(regex, RecognizerStrategy::Structural, None);
        prop_assert_eq!(nfa.recognizes(&path), structural.recognizes(&path));
    }
}
