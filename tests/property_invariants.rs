//! Seeded randomized property tests for the algebraic laws the paper states
//! and the implementation relies on.
//!
//! The build environment vendors no proptest, so these are hand-rolled
//! property tests: every case is drawn from a ChaCha8 stream with a fixed
//! seed (via `mrpa::datagen::random`), so failures are exactly reproducible —
//! re-run with the printed case number to shrink by hand.

use rand::Rng as _;

use mrpa::core::monoid::laws;
use mrpa::core::{Edge, Path, PathSet};
use mrpa::datagen::random::{rng_stream, Rng};

const CASES: usize = 64;

/// An arbitrary edge over a small vocabulary (so joins actually find
/// joinable pairs).
fn arb_edge(r: &mut Rng) -> Edge {
    Edge::from((
        r.gen_range(0u32..6),
        r.gen_range(0u32..3),
        r.gen_range(0u32..6),
    ))
}

/// An arbitrary (possibly disjoint) path of up to 4 edges.
fn arb_path(r: &mut Rng) -> Path {
    let len = r.gen_range(0usize..4);
    Path::from_edges((0..len).map(|_| arb_edge(r)))
}

/// An arbitrary path set of up to 6 paths.
fn arb_pathset(r: &mut Rng) -> PathSet {
    let n = r.gen_range(0usize..6);
    PathSet::from_paths((0..n).map(|_| arb_path(r)))
}

/// Runs `check` for [`CASES`] independently-seeded cases on stream `stream`.
fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0xa1_6eb4a, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

#[test]
fn concat_is_associative() {
    cases(1, |r, case| {
        let (a, b, c) = (arb_path(r), arb_path(r), arb_path(r));
        assert_eq!(
            a.concat(&b).concat(&c),
            a.concat(&b.concat(&c)),
            "case {case}"
        );
    });
}

#[test]
fn epsilon_is_concat_identity() {
    cases(2, |r, case| {
        let a = arb_path(r);
        let eps = Path::epsilon();
        assert_eq!(eps.concat(&a), a, "case {case}");
        assert_eq!(a.concat(&eps), a, "case {case}");
    });
}

#[test]
fn path_length_is_additive() {
    cases(3, |r, case| {
        let (a, b) = (arb_path(r), arb_path(r));
        assert_eq!(a.concat(&b).len(), a.len() + b.len(), "case {case}");
    });
}

#[test]
fn path_label_is_a_homomorphism() {
    cases(4, |r, case| {
        let (a, b) = (arb_path(r), arb_path(r));
        assert!(laws::path_label_is_homomorphism(&a, &b), "case {case}");
    });
}

#[test]
fn sigma_indexes_every_edge() {
    cases(5, |r, case| {
        let a = arb_path(r);
        for n in 1..=a.len() {
            assert_eq!(a.sigma(n).unwrap(), a.edges()[n - 1], "case {case}");
        }
        assert!(a.sigma(a.len() + 1).is_err(), "case {case}");
    });
}

#[test]
fn join_is_associative() {
    cases(6, |r, case| {
        let (a, b, c) = (arb_pathset(r), arb_pathset(r), arb_pathset(r));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)), "case {case}");
    });
}

#[test]
fn arena_join_equals_naive_join() {
    cases(7, |r, case| {
        let (a, b) = (arb_pathset(r), arb_pathset(r));
        assert_eq!(a.join(&b), a.join_naive(&b), "case {case}");
    });
}

#[test]
fn join_is_subset_of_product() {
    cases(8, |r, case| {
        let (a, b) = (arb_pathset(r), arb_pathset(r));
        assert!(laws::join_subset_of_product(&a, &b), "case {case}");
    });
}

#[test]
fn join_distributes_over_union() {
    cases(9, |r, case| {
        let (a, b, c) = (arb_pathset(r), arb_pathset(r), arb_pathset(r));
        assert!(laws::join_distributes_left(&a, &b, &c), "case {case}");
        assert!(laws::join_distributes_right(&a, &b, &c), "case {case}");
    });
}

#[test]
fn union_is_commutative_and_idempotent() {
    cases(10, |r, case| {
        let (a, b) = (arb_pathset(r), arb_pathset(r));
        assert_eq!(a.union(&b), b.union(&a), "case {case}");
        assert_eq!(a.union(&a), a, "case {case}");
    });
}

#[test]
fn epsilon_set_is_join_identity() {
    cases(11, |r, case| {
        let a = arb_pathset(r);
        let eps = PathSet::epsilon();
        assert_eq!(eps.join(&a), a, "case {case}");
        assert_eq!(a.join(&eps), a, "case {case}");
    });
}

#[test]
fn empty_set_annihilates_join() {
    cases(12, |r, case| {
        let a = arb_pathset(r);
        assert!(laws::empty_annihilates_join(&a), "case {case}");
    });
}

#[test]
fn joint_product_paths_appear_in_the_join() {
    cases(13, |r, case| {
        // For operands consisting of non-empty *joint* paths:
        // joint(A ×◦ B) = A ⋈◦ B. (With disjoint operand paths the join can
        // itself emit disjoint paths — only the seam is checked — so the
        // restriction to joint operands is essential.)
        let a: PathSet = arb_pathset(r)
            .iter()
            .filter(|p| !p.is_empty() && p.is_joint())
            .collect();
        let b: PathSet = arb_pathset(r)
            .iter()
            .filter(|p| !p.is_empty() && p.is_joint())
            .collect();
        assert_eq!(a.product(&b).joint_only(), a.join(&b), "case {case}");
    });
}

#[test]
fn reversal_is_an_involution() {
    cases(14, |r, case| {
        let a = arb_path(r);
        assert_eq!(a.reversed().reversed(), a, "case {case}");
    });
}

#[test]
fn jointness_is_preserved_by_joining_edges() {
    cases(15, |r, case| {
        // build a joint path by repeatedly joining single edges when possible
        let n = r.gen_range(1usize..5);
        let edges: Vec<Edge> = (0..n).map(|_| arb_edge(r)).collect();
        let mut path = Path::from_edge(edges[0]);
        for e in &edges[1..] {
            let candidate = Path::from_edge(*e);
            if let Some(joined) = path.join(&candidate) {
                path = joined;
            }
        }
        assert!(path.is_joint(), "case {case}");
    });
}

#[test]
fn recognizer_strategies_agree_on_random_paths() {
    use mrpa::regex::{Recognizer, RecognizerStrategy};
    // a small fixed graph over the same vocabulary
    let graph: mrpa::core::MultiGraph = (0u32..6)
        .flat_map(|i| (0u32..3).map(move |l| Edge::from((i, l, (i + l + 1) % 6))))
        .collect();
    for seed in 0u64..4 {
        let regex = mrpa::datagen::random_regex(&graph, 3, seed);
        let nfa = Recognizer::with_strategy(regex.clone(), RecognizerStrategy::Nfa, None);
        let structural = Recognizer::with_strategy(regex, RecognizerStrategy::Structural, None);
        cases(16 + seed, |r, case| {
            let path = arb_path(r);
            assert_eq!(
                nfa.recognizes(&path),
                structural.recognizes(&path),
                "seed {seed} case {case}: {path}"
            );
        });
    }
}
