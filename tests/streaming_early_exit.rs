//! Early-exit and execution-semantics properties of the cursor protocol.
//!
//! Four families, each over ≥ 30 independently-seeded random **cyclic**
//! property graphs (hand-rolled property tests — the build environment
//! vendors no proptest; failures print the case number for reproduction):
//!
//! 1. `limit(k)` ≡ the first `k` rows of the unlimited run, under every
//!    execution strategy (early exit never changes *which* rows come out);
//! 2. cursor consumption (the `Streaming` strategy and the public
//!    [`RowCursor`] iterator) is row-for-row identical to the materialized
//!    reference under `Semantics::Walks`;
//! 3. the optimizer's reachability upgrade (R8) and the explicit
//!    `match_reachable` surface produce exactly the walk-semantics rows once
//!    a dedup collapses paths;
//! 4. `In`-direction patterns agree with chains of `in_` steps.
//!
//! Plus direct regressions: `first()` after a dense `match_` on a complete
//! graph performs a *bounded* number of expansions (asserted via the
//! expansion counter, not wall time), and `Semantics::Reachable` terminates
//! on cyclic graphs where walk enumeration trips `max_intermediate`.

use rand::Rng as _;

use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{
    exec, plan, Direction, EngineError, ExecutionStrategy, PropertyGraph, QueryResult, Traversal,
    Value, UNBOUNDED_MATCH_HOPS,
};

const CASES: usize = 32;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random property graph that is **guaranteed cyclic**: a labelled
/// `a`-cycle through every vertex, plus random extra edges. Every label of
/// [`LABELS`] is always interned.
fn random_cyclic_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(4usize..12);
    for i in 0..n {
        let v = g.add_vertex(&format!("v{i}"));
        g.set_vertex_property(v, "age", Value::Int(r.gen_range(10i64..60)));
    }
    // the guaranteed cycle (and the guaranteed `a` label)
    for i in 0..n {
        g.add_edge(&format!("v{i}"), "a", &format!("v{}", (i + 1) % n));
    }
    g.add_edge("v0", "b", "v1");
    g.add_edge("v1", "c", "v2");
    let m = r.gen_range(4usize..20);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        g.add_edge(&t, l, &h);
    }
    g
}

fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0x0EE7_CAFE, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

fn row_sequence(result: &QueryResult) -> Vec<String> {
    result
        .rows()
        .iter()
        .map(|row| format!("{}-[{}]->{}", row.source, row.path, row.head))
        .collect()
}

/// Pipelines whose unlimited runs are cheap (bounded hops) but walk cyclic
/// structure, exercising automaton, repeat, filter, and dedup stages.
fn pipelines(g: &PropertyGraph) -> Vec<Traversal> {
    vec![
        Traversal::over(g).match_within("a+", 4),
        Traversal::over(g).match_within("a·(b|c)?", 3).out_any(),
        Traversal::over(g)
            .repeat(1..=3, |p| p.out(["a"]))
            .has("age", mrpa::engine::Predicate::Gt(20.0)),
        Traversal::over(g).out_any().match_within("a{2}", 2).dedup(),
        Traversal::over(g).in_(["a"]).out_any(),
    ]
}

#[test]
fn limit_k_is_the_prefix_of_the_unlimited_run_under_every_strategy() {
    cases(1, |r, case| {
        let g = random_cyclic_graph(r);
        for (pi, base) in pipelines(&g).into_iter().enumerate() {
            let unlimited = base.clone().execute().unwrap();
            let reference = row_sequence(&unlimited);
            for k in [0usize, 1, 3, 7] {
                for strategy in STRATEGIES {
                    let limited = base.clone().limit(k).strategy(strategy).execute().unwrap();
                    let got = row_sequence(&limited);
                    let want = &reference[..k.min(reference.len())];
                    assert_eq!(
                        got, want,
                        "case {case} pipeline {pi} limit({k}) {strategy:?}"
                    );
                }
            }
        }
    });
}

#[test]
fn cursor_rows_equal_materialized_rows_under_walk_semantics() {
    cases(2, |r, case| {
        let g = random_cyclic_graph(r);
        for (pi, base) in pipelines(&g).into_iter().enumerate() {
            let reference = row_sequence(&base.clone().execute().unwrap());
            // the Streaming strategy is the cursor drained by execute()
            let streamed = base
                .clone()
                .strategy(ExecutionStrategy::Streaming)
                .execute()
                .unwrap();
            assert_eq!(
                row_sequence(&streamed),
                reference,
                "case {case} pipeline {pi} streaming"
            );
            // external Iterator consumption of the public cursor
            let cursor = base
                .clone()
                .strategy(ExecutionStrategy::Streaming)
                .cursor()
                .unwrap();
            let iterated: Vec<String> = cursor
                .map(|row| {
                    let row = row.unwrap();
                    format!("{}-[{}]->{}", row.source, row.path, row.head)
                })
                .collect();
            assert_eq!(iterated, reference, "case {case} pipeline {pi} iterator");
        }
    });
}

#[test]
fn terminals_agree_with_execute() {
    cases(3, |r, case| {
        let g = random_cyclic_graph(r);
        for (pi, base) in pipelines(&g).into_iter().enumerate() {
            let all = base.clone().execute().unwrap();
            assert_eq!(
                base.count().unwrap(),
                all.len(),
                "case {case} pipeline {pi} count"
            );
            assert_eq!(
                base.exists().unwrap(),
                !all.is_empty(),
                "case {case} pipeline {pi} exists"
            );
            let first = base.first().unwrap();
            match all.rows().first() {
                Some(row) => assert_eq!(first.as_ref(), Some(row), "case {case} pipeline {pi}"),
                None => assert!(first.is_none(), "case {case} pipeline {pi}"),
            }
        }
    });
}

#[test]
fn first_on_a_dense_match_performs_bounded_expansions() {
    // A complete knows-digraph: the walk set of knows+ within 16 hops is
    // astronomically large (Σ_{d≤16} 11·10^{d-1} walks from one vertex), so
    // anything that enumerates it will not finish. The assertion is on the
    // expansion counter, not wall time: one frontier entry's adjacency is
    // enough to surface the first row.
    let g = PropertyGraph::new();
    let n = 12usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(&format!("v{i}"), "knows", &format!("v{j}"));
            }
        }
    }
    // the terminal itself (default strategy) is bounded
    let row = Traversal::over(&g)
        .v(["v0"])
        .match_("knows+")
        .first()
        .unwrap()
        .expect("a complete graph has knows-walks");
    assert_eq!(row.path.len(), 1);
    // and the bound holds under every strategy, from the whole-graph start
    for strategy in STRATEGIES {
        let mut cursor = Traversal::over(&g)
            .match_("knows+")
            .limit(1)
            .strategy(strategy)
            .cursor()
            .unwrap();
        let row = cursor.next_row().unwrap().expect("one row");
        assert_eq!(row.path.len(), 1);
        let expansions = cursor.stats().expansions;
        // at most one adjacency scan per partition (the parallel strategy
        // speculatively pulls one batch per partition)
        assert!(
            expansions <= (n * (n - 1)) as u64,
            "{strategy:?} expanded {expansions} edges"
        );
    }
    // exists() on the same dense automaton is equally bounded
    assert!(Traversal::over(&g).match_("knows+").exists().unwrap());
}

#[test]
fn reachable_semantics_terminates_where_walk_enumeration_trips_the_cap() {
    // Two interleaved cycles: every vertex has two knows-successors, so the
    // walk count doubles per depth (2^d) and a deep walk enumeration trips
    // max_intermediate. Reachability dedups the frontier by (vertex, state)
    // and terminates — without any hop bound at all.
    let g = PropertyGraph::new();
    let n = 24usize;
    for i in 0..n {
        g.add_edge(&format!("v{i}"), "knows", &format!("v{}", (i + 1) % n));
        g.add_edge(&format!("v{i}"), "knows", &format!("v{}", (i + 2) % n));
    }
    let walks = Traversal::over(&g)
        .v(["v0"])
        .match_within("knows+", 1000)
        .max_intermediate(100_000)
        .execute();
    assert!(matches!(walks, Err(EngineError::BoundExceeded { .. })));
    // unbounded reachability: every vertex is reachable, one row per
    // (vertex, accepting state) — here exactly one accepting state
    let reached = Traversal::over(&g)
        .v(["v0"])
        .match_reachable("knows+")
        .execute()
        .unwrap();
    assert_eq!(reached.len(), n);
    let mut heads = reached.distinct_heads();
    heads.sort_unstable();
    assert_eq!(heads.len(), n);
    // each surviving path is the breadth-first first walk to its head
    for strategy in STRATEGIES {
        let r = Traversal::over(&g)
            .v(["v0"])
            .match_reachable("knows+")
            .strategy(strategy)
            .execute()
            .unwrap();
        assert_eq!(row_sequence(&r), row_sequence(&reached), "{strategy:?}");
    }
    // an unbounded hop count without reachability is rejected at plan time
    let err = Traversal::over(&g)
        .v(["v0"])
        .match_within("knows+", UNBOUNDED_MATCH_HOPS)
        .execute();
    assert!(matches!(err, Err(EngineError::Unsupported(_))));
}

#[test]
fn reachability_upgrade_preserves_the_dedup_output_exactly() {
    // R8: automaton + dedup(head) rewrites to reachability semantics. The
    // rewritten plan must produce the naive (walk-semantics) rows verbatim —
    // paths included, because dedup keeps the first walk per head and the
    // reachable sequence keeps exactly the first walk per (head, state).
    let mut upgraded = 0usize;
    cases(4, |r, case| {
        let g = random_cyclic_graph(r);
        let snapshot = g.snapshot();
        for (pi, base) in [
            Traversal::over(&g).match_within("a+", 5).dedup(),
            Traversal::over(&g)
                .out_any()
                .match_within("a·a·a?", 4)
                .has("age", mrpa::engine::Predicate::Gt(15.0))
                .dedup(),
            Traversal::over(&g)
                .match_within("(a|b)+", 4)
                .dedup()
                .out(["a"]),
        ]
        .into_iter()
        .enumerate()
        {
            let naive = plan::plan(&snapshot, base.start_spec(), base.steps()).unwrap();
            let optimized = plan::optimize(&snapshot, &naive);
            if format!("{optimized:?}").contains("Reachable") {
                upgraded += 1;
            }
            for strategy in STRATEGIES {
                let naive_rows = exec::execute(&snapshot, &naive, strategy, None).unwrap();
                let opt_rows = exec::execute(&snapshot, &optimized, strategy, None).unwrap();
                assert_eq!(
                    row_sequence(&naive_rows),
                    row_sequence(&opt_rows),
                    "case {case} pipeline {pi} {strategy:?}"
                );
            }
        }
    });
    // the property is vacuous if the upgrade never fires
    assert!(upgraded >= CASES, "R8 fired only {upgraded} times");
}

#[test]
fn global_reachability_shares_one_seen_set_across_sources() {
    // For a pattern with a single accepting DFA state, sharing the seen-set
    // across input rows is observationally identical to per-row reachability
    // followed by a head dedup — same rows, same paths, same order, same
    // source attribution (each head belongs to the first source that reaches
    // it) — while expanding each (vertex, state) pair once for the whole op
    // instead of once per source.
    cases(6, |r, case| {
        let g = random_cyclic_graph(r);
        for pattern in ["a+", "(a|b)+"] {
            let via_dedup = Traversal::over(&g)
                .match_reachable(pattern)
                .dedup()
                .execute()
                .unwrap();
            for strategy in STRATEGIES {
                let global = Traversal::over(&g)
                    .match_reachable_global(pattern)
                    .strategy(strategy)
                    .execute()
                    .unwrap();
                assert_eq!(
                    row_sequence(&global),
                    row_sequence(&via_dedup),
                    "case {case} pattern {pattern} {strategy:?}"
                );
            }
        }
    });
    // and the sharing is visible in the work counters: per-row reachability
    // re-walks the cycle from every source, the global mode walks it once
    let g = PropertyGraph::new();
    let n = 16usize;
    for i in 0..n {
        g.add_edge(&format!("v{i}"), "a", &format!("v{}", (i + 1) % n));
    }
    let per_row = Traversal::over(&g).match_reachable("a+").execute().unwrap();
    let global = Traversal::over(&g)
        .match_reachable_global("a+")
        .execute()
        .unwrap();
    // per-row: every source reaches every vertex (n² rows); global: each
    // vertex is attributed to the first source that reaches it (v0)
    assert_eq!(per_row.len(), n * n);
    assert_eq!(global.len(), n);
    assert!(global
        .rows()
        .iter()
        .all(|row| row.source == global.rows()[0].source));
    assert!(global.stats().expansions < per_row.stats().expansions / (n as u64 / 2));
}

#[test]
fn in_direction_patterns_agree_with_in_step_chains() {
    cases(5, |r, case| {
        let g = random_cyclic_graph(r);
        let l1 = LABELS[r.gen_range(0..LABELS.len())];
        let l2 = LABELS[r.gen_range(0..LABELS.len())];
        let pattern = format!("{l1}·{l2}");
        for strategy in STRATEGIES {
            let via_match = Traversal::over(&g)
                .match_in_(&pattern)
                .strategy(strategy)
                .execute()
                .unwrap();
            let via_steps = Traversal::over(&g)
                .in_([l1])
                .in_([l2])
                .strategy(strategy)
                .execute()
                .unwrap();
            let mut a = row_sequence(&via_match);
            let mut b = row_sequence(&via_steps);
            a.sort();
            b.sort();
            assert_eq!(a, b, "case {case} pattern {pattern} {strategy:?}");
        }
    });
    // match_dir is the generic spelling; Both is rejected at plan time
    let g = random_cyclic_graph(&mut rng_stream(0x0EE7_CAFE, 99));
    let via_dir = Traversal::over(&g)
        .match_dir(Direction::In, "a·b")
        .execute()
        .unwrap();
    let via_in = Traversal::over(&g).match_in_("a·b").execute().unwrap();
    assert_eq!(row_sequence(&via_dir), row_sequence(&via_in));
    let err = Traversal::over(&g)
        .match_dir(Direction::Both, "a·b")
        .execute();
    assert!(matches!(err, Err(EngineError::Unsupported(_))));
}

#[test]
fn limit_pushdown_annotates_the_automaton() {
    let g = random_cyclic_graph(&mut rng_stream(0x0EE7_CAFE, 7));
    let report = Traversal::over(&g)
        .match_within("a+", 4)
        .limit(2)
        .explain()
        .unwrap();
    assert!(report.rewritten());
    assert!(
        report.after().describe().contains("emit≤2"),
        "plan: {}",
        report.after().describe()
    );
    // and the reachability upgrade is visible in explain() too
    let report = Traversal::over(&g)
        .match_within("a+", 4)
        .dedup()
        .explain()
        .unwrap();
    assert!(
        report.after().describe().contains("reachable"),
        "plan: {}",
        report.after().describe()
    );
}
