//! Memory-budget governance: `Traversal::memory_budget` charges arena and
//! row growth against a per-query byte budget and fails the traversal with
//! `EngineError::MemoryBudget` — cleanly, mid-frontier, without poisoning
//! the store — across all three execution strategies.

use mrpa::datagen::{ingest_multigraph, preferential_attachment, BaConfig};
use mrpa::engine::{EngineError, ExecutionStrategy, PropertyGraph, Traversal};

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

fn dense_graph() -> PropertyGraph {
    let source = preferential_attachment(BaConfig {
        vertices: 600,
        edges_per_vertex: 4,
        labels: 3,
        seed: 11,
    });
    let graph = PropertyGraph::new();
    ingest_multigraph(&graph, &source).expect("ingest");
    graph
}

/// A pattern dense enough to blow any small budget on the test graph.
fn dense(g: &PropertyGraph) -> Traversal {
    Traversal::over(g).match_("(l0|l1|l2){1,4}")
}

#[test]
fn tiny_budget_trips_with_typed_error_under_all_strategies() {
    let g = dense_graph();
    for strategy in STRATEGIES {
        let err = dense(&g)
            .strategy(strategy)
            .memory_budget(4 * 1024)
            .execute()
            .unwrap_err();
        match err {
            EngineError::MemoryBudget { limit, charged } => {
                assert!(charged > limit, "{strategy:?}: charged {charged} > {limit}");
            }
            other => panic!("{strategy:?}: expected MemoryBudget, got {other:?}"),
        }
    }
}

#[test]
fn generous_budget_returns_identical_rows_and_reports_bytes() {
    let g = dense_graph();
    let reference = dense(&g).execute().unwrap();
    assert!(!reference.is_empty());
    for strategy in STRATEGIES {
        let budgeted = dense(&g)
            .strategy(strategy)
            .memory_budget(1 << 30)
            .execute()
            .unwrap();
        assert_eq!(budgeted.paths(), reference.paths(), "{strategy:?}");
        assert!(
            budgeted.stats().bytes_charged > 0,
            "{strategy:?}: a budgeted run must account its bytes"
        );
    }
    // unbudgeted runs skip accounting entirely
    assert_eq!(reference.stats().bytes_charged, 0);
}

#[test]
fn budget_error_fuses_the_cursor_like_cancellation() {
    let g = dense_graph();
    let mut cursor = dense(&g)
        .strategy(ExecutionStrategy::Streaming)
        .memory_budget(4 * 1024)
        .cursor()
        .unwrap();
    let mut tripped = false;
    for _ in 0..1_000_000 {
        match cursor.next_row() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(EngineError::MemoryBudget { .. }) => {
                tripped = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(tripped, "the dense walk must exhaust a 4 KiB budget");
    // fused: every further pull is Ok(None), never a second error
    for _ in 0..3 {
        assert!(matches!(cursor.next_row(), Ok(None)));
    }
}

#[test]
fn budget_failure_never_poisons_the_store() {
    let g = dense_graph();
    let before = g.stats().generation;
    for strategy in STRATEGIES {
        let _ = dense(&g)
            .strategy(strategy)
            .memory_budget(2 * 1024)
            .execute()
            .unwrap_err();
    }
    // the store is untouched and fully usable afterwards
    assert_eq!(g.stats().generation, before);
    let ok = Traversal::over(&g).out_any().limit(5).execute().unwrap();
    assert_eq!(ok.len(), 5);
}

#[test]
fn budget_composes_with_limits_and_small_queries_fit() {
    let g = dense_graph();
    // a small query fits comfortably inside a modest budget
    let small = Traversal::over(&g)
        .out_any()
        .limit(8)
        .memory_budget(1 << 20)
        .execute()
        .unwrap();
    assert_eq!(small.len(), 8);
    // count/exists terminals surface the same typed error
    let err = dense(&g).memory_budget(2 * 1024).count().unwrap_err();
    assert!(matches!(err, EngineError::MemoryBudget { .. }));
}
