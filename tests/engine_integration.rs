//! Cross-crate integration tests: the traversal engine against the raw
//! algebra and the derivation/algorithm stack.

use std::collections::HashSet;

use mrpa::algorithms::derive::derive_from_path_set;
use mrpa::algorithms::spectral::pagerank;
use mrpa::core::{EdgePattern, Position, TraversalBuilder};
use mrpa::datagen::{social_graph, SocialConfig};
use mrpa::engine::{classic_social_graph, ExecutionStrategy, Predicate, Traversal, Value};

#[test]
fn engine_matches_hand_written_algebra_on_the_classic_graph() {
    let g = classic_social_graph();
    let snap = g.snapshot();
    let marko = snap.vertex("marko").unwrap();
    let knows = snap.label("knows").unwrap();
    let created = snap.label("created").unwrap();

    // engine: marko -knows-> X -created-> Y
    let engine_result = Traversal::over(&g)
        .v(["marko"])
        .out(["knows"])
        .out(["created"])
        .execute()
        .unwrap();

    // algebra: [marko, knows, _] ⋈◦ [_, created, _]
    let algebra_paths = TraversalBuilder::new(snap.graph())
        .step_matching(EdgePattern::from_vertex(marko).label(Position::Is(knows)))
        .step_matching(EdgePattern::any().label(Position::Is(created)))
        .evaluate()
        .unwrap();

    assert_eq!(engine_result.paths(), algebra_paths);
    let engine_heads: HashSet<_> = engine_result.heads().into_iter().collect();
    assert_eq!(engine_heads, algebra_paths.head_vertices());
}

#[test]
fn all_execution_strategies_agree_on_a_generated_social_graph() {
    let g = social_graph(SocialConfig {
        people: 80,
        software: 15,
        knows_per_person: 3,
        created_per_person: 1,
        uses_per_person: 1,
        seed: 5,
    });
    let build = |s: ExecutionStrategy| {
        Traversal::over(&g)
            .v_where("kind", Predicate::Eq(Value::from("person")))
            .out(["knows"])
            .out(["created"])
            .dedup()
            .strategy(s)
            .execute()
            .unwrap()
    };
    let m = build(ExecutionStrategy::Materialized);
    let s = build(ExecutionStrategy::Streaming);
    let p = build(ExecutionStrategy::Parallel);
    let mut mh = m.distinct_heads();
    let mut sh = s.distinct_heads();
    let mut ph = p.distinct_heads();
    mh.sort();
    sh.sort();
    ph.sort();
    assert_eq!(mh, sh);
    assert_eq!(mh, ph);
    assert!(!m.is_empty());
}

#[test]
fn engine_paths_feed_the_derivation_pipeline() {
    // §IV-C end to end through the engine: collect knows∘created paths and
    // derive a single-relational "indirectly contributed to" graph.
    let g = social_graph(SocialConfig {
        people: 60,
        software: 12,
        knows_per_person: 3,
        created_per_person: 1,
        uses_per_person: 1,
        seed: 19,
    });
    let result = Traversal::over(&g)
        .v_where("kind", Predicate::Eq(Value::from("person")))
        .out(["knows"])
        .out(["created"])
        .execute()
        .unwrap();
    let snap = result.snapshot().clone();
    let derived = derive_from_path_set(snap.graph(), &result.paths());
    assert!(derived.edge_count() > 0);
    assert_eq!(derived.vertex_count(), snap.graph().vertex_count());
    // PageRank on the derived graph is well-formed (sums to ~1)
    let pr = pagerank(&derived, 0.85, Default::default());
    let total: f64 = pr.values().sum();
    assert!((total - 1.0).abs() < 1e-6);
}

#[test]
fn regular_path_patterns_run_on_the_classic_graph_under_all_strategies() {
    // The flagship query of the redesign: "software created by anyone marko
    // can reach over one or more knows-edges", as a single label regex.
    let g = classic_social_graph();
    for strategy in [
        ExecutionStrategy::Materialized,
        ExecutionStrategy::Streaming,
        ExecutionStrategy::Parallel,
    ] {
        let r = Traversal::over(&g)
            .v(["marko"])
            .match_("knows+·created")
            .strategy(strategy)
            .execute()
            .unwrap();
        assert_eq!(
            r.head_names_sorted(),
            vec!["lop", "ripple"],
            "strategy {strategy:?}"
        );
        // the paths are marko→josh→{ripple,lop}: two edges each
        assert!(r.rows().iter().all(|row| row.path.len() == 2));
    }

    // explain() reports the pre- and post-rewrite plans plus estimates
    let report = Traversal::over(&g)
        .v(["marko"])
        .match_("knows+·created")
        .explain()
        .unwrap();
    assert!(report
        .before()
        .describe()
        .contains("automaton[knows+·created"));
    assert!(!report.after().ops().is_empty());
    assert_eq!(report.estimates().len(), report.after().ops().len() + 1);

    // the same result via the algebra-level step pipeline and via repeat
    let stepwise = Traversal::over(&g)
        .v(["marko"])
        .repeat(1..=3, |p| p.out(["knows"]))
        .out(["created"])
        .execute()
        .unwrap();
    assert_eq!(stepwise.head_names_sorted(), vec!["lop", "ripple"]);
}

#[test]
fn property_filters_compose_with_structure() {
    let g = classic_social_graph();
    // people under 30 who know someone who created java software
    let result = Traversal::over(&g)
        .v_where("kind", Predicate::Eq(Value::from("person")))
        .has("age", Predicate::Lt(30.0))
        .out(["knows"])
        .out(["created"])
        .has("lang", Predicate::Eq(Value::from("java")))
        .execute()
        .unwrap();
    // marko (29) knows josh, josh created lop and ripple (both java)
    assert_eq!(result.head_names_sorted(), vec!["lop", "ripple"]);
    for row in result.rows() {
        assert_eq!(row.path.len(), 2);
        assert!(row.path.is_joint());
    }
}
