//! Cross-crate integration tests for §IV-C: derivations + single-relational
//! algorithms on generated multi-relational graphs.

use mrpa::algorithms::prelude::*;
use mrpa::algorithms::spectral;
use mrpa::core::{label_composition, LabelId};
use mrpa::datagen::{erdos_renyi, stochastic_block_model, ErConfig, SbmConfig};
use mrpa::regex::PathRegex;

#[test]
fn compose_labels_equals_manual_endpoint_projection() {
    let g = erdos_renyi(ErConfig {
        vertices: 40,
        labels: 2,
        edge_probability: 0.04,
        seed: 3,
    });
    let composed = compose_labels(&g, LabelId(0), LabelId(1));
    let paths = label_composition(&g, LabelId(0), LabelId(1));
    let expected: std::collections::HashSet<_> = paths.endpoints().into_iter().collect();
    let actual: std::collections::HashSet<_> = composed.edges().collect();
    assert_eq!(actual, expected);
}

#[test]
fn derive_from_regex_generalises_compose_labels() {
    let g = erdos_renyi(ErConfig {
        vertices: 30,
        labels: 2,
        edge_probability: 0.05,
        seed: 9,
    });
    let regex = PathRegex::atom(mrpa::core::EdgePattern::with_label(LabelId(0))).join(
        PathRegex::atom(mrpa::core::EdgePattern::with_label(LabelId(1))),
    );
    let via_regex = derive_from_regex(&g, &regex, 2);
    let via_compose = compose_labels(&g, LabelId(0), LabelId(1));
    let a: std::collections::HashSet<_> = via_regex.edges().collect();
    let b: std::collections::HashSet<_> = via_compose.edges().collect();
    assert_eq!(a, b);
}

#[test]
fn extraction_preserves_block_assortativity_while_ignoring_labels_dilutes_it() {
    // two relations: label 0 wired within blocks, label 1 wired uniformly.
    let (within, blocks) = stochastic_block_model(&SbmConfig {
        block_sizes: vec![15, 15],
        labels: 1,
        within_probability: 0.25,
        between_probability: 0.01,
        seed: 21,
    });
    let mut g = mrpa::core::MultiGraph::new();
    for e in within.edges() {
        g.add_edge(*e); // label 0: community structure
    }
    // label 1: random cross edges
    let noise = erdos_renyi(ErConfig {
        vertices: 30,
        labels: 1,
        edge_probability: 0.05,
        seed: 22,
    });
    for e in noise.edges() {
        g.add(e.tail, LabelId(1), e.head);
    }
    let category: std::collections::HashMap<_, _> = g
        .vertices()
        .map(|v| (v, blocks.get(v.index()).copied().unwrap_or(0)))
        .collect();

    let community_only = extract_label(&g, LabelId(0));
    let mixed = ignore_labels(&g);
    let r_extract = discrete_assortativity(&community_only, &category).unwrap();
    let r_mixed = discrete_assortativity(&mixed, &category).unwrap();
    assert!(
        r_extract > r_mixed,
        "extraction ({r_extract:.3}) should preserve more community structure than label-ignoring ({r_mixed:.3})"
    );
    assert!(r_extract > 0.5);
}

#[test]
fn centralities_are_defined_on_every_derivation() {
    let g = erdos_renyi(ErConfig {
        vertices: 35,
        labels: 3,
        edge_probability: 0.05,
        seed: 33,
    });
    for derived in [
        ignore_labels(&g),
        extract_label(&g, LabelId(0)),
        compose_labels(&g, LabelId(0), LabelId(1)),
    ] {
        let pr = spectral::pagerank(&derived, 0.85, Default::default());
        assert_eq!(pr.len(), g.vertex_count());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
        let closeness = closeness_centrality(&derived);
        assert_eq!(closeness.len(), g.vertex_count());
        let betweenness = betweenness_centrality(&derived, true);
        assert!(betweenness.values().all(|&b| b >= 0.0));
    }
}

#[test]
fn rank_correlation_between_derivations_is_meaningful() {
    let g = erdos_renyi(ErConfig {
        vertices: 50,
        labels: 2,
        edge_probability: 0.04,
        seed: 44,
    });
    let a = spectral::pagerank(&ignore_labels(&g), 0.85, Default::default());
    let b = spectral::pagerank(&extract_label(&g, LabelId(0)), 0.85, Default::default());
    // correlation exists and is strictly less than a self-comparison
    let cross = spectral::spearman_correlation(&a, &b).unwrap();
    let self_corr = spectral::spearman_correlation(&a, &a).unwrap();
    assert!((self_corr - 1.0).abs() < 1e-9);
    assert!(cross < 1.0);
    assert!(cross > -1.0);
}
