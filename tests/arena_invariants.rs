//! Arena-representation invariants on randomized Erdős–Rényi workloads.
//!
//! The acceptance bar for the arena-backed path store: on ≥ 100 random
//! multi-relational graphs, the arena `⋈◦` must agree exactly with the
//! materialised nested-loop oracle (`join_naive`), `join_power` must be
//! associative, endpoint/label projections must match what the materialised
//! paths say, and interning must be canonical (same edge sequence ⇒ same
//! `PathId`).

use std::collections::HashSet;

use mrpa::core::{
    complete_traversal, source_traversal, EdgePattern, LabelId, Path, PathArena, PathSet, VertexId,
};
use mrpa::datagen::{erdos_renyi, ErConfig};

/// 100+ small random graphs; dense enough that 2–3-hop joins are non-trivial.
fn random_graphs() -> impl Iterator<Item = (u64, mrpa::core::MultiGraph)> {
    (0u64..104).map(|seed| {
        (
            seed,
            erdos_renyi(ErConfig {
                vertices: 14,
                labels: 3,
                edge_probability: 0.09,
                seed,
            }),
        )
    })
}

#[test]
fn arena_join_equals_naive_join_on_100_random_graphs() {
    let mut nonempty = 0;
    for (seed, g) in random_graphs() {
        let a = EdgePattern::with_label(LabelId(0)).select_paths(&g);
        let b = EdgePattern::with_label(LabelId(1)).select_paths(&g);
        let joined = a.join(&b);
        assert_eq!(joined, a.join_naive(&b), "seed {seed}: join != join_naive");
        // a second hop over the full edge set, including via the
        // frontier-driven step
        let e = PathSet::from_graph(&g);
        let two_hop = joined.join(&e);
        assert_eq!(
            two_hop,
            joined.join_naive(&e),
            "seed {seed}: 2-hop join != join_naive"
        );
        assert_eq!(
            two_hop,
            joined.step_join(&g, &EdgePattern::any()),
            "seed {seed}: step_join != join"
        );
        if !two_hop.is_empty() {
            nonempty += 1;
        }
    }
    // the workload must actually exercise the join, not vacuously pass
    assert!(nonempty > 50, "only {nonempty} graphs produced 2-hop paths");
}

#[test]
fn join_power_is_associative_on_random_graphs() {
    for (seed, g) in random_graphs().take(50) {
        let e = PathSet::from_graph(&g);
        // E ⋈◦ (E ⋈◦ E) = (E ⋈◦ E) ⋈◦ E = E^3
        let p3 = e.join_power(3);
        assert_eq!(p3, e.join(&e.join(&e)), "seed {seed}: right-assoc");
        assert_eq!(p3, e.join(&e).join(&e), "seed {seed}: left-assoc");
        // and the traversal evaluator agrees
        assert_eq!(p3, complete_traversal(&g, 3), "seed {seed}: traversal");
    }
}

#[test]
fn projections_match_materialised_paths() {
    for (seed, g) in random_graphs().take(50) {
        let sources: HashSet<VertexId> = g.vertices().take(4).collect();
        let paths = source_traversal(&g, &sources, 3);

        // endpoints: compare the O(1)-per-path arena projection against the
        // materialised paths
        let mut expected: Vec<(VertexId, VertexId)> = paths
            .iter()
            .map(|p| (p.tail_vertex().unwrap(), p.head_vertex().unwrap()))
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(paths.endpoints(), expected, "seed {seed}: endpoints");

        // label projection
        let labels: Vec<Vec<LabelId>> = paths.iter().map(|p| p.path_label()).collect();
        assert_eq!(paths.path_labels(), labels, "seed {seed}: path_labels");

        // frontier projections
        let heads: HashSet<VertexId> = paths.iter().filter_map(|p| p.head_vertex().ok()).collect();
        assert_eq!(paths.head_vertices(), heads, "seed {seed}: head_vertices");
        let tails: HashSet<VertexId> = paths.iter().filter_map(|p| p.tail_vertex().ok()).collect();
        assert_eq!(paths.tail_vertices(), tails, "seed {seed}: tail_vertices");

        // every path is restricted and joint, and lengths agree with the
        // histogram
        assert!(paths.all_joint(), "seed {seed}: all_joint");
        let histogram = paths.length_histogram();
        assert_eq!(
            histogram.get(&3).copied().unwrap_or(0),
            paths.len(),
            "seed {seed}: histogram"
        );
    }
}

#[test]
fn interning_is_canonical_across_construction_orders() {
    // same edge sequence ⇒ same PathId, regardless of how the path was built
    for (seed, g) in random_graphs().take(20) {
        let arena = PathArena::new();
        let paths = complete_traversal(&g, 2);
        for p in paths.iter() {
            let whole = arena.intern(&p);
            let again = arena.intern(&p);
            assert_eq!(whole, again, "seed {seed}: re-intern changed id");
            let stepwise = p
                .edges()
                .iter()
                .fold(mrpa::core::PathId::EPSILON, |acc, &e| arena.append(acc, e));
            assert_eq!(whole, stepwise, "seed {seed}: stepwise intern differs");
            assert_eq!(arena.find(&p), Some(whole), "seed {seed}: find misses");
            assert_eq!(arena.to_path(whole), p, "seed {seed}: round-trip");
        }
        // distinct paths get distinct ids (hash-consing is injective)
        let ids: HashSet<_> = paths.iter().map(|p| arena.intern(&p)).collect();
        assert_eq!(ids.len(), paths.len(), "seed {seed}: id collision");
    }
}

#[test]
fn dedup_is_id_level_and_exact() {
    for (seed, g) in random_graphs().take(20) {
        // inserting every 2-path twice leaves the set unchanged
        let paths = complete_traversal(&g, 2);
        let mut set = PathSet::new();
        for p in paths.iter() {
            assert!(set.insert(p.clone()), "seed {seed}: first insert rejected");
        }
        for p in paths.iter() {
            assert!(!set.insert(p), "seed {seed}: duplicate accepted");
        }
        assert_eq!(set.len(), paths.len(), "seed {seed}");
        assert_eq!(set, paths, "seed {seed}");
    }
}

#[test]
fn destination_traversal_agrees_with_oracle_on_random_graphs() {
    // destination traversals run over the reversed graph + re-orientation;
    // check against restricting the complete traversal
    for (seed, g) in random_graphs().take(30) {
        let dests: HashSet<VertexId> = g.vertices().take(3).collect();
        for n in 1..=3usize {
            let fast = mrpa::core::destination_traversal(&g, &dests, n);
            let oracle = complete_traversal(&g, n).restrict_heads(&dests);
            assert_eq!(fast, oracle, "seed {seed} n {n}");
            assert!(fast.iter().all(|p: Path| p.is_joint()), "seed {seed} n {n}");
        }
    }
}
