//! Seeded randomized equivalence tests for the unified query IR and the
//! rewriting optimizer.
//!
//! Three families of properties, each over ≥ 50 independently-seeded random
//! property graphs (hand-rolled property tests — the build environment
//! vendors no proptest; failures print the case number for reproduction):
//!
//! 1. `match_("ℓ1·ℓ2")` ≡ `.out([ℓ1]).out([ℓ2])` under every execution
//!    strategy (regular path patterns agree with step-at-a-time traversal);
//! 2. bounded `match_("ℓ+")` ≡ `repeat(1..=k, out ℓ)` ≡ the manual union of
//!    unrolled `out`-chains (automaton, iteration, and unrolled references
//!    agree);
//! 3. optimizer soundness: for random pipelines, executing the rewritten
//!    plan produces exactly the rows of the naive plan, row order included,
//!    under every strategy.

use rand::Rng as _;

use mrpa::datagen::random::{rng_stream, Rng};
use mrpa::engine::{
    exec, plan, ExecutionStrategy, Pipeline, PropertyGraph, QueryResult, StartSpec, Traversal,
    Value,
};
use mrpa::engine::{EngineError, Predicate};

const CASES: usize = 60;

const STRATEGIES: [ExecutionStrategy; 3] = [
    ExecutionStrategy::Materialized,
    ExecutionStrategy::Streaming,
    ExecutionStrategy::Parallel,
];

const LABELS: [&str; 3] = ["a", "b", "c"];

/// A small random property graph. Always contains every label of [`LABELS`]
/// (a deterministic seed chain) so label resolution never fails, plus random
/// edges, ages, and kinds.
fn random_graph(r: &mut Rng) -> PropertyGraph {
    let g = PropertyGraph::new();
    let n = r.gen_range(4usize..12);
    for i in 0..n {
        let v = g.add_vertex(&format!("v{i}"));
        g.set_vertex_property(v, "age", Value::Int(r.gen_range(10i64..60)));
        let kind = if r.gen_range(0u32..4) == 0 {
            "software"
        } else {
            "person"
        };
        g.set_vertex_property(v, "kind", Value::from(kind));
    }
    // one deterministic edge per label so every label is interned
    g.add_edge("v0", "a", "v1");
    g.add_edge("v1", "b", "v2");
    g.add_edge("v2", "c", "v0");
    let m = r.gen_range(4usize..24);
    for _ in 0..m {
        let t = format!("v{}", r.gen_range(0..n));
        let h = format!("v{}", r.gen_range(0..n));
        let l = LABELS[r.gen_range(0..LABELS.len())];
        g.add_edge(&t, l, &h);
    }
    g
}

/// Runs `check` for [`CASES`] independently-seeded cases on stream `stream`.
fn cases(stream: u64, mut check: impl FnMut(&mut Rng, usize)) {
    for case in 0..CASES {
        let mut r = rng_stream(0x0717_1337, stream.wrapping_mul(1000) + case as u64);
        check(&mut r, case);
    }
}

/// A canonical, order-insensitive signature of a result (source, path, head
/// per row, sorted).
fn row_multiset(result: &QueryResult) -> Vec<String> {
    let mut sig: Vec<String> = result
        .rows()
        .iter()
        .map(|row| format!("{}-[{}]->{}", row.source, row.path, row.head))
        .collect();
    sig.sort();
    sig
}

/// The exact row sequence (order-sensitive signature).
fn row_sequence(result: &QueryResult) -> Vec<String> {
    result
        .rows()
        .iter()
        .map(|row| format!("{}-[{}]->{}", row.source, row.path, row.head))
        .collect()
}

#[test]
fn match_concat_equals_step_at_a_time_traversal() {
    cases(1, |r, case| {
        let g = random_graph(r);
        let l1 = LABELS[r.gen_range(0..LABELS.len())];
        let l2 = LABELS[r.gen_range(0..LABELS.len())];
        let pattern = format!("{l1}·{l2}");
        for strategy in STRATEGIES {
            let via_match = Traversal::over(&g)
                .match_(&pattern)
                .strategy(strategy)
                .execute()
                .unwrap();
            let via_steps = Traversal::over(&g)
                .out([l1])
                .out([l2])
                .strategy(strategy)
                .execute()
                .unwrap();
            assert_eq!(
                row_multiset(&via_match),
                row_multiset(&via_steps),
                "case {case} pattern {pattern} strategy {strategy:?}"
            );
        }
    });
}

#[test]
fn bounded_match_plus_equals_repeat_and_unrolled_union() {
    const K: usize = 3;
    cases(2, |r, case| {
        let g = random_graph(r);
        let l = LABELS[r.gen_range(0..LABELS.len())];
        let pattern = format!("{l}+");
        // the unrolled reference: out-chains of length 1..=K, unioned
        let mut unrolled: Vec<String> = Vec::new();
        for hops in 1..=K {
            let mut t = Traversal::over(&g);
            for _ in 0..hops {
                t = t.out([l]);
            }
            unrolled.extend(row_multiset(&t.execute().unwrap()));
        }
        unrolled.sort();
        for strategy in STRATEGIES {
            let via_match = Traversal::over(&g)
                .match_within(&pattern, K)
                .strategy(strategy)
                .execute()
                .unwrap();
            let via_repeat = Traversal::over(&g)
                .repeat(1..=K, |p| p.out([l]))
                .strategy(strategy)
                .execute()
                .unwrap();
            assert_eq!(
                row_multiset(&via_match),
                unrolled,
                "case {case} match≡unroll, {l}+ under {strategy:?}"
            );
            assert_eq!(
                row_multiset(&via_repeat),
                unrolled,
                "case {case} repeat≡unroll, {l}+ under {strategy:?}"
            );
        }
    });
}

/// A random pipeline over the vocabulary the optimizer rewrites: expansions
/// in all directions, `is`/`has` filters, dedup, limit, patterns, repeats.
fn random_pipeline(r: &mut Rng, n_vertices: usize) -> Pipeline {
    let mut p = Pipeline::new();
    let len = r.gen_range(1usize..6);
    for _ in 0..len {
        p = match r.gen_range(0u32..12) {
            0 | 1 => p.out([LABELS[r.gen_range(0..LABELS.len())]]),
            2 => p.in_([LABELS[r.gen_range(0..LABELS.len())]]),
            3 => p.both([LABELS[r.gen_range(0..LABELS.len())]]),
            // multi-label and wildcard steps: the optimizer must NOT merge
            // these into automata (label-grouped emission would reorder rows)
            10 => p.out([
                LABELS[r.gen_range(0..LABELS.len())],
                LABELS[r.gen_range(0..LABELS.len())],
            ]),
            11 => p.out_any(),
            4 => {
                let count = r.gen_range(1usize..4);
                let names: Vec<String> = (0..count)
                    .map(|_| format!("v{}", r.gen_range(0..n_vertices)))
                    .collect();
                p.is(names)
            }
            5 => p.has("age", Predicate::Gt(r.gen_range(10i64..60) as f64)),
            6 => p.dedup(),
            7 => p.limit(r.gen_range(0usize..10)),
            8 => p.match_within("a·(b|c)", 3),
            _ => {
                let l = LABELS[r.gen_range(0..LABELS.len())];
                p.repeat(1..=2, |body| body.out([l]))
            }
        };
    }
    p
}

#[test]
fn optimized_plans_produce_exactly_the_naive_rows() {
    let mut rewrites = 0usize;
    cases(3, |r, case| {
        let g = random_graph(r);
        let n = g.vertex_count();
        let pipeline = random_pipeline(r, n);
        let start = match r.gen_range(0u32..3) {
            0 => StartSpec::AllVertices,
            1 => StartSpec::Named(vec![format!("v{}", r.gen_range(0..n))]),
            _ => StartSpec::Where("kind".into(), Predicate::Eq(Value::from("person"))),
        };
        let snapshot = g.snapshot();
        let naive = match plan::plan(&snapshot, &start, pipeline.steps()) {
            Ok(p) => p,
            // random `is` names may miss (never happens here, but keep the
            // property total)
            Err(EngineError::UnknownVertex(_)) => return,
            Err(e) => panic!("case {case}: plan failed: {e}"),
        };
        let optimized = plan::optimize(&snapshot, &naive);
        if optimized != naive {
            rewrites += 1;
        }
        for strategy in STRATEGIES {
            let naive_rows = exec::execute(&snapshot, &naive, strategy, None).unwrap();
            let opt_rows = exec::execute(&snapshot, &optimized, strategy, None).unwrap();
            assert_eq!(
                row_sequence(&naive_rows),
                row_sequence(&opt_rows),
                "case {case} strategy {strategy:?}\n naive: {}\n opt:   {}",
                naive.describe(),
                optimized.describe()
            );
        }
    });
    // the property is vacuous if the optimizer never fires
    assert!(
        rewrites >= CASES / 4,
        "optimizer rewrote only {rewrites}/{CASES} random pipelines"
    );
}

#[test]
fn multi_label_expands_keep_their_row_order_under_limit() {
    // Regression: merging multi-label expansion runs into an automaton would
    // emit edges grouped by graph label order instead of the step's
    // interleaved adjacency order, so a downstream limit(2) would keep
    // different rows. The optimizer must leave such runs unmerged.
    let g = PropertyGraph::new();
    g.add_edge("s", "b", "x");
    g.add_edge("s", "a", "y");
    g.add_edge("s", "b", "z");
    g.add_edge("x", "a", "p");
    g.add_edge("y", "a", "p");
    g.add_edge("z", "a", "q");
    let snapshot = g.snapshot();
    let pipeline = Pipeline::new().out(["a", "b"]).out(["a", "b"]).limit(2);
    let start = StartSpec::Named(vec!["s".into()]);
    let naive = plan::plan(&snapshot, &start, pipeline.steps()).unwrap();
    let optimized = plan::optimize(&snapshot, &naive);
    for strategy in STRATEGIES {
        let naive_rows = exec::execute(&snapshot, &naive, strategy, None).unwrap();
        let opt_rows = exec::execute(&snapshot, &optimized, strategy, None).unwrap();
        assert_eq!(
            row_sequence(&naive_rows),
            row_sequence(&opt_rows),
            "strategy {strategy:?}"
        );
    }
}

#[test]
fn optimizer_is_idempotent_on_random_pipelines() {
    cases(4, |r, case| {
        let g = random_graph(r);
        let pipeline = random_pipeline(r, g.vertex_count());
        let snapshot = g.snapshot();
        let Ok(naive) = plan::plan(&snapshot, &StartSpec::AllVertices, pipeline.steps()) else {
            return;
        };
        let once = plan::optimize(&snapshot, &naive);
        let twice = plan::optimize(&snapshot, &once);
        assert_eq!(once, twice, "case {case}: optimize is not idempotent");
    });
}
